"""Deadline-tagged read transactions over a broadcast program.

The client side of the motivating story: a transaction needs a set of
data items, each fresh per its temporal constraint, and the whole read
set by a deadline.  Items are retrieved sequentially off the air (the
client has one receiver); an item is *temporally consistent* when its
retrieval latency fits inside the item's staleness budget - the server
re-disperses each update, so the version on the air is at most one
retrieval old.

This is intentionally a read-only model: the paper's asymmetric setting
gives clients negligible upstream bandwidth, so write transactions and
concurrency control stay on the server and are out of scope (the paper
cites them as orthogonal RTDB machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import RetrievalResult, retrieve
from repro.sim.faults import FaultModel, NoFaults
from repro.rtdb.items import DataItem


@dataclass(frozen=True, slots=True)
class ReadTransaction:
    """A read-only transaction: items to fetch and a deadline in slots."""

    name: str
    items: tuple[str, ...]
    deadline_slots: int

    def __init__(
        self, name: str, items: Sequence[str], deadline_slots: int
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "deadline_slots", deadline_slots)
        if not self.items:
            raise SpecificationError(
                f"transaction {name!r} reads no items"
            )
        if len(set(self.items)) != len(self.items):
            raise SpecificationError(
                f"transaction {name!r} lists duplicate items"
            )
        if deadline_slots < 1:
            raise SpecificationError(
                f"transaction {name!r}: deadline must be >= 1 slot"
            )


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of one transaction execution.

    ``committed`` requires all retrievals complete, the deadline met, and
    every item temporally consistent.
    """

    transaction: ReadTransaction
    start: int
    retrievals: tuple[RetrievalResult, ...]
    finish_slot: int | None
    stale_items: tuple[str, ...]

    @property
    def response_time(self) -> int | None:
        if self.finish_slot is None:
            return None
        return self.finish_slot - self.start + 1

    @property
    def met_deadline(self) -> bool:
        return (
            self.response_time is not None
            and self.response_time <= self.transaction.deadline_slots
        )

    @property
    def committed(self) -> bool:
        return self.met_deadline and not self.stale_items

    def __str__(self) -> str:
        status = "COMMIT" if self.committed else "ABORT"
        return (
            f"{self.transaction.name}: {status} "
            f"(response={self.response_time}, "
            f"deadline={self.transaction.deadline_slots}, "
            f"stale={list(self.stale_items)})"
        )


def execute_transaction(
    program: BroadcastProgram,
    transaction: ReadTransaction,
    items: Mapping[str, DataItem],
    *,
    start: int = 0,
    slot_ms: float,
    faults: FaultModel | None = None,
) -> TransactionResult:
    """Execute a read transaction against the broadcast program.

    Items are fetched in the transaction's declared order, each retrieval
    starting where the previous one finished (single-receiver client).
    An item is stale when its retrieval latency, converted to
    milliseconds, exceeds its temporal constraint.
    """
    fault_model = faults if faults is not None else NoFaults()
    clock = start
    retrievals: list[RetrievalResult] = []
    stale: list[str] = []

    for name in transaction.items:
        item = items.get(name)
        if item is None:
            raise SimulationError(
                f"transaction {transaction.name!r} reads unknown item "
                f"{name!r}"
            )
        result = retrieve(
            program,
            name,
            item.blocks,
            start=clock,
            faults=fault_model,
            need_distinct=True,
        )
        retrievals.append(result)
        if not result.completed or result.finish_slot is None:
            return TransactionResult(
                transaction=transaction,
                start=start,
                retrievals=tuple(retrievals),
                finish_slot=None,
                stale_items=tuple(stale),
            )
        if not item.constraint.is_fresh(result.latency * slot_ms):
            stale.append(name)
        clock = result.finish_slot + 1

    return TransactionResult(
        transaction=transaction,
        start=start,
        retrievals=tuple(retrievals),
        finish_slot=clock - 1,
        stale_items=tuple(stale),
    )
