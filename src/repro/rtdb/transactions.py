"""Deadline-tagged read transactions over a broadcast program.

The client side of the motivating story: a transaction needs a set of
data items, each fresh per its temporal constraint, and the whole read
set by a deadline.  Items are retrieved sequentially off the air (the
client has one receiver); two freshness regimes are supported:

* **static items** (no ``server``): the server re-disperses each update
  between retrievals, so the version on the air is at most one
  retrieval old - an item is temporally consistent when its retrieval
  *latency* fits inside the staleness budget;
* **versioned items** (an :class:`~repro.rtdb.updates.UpdatingServer`):
  each item is retrieved with :func:`~repro.rtdb.updates.retrieve_versioned`
  - torn reads discard cross-version blocks - and consistency is judged
  by the completed value's *age* (finish slot minus the version's write
  slot) against the constraint.

This is intentionally a read-only model: the paper's asymmetric setting
gives clients negligible upstream bandwidth, so write transactions and
concurrency control stay on the server and are out of scope (the paper
cites them as orthogonal RTDB machinery).

Retrievals ride the occurrence-indexed clients
(:func:`repro.sim.client.retrieve` and
:func:`repro.rtdb.updates.retrieve_versioned`), so a transaction costs
O(occurrences touched), not O(slots waited); the slot-walking executable
spec lives in :mod:`repro.rtdb.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import RetrievalResult, retrieve
from repro.sim.faults import FaultModel, NoFaults
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import latency_budget_slots
from repro.rtdb.updates import (
    UpdatingServer,
    VersionedRetrieval,
    retrieve_versioned,
)


@dataclass(frozen=True, slots=True)
class ReadTransaction:
    """A read-only transaction: items to fetch and a deadline in slots."""

    name: str
    items: tuple[str, ...]
    deadline_slots: int

    def __init__(
        self, name: str, items: Sequence[str], deadline_slots: int
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "deadline_slots", deadline_slots)
        if not self.items:
            raise SpecificationError(
                f"transaction {name!r} reads no items"
            )
        if len(set(self.items)) != len(self.items):
            raise SpecificationError(
                f"transaction {name!r} lists duplicate items"
            )
        if deadline_slots < 1:
            raise SpecificationError(
                f"transaction {name!r}: deadline must be >= 1 slot"
            )


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of one transaction execution.

    ``committed`` requires all retrievals complete, the deadline met, and
    every item temporally consistent.  ``retrievals`` holds the plain
    per-item outcomes (static regime); ``versioned`` holds the
    per-item :class:`VersionedRetrieval` outcomes (versioned regime) -
    exactly one of the two is populated.
    """

    transaction: ReadTransaction
    start: int
    retrievals: tuple[RetrievalResult, ...]
    finish_slot: int | None
    stale_items: tuple[str, ...]
    versioned: tuple[VersionedRetrieval, ...] = ()

    @property
    def response_time(self) -> int | None:
        if self.finish_slot is None:
            return None
        return self.finish_slot - self.start + 1

    @property
    def met_deadline(self) -> bool:
        return (
            self.response_time is not None
            and self.response_time <= self.transaction.deadline_slots
        )

    @property
    def committed(self) -> bool:
        return self.met_deadline and not self.stale_items

    @property
    def torn_discards(self) -> int:
        """Blocks thrown away to torn reads across the read set."""
        return sum(r.torn_discards for r in self.versioned)

    def __str__(self) -> str:
        status = "COMMIT" if self.committed else "ABORT"
        return (
            f"{self.transaction.name}: {status} "
            f"(response={self.response_time}, "
            f"deadline={self.transaction.deadline_slots}, "
            f"stale={list(self.stale_items)})"
        )


def execute_transaction(
    program: BroadcastProgram,
    transaction: ReadTransaction,
    items: Mapping[str, DataItem],
    *,
    start: int = 0,
    slot_ms: float,
    faults: FaultModel | None = None,
    server: UpdatingServer | None = None,
    update_overhead_ms: float = 0.0,
) -> TransactionResult:
    """Execute a read transaction against the broadcast program.

    Items are fetched in the transaction's declared order, each retrieval
    starting where the previous one finished (single-receiver client).
    Without ``server``, an item is stale when its retrieval latency,
    converted to milliseconds, exceeds its temporal constraint.  With a
    ``server``, items are retrieved version-consistently
    (:func:`~repro.rtdb.updates.retrieve_versioned`) and an item is
    stale when the completed value's age in slots exceeds its
    constraint's slot budget (``update_overhead_ms`` eats into that
    budget exactly as it does at design time).
    """
    fault_model = faults if faults is not None else NoFaults()
    clock = start
    retrievals: list[RetrievalResult] = []
    versioned: list[VersionedRetrieval] = []
    stale: list[str] = []

    for name in transaction.items:
        item = items.get(name)
        if item is None:
            raise SimulationError(
                f"transaction {transaction.name!r} reads unknown item "
                f"{name!r}"
            )
        if server is None:
            result = retrieve(
                program,
                name,
                item.blocks,
                start=clock,
                faults=fault_model,
                need_distinct=True,
            )
            retrievals.append(result)
            completed = result.completed and result.finish_slot is not None
            if completed and not item.constraint.is_fresh(
                result.latency * slot_ms
            ):
                stale.append(name)
            finish = result.finish_slot
        else:
            vresult = retrieve_versioned(
                program,
                server,
                name,
                item.blocks,
                start=clock,
                faults=fault_model,
            )
            versioned.append(vresult)
            completed = (
                vresult.completed and vresult.finish_slot is not None
            )
            if completed and not vresult.is_fresh(
                latency_budget_slots(
                    item.constraint,
                    slot_ms=slot_ms,
                    update_overhead_ms=update_overhead_ms,
                )
            ):
                stale.append(name)
            finish = vresult.finish_slot
        if not completed or finish is None:
            return TransactionResult(
                transaction=transaction,
                start=start,
                retrievals=tuple(retrievals),
                finish_slot=None,
                stale_items=tuple(stale),
                versioned=tuple(versioned),
            )
        clock = finish + 1

    return TransactionResult(
        transaction=transaction,
        start=start,
        retrievals=tuple(retrievals),
        finish_slot=clock - 1,
        stale_items=tuple(stale),
        versioned=tuple(versioned),
    )
