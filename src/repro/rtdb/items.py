"""Data items: payloads bound to temporal constraints and criticality.

A :class:`DataItem` is the RTDB-level view of a broadcast file: it knows
its contents, how stale it may be, and how critical it is per operation
mode.  ``as_file_spec`` bridges down to the broadcast-disk designer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError
from repro.bdisk.file import FileSpec
from repro.rtdb.temporal import TemporalConstraint, latency_budget_slots


@dataclass(frozen=True)
class DataItem:
    """One database object published on the broadcast disk.

    Attributes
    ----------
    name:
        Item identity (doubles as the broadcast file name).
    payload:
        Current value as bytes.
    constraint:
        Absolute temporal consistency constraint.
    blocks:
        Broadcast size in blocks (the AIDA dispersal level ``m``).
    criticality:
        Per-mode criticality (mode name -> fault budget ``r``); items not
        mentioned in the active mode fall back to ``default_faults``.
    default_faults:
        Fault budget when the active mode does not override it.
    """

    name: str
    payload: bytes
    constraint: TemporalConstraint
    blocks: int = 1
    criticality: dict[str, int] = field(default_factory=dict)
    default_faults: int = 0

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise SpecificationError(
                f"item {self.name!r}: blocks must be >= 1, "
                f"got {self.blocks}"
            )
        if self.default_faults < 0:
            raise SpecificationError(
                f"item {self.name!r}: default_faults must be >= 0"
            )
        for mode, faults in self.criticality.items():
            if faults < 0:
                raise SpecificationError(
                    f"item {self.name!r}: fault budget for mode "
                    f"{mode!r} must be >= 0, got {faults}"
                )

    def fault_budget(self, mode: str) -> int:
        """Fault budget ``r`` in the given operation mode."""
        return self.criticality.get(mode, self.default_faults)

    def as_file_spec(
        self,
        mode: str,
        *,
        slot_ms: float,
        update_overhead_ms: float = 0.0,
    ) -> FileSpec:
        """The broadcast file this item induces in a given mode.

        The temporal constraint becomes a latency budget in *slots*;
        :class:`FileSpec.latency` is interpreted in slots by passing
        bandwidth 1 to the designer (one slot = one block transmission at
        the chosen channel rate).
        """
        budget = latency_budget_slots(
            self.constraint,
            slot_ms=slot_ms,
            update_overhead_ms=update_overhead_ms,
        )
        if budget < self.blocks + self.fault_budget(mode):
            raise SpecificationError(
                f"item {self.name!r}: latency budget of {budget} slots "
                f"cannot carry {self.blocks} blocks plus "
                f"{self.fault_budget(mode)} fault slots"
            )
        return FileSpec(
            self.name,
            self.blocks,
            budget,
            fault_budget=self.fault_budget(mode),
            data=self.payload,
        )
