"""The real-time database layer: the paper's motivating domain.

Broadcast disks exist to serve real-time database clients - IVHS vehicles,
AWACS consoles, battlefield wearables.  This subpackage supplies that
vocabulary on top of the broadcast/scheduling machinery:

* :mod:`repro.rtdb.temporal` - absolute temporal consistency: how a data
  object's dynamics (e.g. an aircraft at 900 km/h with a 100 m accuracy
  requirement) become a latency budget (400 ms);
* :mod:`repro.rtdb.items` - data items binding a payload to its temporal
  constraint and criticality;
* :mod:`repro.rtdb.modes` - operation modes ("combat", "landing") that
  re-weight per-item fault budgets, driving AIDA's bandwidth-allocation
  step;
* :mod:`repro.rtdb.updates` - versioned update dissemination and
  occurrence-walking version-consistent retrieval;
* :mod:`repro.rtdb.transactions` - deadline-tagged read transactions
  executed against a broadcast program, with temporal-consistency
  checking (latency- or version-age-based);
* :mod:`repro.rtdb.spec` - the declarative :class:`TemporalSpec` that
  ``repro.api.Scenario`` embeds, deriving the broadcast catalogue from
  the item population and active mode;
* :mod:`repro.rtdb.reference` - the seed slot-walking implementations,
  kept as the executable spec for equivalence property tests and the
  ``bench_rtdb`` before/after measurement.
"""

from repro.rtdb.temporal import (
    TemporalConstraint,
    constraint_from_kinematics,
    latency_budget_slots,
)
from repro.rtdb.items import DataItem
from repro.rtdb.modes import ModeManager, OperationMode
from repro.rtdb.transactions import (
    ReadTransaction,
    TransactionResult,
    execute_transaction,
)
from repro.rtdb.updates import (
    MAX_DEFAULT_HORIZON,
    UpdatingServer,
    VersionedRetrieval,
    consistency_rate,
    retrieve_versioned,
    versioned_horizon,
)
from repro.rtdb.spec import (
    TemporalItemSpec,
    TemporalSpec,
    TransactionSpec,
)

__all__ = [
    "TemporalConstraint",
    "constraint_from_kinematics",
    "latency_budget_slots",
    "DataItem",
    "ModeManager",
    "OperationMode",
    "ReadTransaction",
    "TransactionResult",
    "execute_transaction",
    "MAX_DEFAULT_HORIZON",
    "UpdatingServer",
    "VersionedRetrieval",
    "consistency_rate",
    "retrieve_versioned",
    "versioned_horizon",
    "TemporalItemSpec",
    "TemporalSpec",
    "TransactionSpec",
]
