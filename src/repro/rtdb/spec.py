"""The declarative real-time-database specification.

:class:`TemporalSpec` is to the rtdb layer what
:class:`repro.api.FaultSpec` is to the channel and
:class:`repro.traffic.TrafficSpec` is to the client population: one
immutable, JSON-round-trippable object naming the whole temporally
constrained database - which data items are on the air (with their
absolute temporal-consistency constraints, given directly in
milliseconds or derived from object kinematics), how critical each is
per operation mode, how fast the server re-disperses updates, and what
read-transaction mix clients issue.  ``repro.api.Scenario`` embeds one
under its ``"temporal"`` key and *derives its broadcast catalogue from
it*: each item's constraint becomes the file's latency budget in slots
(:func:`repro.rtdb.temporal.latency_budget_slots`), and the active
mode selects each item's AIDA fault budget.

The design-relevant parts are exactly the derived file specifications
and the active mode; **update periods and the transaction mix are
runtime knobs** - two specs differing only in those induce the same
broadcast program, which is what lets a sweep over update rates or
transaction mixes stay a solve-cache hit.

Validation is eager (construction raises
:class:`repro.errors.SpecificationError` on any inconsistent value,
including an item whose constraint cannot carry its blocks in *any*
declared mode) and serialization emits only the parameters the chosen
forms actually use, matching the ``FaultSpec`` idiom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.bdisk.file import FileSpec
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import (
    TemporalConstraint,
    constraint_from_kinematics,
    latency_budget_slots,
)
from repro.rtdb.transactions import ReadTransaction
from repro.rtdb.updates import UpdatingServer


def _check_int(value: Any, what: str, *, minimum: int | None = None) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be an integer, got {type(value).__name__}: "
            f"{value!r}"
        )
    if minimum is not None and value < minimum:
        raise SpecificationError(f"{what} must be >= {minimum}: {value}")


def _check_number(value: Any, what: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be a number, got {type(value).__name__}: "
            f"{value!r}"
        )


def _require_keys(
    payload: Mapping[str, Any], allowed: set[str], what: str
) -> None:
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"{what} must be an object, got {type(payload).__name__}: "
            f"{payload!r}"
        )
    unknown = set(payload) - allowed
    if unknown:
        raise SpecificationError(
            f"{what}: unknown keys {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


@dataclass(frozen=True)
class TemporalItemSpec:
    """One temporally constrained data item.

    The constraint is given in exactly one of two forms:

    * ``max_age_ms`` - the absolute staleness bound directly;
    * ``velocity_kmh`` + ``accuracy_m`` - object kinematics, from which
      the bound is derived (the paper's Section 1 arithmetic: a 900 km/h
      aircraft needing 100 m accuracy tolerates 400 ms).

    ``criticality`` maps operation modes to AIDA fault budgets ``r``;
    modes not mentioned fall back to ``default_faults``.
    """

    name: str
    blocks: int = 1
    max_age_ms: int | None = None
    velocity_kmh: float | None = None
    accuracy_m: float | None = None
    criticality: dict[str, int] = field(default_factory=dict)
    default_faults: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError(
                f"temporal item name must be a non-empty string: "
                f"{self.name!r}"
            )
        _check_int(
            self.blocks, f"temporal item {self.name!r}: blocks", minimum=1
        )
        kinematic = (
            self.velocity_kmh is not None or self.accuracy_m is not None
        )
        if (self.max_age_ms is None) == (not kinematic):
            raise SpecificationError(
                f"temporal item {self.name!r}: give exactly one of "
                f"max_age_ms or velocity_kmh+accuracy_m"
            )
        if kinematic and (
            self.velocity_kmh is None or self.accuracy_m is None
        ):
            raise SpecificationError(
                f"temporal item {self.name!r}: kinematics need both "
                f"velocity_kmh and accuracy_m"
            )
        if self.max_age_ms is not None:
            _check_int(
                self.max_age_ms,
                f"temporal item {self.name!r}: max_age_ms",
                minimum=1,
            )
        else:
            _check_number(
                self.velocity_kmh,
                f"temporal item {self.name!r}: velocity_kmh",
            )
            _check_number(
                self.accuracy_m,
                f"temporal item {self.name!r}: accuracy_m",
            )
        _check_int(
            self.default_faults,
            f"temporal item {self.name!r}: default_faults",
            minimum=0,
        )
        if not isinstance(self.criticality, Mapping):
            raise SpecificationError(
                f"temporal item {self.name!r}: criticality must be an "
                f"object (mode -> fault budget)"
            )
        object.__setattr__(self, "criticality", dict(self.criticality))
        for mode, budget in self.criticality.items():
            _check_int(
                budget,
                f"temporal item {self.name!r}: fault budget for mode "
                f"{mode!r}",
                minimum=0,
            )
        # Deriving the constraint surfaces kinematics range errors
        # (non-positive velocity, sub-millisecond bounds) eagerly.
        self.constraint()

    def constraint(self) -> TemporalConstraint:
        """The item's absolute temporal-consistency constraint."""
        if self.max_age_ms is not None:
            return TemporalConstraint(self.max_age_ms)
        return constraint_from_kinematics(
            self.velocity_kmh, self.accuracy_m
        )

    def data_item(self) -> DataItem:
        """The :class:`~repro.rtdb.items.DataItem` this spec declares.

        The payload is synthesized deterministically from the name (the
        :meth:`repro.bdisk.file.FileSpec.payload` recipe), so simulators
        and payload checks reproduce bit-for-bit without carrying bytes
        through JSON.
        """
        seed = self.name.encode("utf-8")
        unit = (seed * (64 // max(1, len(seed)) + 1))[:64]
        return DataItem(
            self.name,
            unit * self.blocks,
            self.constraint(),
            blocks=self.blocks,
            criticality=dict(self.criticality),
            default_faults=self.default_faults,
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict carrying only the constraint form given."""
        payload: dict[str, Any] = {"name": self.name, "blocks": self.blocks}
        if self.max_age_ms is not None:
            payload["max_age_ms"] = self.max_age_ms
        else:
            payload["velocity_kmh"] = self.velocity_kmh
            payload["accuracy_m"] = self.accuracy_m
        if self.criticality:
            payload["criticality"] = dict(self.criticality)
        if self.default_faults:
            payload["default_faults"] = self.default_faults
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TemporalItemSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"name", "blocks", "max_age_ms", "velocity_kmh",
             "accuracy_m", "criticality", "default_faults"},
            "temporal item",
        )
        return cls(
            name=payload.get("name", ""),
            blocks=payload.get("blocks", 1),
            max_age_ms=payload.get("max_age_ms"),
            velocity_kmh=payload.get("velocity_kmh"),
            accuracy_m=payload.get("accuracy_m"),
            criticality=payload.get("criticality", {}),
            default_faults=payload.get("default_faults", 0),
        )


@dataclass(frozen=True)
class TransactionSpec:
    """One entry of the client transaction mix.

    ``weight`` is the entry's relative draw probability in the traffic
    simulator's mix (any positive number; weights need not sum to 1).
    """

    name: str
    items: tuple[str, ...]
    deadline_slots: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "items", tuple(self.items))
        except TypeError as error:
            raise SpecificationError(
                f"transaction {self.name!r}: items must be a list: "
                f"{error}"
            ) from error
        # ReadTransaction owns the structural rules (non-empty, unique
        # items, positive deadline); building one validates them.
        self.as_transaction()
        _check_number(
            self.weight, f"transaction {self.name!r}: weight"
        )
        if self.weight <= 0:
            raise SpecificationError(
                f"transaction {self.name!r}: weight must be > 0, got "
                f"{self.weight}"
            )

    def as_transaction(self) -> ReadTransaction:
        """The executable :class:`ReadTransaction` this spec declares."""
        return ReadTransaction(self.name, self.items, self.deadline_slots)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict (weight omitted at its default)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "items": list(self.items),
            "deadline_slots": self.deadline_slots,
        }
        if self.weight != 1.0:
            payload["weight"] = self.weight
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TransactionSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"name", "items", "deadline_slots", "weight"},
            "transaction spec",
        )
        missing = {"name", "items", "deadline_slots"} - set(payload)
        if missing:
            raise SpecificationError(
                f"transaction spec is missing {sorted(missing)}: "
                f"{dict(payload)!r}"
            )
        return cls(
            name=payload["name"],
            items=payload["items"],
            deadline_slots=payload["deadline_slots"],
            weight=payload.get("weight", 1.0),
        )


@dataclass(frozen=True)
class TemporalSpec:
    """A temporally constrained database over a broadcast channel.

    Attributes
    ----------
    slot_ms:
        Broadcast slot duration in milliseconds (one block transmission
        at the channel rate) - the bridge between the items' wall-clock
        constraints and the designer's slot budgets.  The channel serves
        one block per slot, so temporal scenarios design at bandwidth 1.
    items:
        The data items on the air, hottest-first (traffic popularity
        laws weight by position).
    update_periods:
        Per-item update period in slots: item ``i`` gets a new version
        every ``update_periods[i]`` slots.  Every item needs one.  A
        *runtime* knob - not design-relevant.
    mode:
        The active operation mode (selects per-item fault budgets).
        Design-relevant.
    modes:
        All modes the system can operate in (defaults to just ``mode``).
    update_overhead_ms:
        Sensing/dispersal latency before a fresh value hits the air;
        eats into every item's budget.  Design-relevant.
    transactions:
        Optional weighted read-transaction mix for the traffic
        simulator; empty means single-item reads drawn from the traffic
        popularity law.  A *runtime* knob - not design-relevant.
    """

    slot_ms: float
    items: tuple[TemporalItemSpec, ...]
    update_periods: dict[str, int]
    mode: str = "default"
    modes: tuple[str, ...] = ()
    update_overhead_ms: float = 0.0
    transactions: tuple[TransactionSpec, ...] = ()

    def __post_init__(self) -> None:
        _check_number(self.slot_ms, "temporal slot_ms")
        if self.slot_ms <= 0:
            raise SpecificationError(
                f"temporal slot_ms must be > 0: {self.slot_ms}"
            )
        _check_number(self.update_overhead_ms, "temporal update_overhead_ms")
        if self.update_overhead_ms < 0:
            raise SpecificationError(
                f"temporal update_overhead_ms must be >= 0: "
                f"{self.update_overhead_ms}"
            )
        try:
            object.__setattr__(self, "items", tuple(self.items))
        except TypeError as error:
            raise SpecificationError(
                f"temporal items must be a list: {error}"
            ) from error
        if not self.items:
            raise SpecificationError(
                "a temporal spec needs at least one item"
            )
        for item in self.items:
            if not isinstance(item, TemporalItemSpec):
                raise SpecificationError(
                    f"temporal items must be TemporalItemSpec instances, "
                    f"got {type(item).__name__}"
                )
        names = [item.name for item in self.items]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecificationError(
                f"duplicate temporal item names {dupes}"
            )
        if not self.mode or not isinstance(self.mode, str):
            raise SpecificationError(
                f"temporal mode must be a non-empty string: {self.mode!r}"
            )
        try:
            object.__setattr__(self, "modes", tuple(self.modes))
        except TypeError as error:
            raise SpecificationError(
                f"temporal modes must be a list: {error}"
            ) from error
        if not self.modes:
            object.__setattr__(self, "modes", (self.mode,))
        if len(set(self.modes)) != len(self.modes):
            raise SpecificationError(
                f"duplicate temporal modes in {list(self.modes)}"
            )
        if self.mode not in self.modes:
            raise SpecificationError(
                f"active mode {self.mode!r} is not one of the declared "
                f"modes {list(self.modes)}"
            )
        known = set(names)
        for item in self.items:
            unknown = set(item.criticality) - set(self.modes)
            if unknown:
                raise SpecificationError(
                    f"temporal item {item.name!r}: criticality names "
                    f"unknown modes {sorted(unknown)} (declared: "
                    f"{list(self.modes)})"
                )
        if not isinstance(self.update_periods, Mapping):
            raise SpecificationError(
                "temporal update_periods must be an object "
                "(item -> period in slots)"
            )
        object.__setattr__(
            self, "update_periods", dict(self.update_periods)
        )
        missing = known - set(self.update_periods)
        if missing:
            raise SpecificationError(
                f"temporal update_periods is missing items "
                f"{sorted(missing)}"
            )
        unknown = set(self.update_periods) - known
        if unknown:
            raise SpecificationError(
                f"temporal update_periods names unknown items "
                f"{sorted(unknown)}"
            )
        for name, period in self.update_periods.items():
            _check_int(
                period,
                f"temporal update period for {name!r}",
                minimum=1,
            )
        try:
            object.__setattr__(
                self, "transactions", tuple(self.transactions)
            )
        except TypeError as error:
            raise SpecificationError(
                f"temporal transactions must be a list: {error}"
            ) from error
        for txn in self.transactions:
            if not isinstance(txn, TransactionSpec):
                raise SpecificationError(
                    f"temporal transactions must be TransactionSpec "
                    f"instances, got {type(txn).__name__}"
                )
            ghost = set(txn.items) - known
            if ghost:
                raise SpecificationError(
                    f"transaction {txn.name!r} reads unknown items "
                    f"{sorted(ghost)}"
                )
        txn_names = [txn.name for txn in self.transactions]
        if len(set(txn_names)) != len(txn_names):
            dupes = sorted(
                {n for n in txn_names if txn_names.count(n) > 1}
            )
            raise SpecificationError(
                f"duplicate transaction names {dupes}"
            )
        # Every declared mode must be able to carry every item: an item
        # whose budget cannot fit its blocks plus that mode's fault
        # budget is a specification error *now*, not a mid-sweep crash.
        for mode in self.modes:
            self.file_specs(mode)

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------

    def data_items(self) -> dict[str, DataItem]:
        """The :class:`DataItem` population, keyed by name."""
        return {item.name: item.data_item() for item in self.items}

    def file_specs(self, mode: str | None = None) -> tuple[FileSpec, ...]:
        """The broadcast catalogue the items induce in a mode.

        These are the *design-relevant* derivation: each item's
        constraint becomes a latency budget in slots
        (``FileSpec.latency`` at bandwidth 1 - one block per slot) and
        the mode selects its fault budget.  Item order is preserved
        (hottest-first for the traffic popularity laws).
        """
        active = self.mode if mode is None else mode
        if active not in self.modes:
            raise SpecificationError(
                f"unknown mode {active!r}; known: {list(self.modes)}"
            )
        return tuple(
            item.data_item().as_file_spec(
                active,
                slot_ms=self.slot_ms,
                update_overhead_ms=self.update_overhead_ms,
            )
            for item in self.items
        )

    def max_age_slots(self) -> dict[str, int]:
        """Per-item freshness bound in slots.

        The same number as the item's design latency budget: a value
        whose age at completion exceeds it violates the constraint.
        """
        return {
            item.name: latency_budget_slots(
                item.constraint(),
                slot_ms=self.slot_ms,
                update_overhead_ms=self.update_overhead_ms,
            )
            for item in self.items
        }

    def server(self) -> UpdatingServer:
        """The update clocks (:class:`UpdatingServer`) of this spec."""
        return UpdatingServer(self.update_periods)

    def describe(self) -> str:
        """A one-line human summary (used by reports and the CLI)."""
        parts = [
            f"{len(self.items)} items",
            f"mode {self.mode}",
            f"slot {self.slot_ms} ms",
        ]
        periods = sorted(self.update_periods.values())
        parts.append(
            f"update periods {periods[0]}..{periods[-1]} slots"
        )
        if self.transactions:
            parts.append(f"{len(self.transactions)}-transaction mix")
        return ", ".join(parts)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :meth:`from_dict` round-trips it."""
        payload: dict[str, Any] = {
            "slot_ms": self.slot_ms,
            "items": [item.to_dict() for item in self.items],
            "update_periods": dict(self.update_periods),
            "mode": self.mode,
            "modes": list(self.modes),
        }
        if self.update_overhead_ms:
            payload["update_overhead_ms"] = self.update_overhead_ms
        if self.transactions:
            payload["transactions"] = [
                txn.to_dict() for txn in self.transactions
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TemporalSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"slot_ms", "items", "update_periods", "mode", "modes",
             "update_overhead_ms", "transactions"},
            "temporal spec",
        )
        missing = {"slot_ms", "items", "update_periods"} - set(payload)
        if missing:
            raise SpecificationError(
                f"temporal spec is missing {sorted(missing)}"
            )
        items_payload = payload["items"]
        if isinstance(items_payload, (str, bytes, Mapping)) or not hasattr(
            items_payload, "__iter__"
        ):
            raise SpecificationError(
                f"temporal items must be a list of item objects, got "
                f"{type(items_payload).__name__}"
            )
        transactions_payload = payload.get("transactions", ())
        if isinstance(
            transactions_payload, (str, bytes, Mapping)
        ) or not hasattr(transactions_payload, "__iter__"):
            raise SpecificationError(
                f"temporal transactions must be a list of transaction "
                f"objects, got {type(transactions_payload).__name__}"
            )
        return cls(
            slot_ms=payload["slot_ms"],
            items=tuple(
                TemporalItemSpec.from_dict(entry)
                for entry in items_payload
            ),
            update_periods=payload["update_periods"],
            mode=payload.get("mode", "default"),
            modes=tuple(payload.get("modes", ())),
            update_overhead_ms=payload.get("update_overhead_ms", 0.0),
            transactions=tuple(
                TransactionSpec.from_dict(entry)
                for entry in transactions_payload
            ),
        )
