"""Absolute temporal consistency constraints.

The paper's Section 1 example: a data item recording an aircraft's
position, with the aircraft flying at 900 km/h and client transactions
needing 100 m positional accuracy, must never be staler than

    100 m / (900 km/h = 250 m/s) = 0.4 s = 400 ms,

while a 60 km/h tank with the same accuracy requirement tolerates 6000 ms.
:func:`constraint_from_kinematics` is that arithmetic; the constraint then
becomes the file's latency budget ``T_i`` in the broadcast-disk design
(the data must be retrievable - end to end - within the staleness bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import SpecificationError

#: km/h to m/s conversion factor.
_KMH_TO_MS = Fraction(1000, 3600)


@dataclass(frozen=True, slots=True)
class TemporalConstraint:
    """An absolute temporal consistency constraint.

    ``max_age_ms`` is the largest tolerable age of the value: a
    transaction reading the item must observe a version written within
    the last ``max_age_ms`` milliseconds.
    """

    max_age_ms: int

    def __post_init__(self) -> None:
        if self.max_age_ms < 1:
            raise SpecificationError(
                f"max_age_ms must be >= 1, got {self.max_age_ms}"
            )

    def is_fresh(self, age_ms: float) -> bool:
        """Whether a value of the given age satisfies the constraint."""
        return age_ms <= self.max_age_ms

    def __str__(self) -> str:
        return f"fresh within {self.max_age_ms} ms"


def constraint_from_kinematics(
    velocity_kmh: float, accuracy_m: float
) -> TemporalConstraint:
    """Derive a temporal constraint from object dynamics.

    An object moving at ``velocity_kmh`` drifts ``accuracy_m`` metres in
    ``accuracy_m / v`` seconds; that is the staleness bound beyond which
    the recorded position can no longer guarantee the accuracy.

    >>> constraint_from_kinematics(900, 100).max_age_ms
    400
    >>> constraint_from_kinematics(60, 100).max_age_ms
    6000
    """
    if velocity_kmh <= 0:
        raise SpecificationError(
            f"velocity must be > 0 km/h, got {velocity_kmh}"
        )
    if accuracy_m <= 0:
        raise SpecificationError(
            f"accuracy must be > 0 m, got {accuracy_m}"
        )
    velocity_ms = Fraction(velocity_kmh) * _KMH_TO_MS
    max_age_s = Fraction(accuracy_m) / velocity_ms
    max_age_ms = int(max_age_s * 1000)
    if max_age_ms < 1:
        raise SpecificationError(
            f"constraint tighter than 1 ms "
            f"(v={velocity_kmh} km/h, accuracy={accuracy_m} m) - "
            f"not representable"
        )
    return TemporalConstraint(max_age_ms)


def _exact_ms(value: float | int, what: str) -> Fraction:
    """A millisecond quantity as the exact decimal it was written as.

    Durations arrive as decimal literals (``slot_ms=0.6``); converting
    the *binary* float to a fraction would carry the representation
    error into the budget division and misround at exact multiples
    (``6000 // 0.6`` is 9999 in floats).  Routing through ``str`` keeps
    the decimal the caller wrote.
    """
    if isinstance(value, int):
        return Fraction(value)
    try:
        return Fraction(str(value))
    except ValueError as error:
        raise SpecificationError(
            f"{what} must be a finite number, got {value!r}"
        ) from error


def latency_budget_slots(
    constraint: TemporalConstraint,
    *,
    slot_ms: float,
    update_overhead_ms: float = 0.0,
) -> int:
    """Convert a temporal constraint into a slot-count latency budget.

    ``slot_ms`` is the broadcast slot duration (block transmission time);
    ``update_overhead_ms`` accounts for sensing/dispersal latency before
    the value hits the air, which eats into the budget.  The result is the
    ``d``/``T``-style window the broadcast designer receives.

    The division is exact: both durations are interpreted as the decimal
    literals they were written as (via :class:`~fractions.Fraction`), so
    a budget that is an exact multiple of the slot duration - e.g.
    6000 ms at ``slot_ms=0.6`` - yields exactly ``10000`` slots instead
    of misrounding one short through binary-float truncation.

    Raises
    ------
    SpecificationError
        If the overhead consumes the entire budget.
    """
    if slot_ms <= 0:
        raise SpecificationError(f"slot_ms must be > 0, got {slot_ms}")
    if update_overhead_ms < 0:
        raise SpecificationError(
            f"update_overhead_ms must be >= 0, got {update_overhead_ms}"
        )
    usable_ms = Fraction(constraint.max_age_ms) - _exact_ms(
        update_overhead_ms, "update_overhead_ms"
    )
    budget = int(usable_ms / _exact_ms(slot_ms, "slot_ms"))
    if budget < 1:
        raise SpecificationError(
            f"temporal constraint {constraint} leaves no slots at "
            f"slot_ms={slot_ms}, overhead={update_overhead_ms}"
        )
    return budget
