"""Seed slot-walking rtdb implementations, kept as an executable spec.

The production rtdb clients walk precomputed occurrence tables
(:class:`repro.bdisk.ProgramIndex`) and batch their fault queries.  This
module preserves the original slot-by-slot implementations - recompute
every slot's content from the schedule, visit every slot of the horizon,
ask the fault model one slot at a time - in the style of
:mod:`repro.sim.reference`, so that:

* property tests can assert the fast paths are *bit-identical* to the
  seed semantics on randomized programs, fault models, and update
  periods (``tests/rtdb/test_versioned_equivalence.py``);
* ``benchmarks/bench_rtdb.py`` can measure the speedup of the
  occurrence-indexed versioned retrieval against the behaviour it
  replaced.

Nothing here is used by the production pipeline; these functions are
deliberately naive and O(horizon x period).  The horizon convention is
shared with the production implementations
(:func:`repro.rtdb.updates.versioned_horizon`), so the two sides answer
the same question.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram
from repro.sim import reference as sim_reference
from repro.sim.faults import FaultModel, NoFaults
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import latency_budget_slots
from repro.rtdb.transactions import ReadTransaction, TransactionResult
from repro.rtdb.updates import (
    UpdatingServer,
    VersionedRetrieval,
    versioned_horizon,
)


def retrieve_versioned(
    program: BroadcastProgram,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    max_slots: int | None = None,
) -> VersionedRetrieval:
    """The seed ``retrieve_versioned``: walk every slot of the horizon.

    Semantics match :func:`repro.rtdb.updates.retrieve_versioned`
    exactly (including the shared default-horizon convention); only the
    algorithm differs - every slot's content is recomputed from the
    schedule and the fault model is asked one slot at a time.
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    update_period = server.period(file)
    horizon = (
        max_slots
        if max_slots is not None
        else versioned_horizon(program, m_needed, update_period)
    )

    held: set[int] = set()
    held_version: int | None = None
    discards = 0
    for t in range(start, start + horizon):
        content = sim_reference.slot_content(program, t)
        if content is None or content.file != file:
            continue
        if fault_model.is_lost(t):
            continue
        version = server.version_at(file, t)
        if held_version is None or version > held_version:
            discards += len(held)
            held = set()
            held_version = version
        elif version < held_version:  # pragma: no cover - monotone clock
            continue
        held.add(content.block_index)
        if len(held) >= m_needed:
            write = server.write_slot(file, held_version)
            return VersionedRetrieval(
                file=file,
                completed=True,
                finish_slot=t,
                latency=t - start + 1,
                version=held_version,
                age_at_completion=t - write,
                torn_discards=discards,
            )
    return VersionedRetrieval(
        file=file,
        completed=False,
        finish_slot=None,
        latency=None,
        version=held_version,
        age_at_completion=None,
        torn_discards=discards,
    )


def execute_transaction(
    program: BroadcastProgram,
    transaction: ReadTransaction,
    items: Mapping[str, DataItem],
    *,
    start: int = 0,
    slot_ms: float,
    faults: FaultModel | None = None,
    server: UpdatingServer | None = None,
    update_overhead_ms: float = 0.0,
) -> TransactionResult:
    """The seed ``execute_transaction``: slot-walking per-item fetches.

    Mirrors :func:`repro.rtdb.transactions.execute_transaction` - both
    regimes, same staleness rules, same sequential single-receiver
    chaining - but every retrieval is the slot walker
    (:func:`repro.sim.reference.retrieve` / :func:`retrieve_versioned`
    above).
    """
    fault_model = faults if faults is not None else NoFaults()
    clock = start
    retrievals = []
    versioned = []
    stale = []

    for name in transaction.items:
        item = items.get(name)
        if item is None:
            raise SimulationError(
                f"transaction {transaction.name!r} reads unknown item "
                f"{name!r}"
            )
        if server is None:
            result = sim_reference.retrieve(
                program,
                name,
                item.blocks,
                start=clock,
                faults=fault_model,
                need_distinct=True,
            )
            retrievals.append(result)
            completed = result.completed and result.finish_slot is not None
            if completed and not item.constraint.is_fresh(
                result.latency * slot_ms
            ):
                stale.append(name)
            finish = result.finish_slot
        else:
            vresult = retrieve_versioned(
                program,
                server,
                name,
                item.blocks,
                start=clock,
                faults=fault_model,
            )
            versioned.append(vresult)
            completed = (
                vresult.completed and vresult.finish_slot is not None
            )
            if completed and not vresult.is_fresh(
                latency_budget_slots(
                    item.constraint,
                    slot_ms=slot_ms,
                    update_overhead_ms=update_overhead_ms,
                )
            ):
                stale.append(name)
            finish = vresult.finish_slot
        if not completed or finish is None:
            return TransactionResult(
                transaction=transaction,
                start=start,
                retrievals=tuple(retrievals),
                finish_slot=None,
                stale_items=tuple(stale),
                versioned=tuple(versioned),
            )
        clock = finish + 1

    return TransactionResult(
        transaction=transaction,
        start=start,
        retrievals=tuple(retrievals),
        finish_slot=clock - 1,
        stale_items=tuple(stale),
        versioned=tuple(versioned),
    )
