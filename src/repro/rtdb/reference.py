"""Seed slot-walking rtdb implementations, kept as an executable spec.

The production rtdb clients walk precomputed occurrence tables
(:class:`repro.bdisk.ProgramIndex`) and batch their fault queries.  This
module preserves the original slot-by-slot implementations - recompute
every slot's content from the schedule, visit every slot of the horizon,
ask the fault model one slot at a time - in the style of
:mod:`repro.sim.reference`, so that:

* property tests can assert the fast paths are *bit-identical* to the
  seed semantics on randomized programs, fault models, and update
  periods (``tests/rtdb/test_versioned_equivalence.py``);
* ``benchmarks/bench_rtdb.py`` can measure the speedup of the
  occurrence-indexed versioned retrieval against the behaviour it
  replaced.

Nothing here is used by the production pipeline; these functions are
deliberately naive and O(horizon x period).  The horizon convention is
shared with the production implementations
(:func:`repro.rtdb.updates.versioned_horizon`), so the two sides answer
the same question.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram
from repro.sim import reference as sim_reference
from repro.sim.faults import FaultModel, NoFaults
from repro.rtdb.items import DataItem
from repro.rtdb.temporal import latency_budget_slots
from repro.rtdb.transactions import ReadTransaction, TransactionResult
from repro.rtdb.updates import (
    UpdatingServer,
    VersionedRetrieval,
    versioned_horizon,
)


def retrieve_versioned(
    program: BroadcastProgram,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    max_slots: int | None = None,
) -> VersionedRetrieval:
    """The seed ``retrieve_versioned``: walk every slot of the horizon.

    Semantics match :func:`repro.rtdb.updates.retrieve_versioned`
    exactly (including the shared default-horizon convention); only the
    algorithm differs - every slot's content is recomputed from the
    schedule and the fault model is asked one slot at a time.
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    update_period = server.period(file)
    horizon = (
        max_slots
        if max_slots is not None
        else versioned_horizon(program, m_needed, update_period)
    )

    held: set[int] = set()
    held_version: int | None = None
    discards = 0
    for t in range(start, start + horizon):
        content = sim_reference.slot_content(program, t)
        if content is None or content.file != file:
            continue
        if fault_model.is_lost(t):
            continue
        version = server.version_at(file, t)
        if held_version is None or version > held_version:
            discards += len(held)
            held = set()
            held_version = version
        elif version < held_version:  # pragma: no cover - monotone clock
            continue
        held.add(content.block_index)
        if len(held) >= m_needed:
            write = server.write_slot(file, held_version)
            return VersionedRetrieval(
                file=file,
                completed=True,
                finish_slot=t,
                latency=t - start + 1,
                version=held_version,
                age_at_completion=t - write,
                torn_discards=discards,
            )
    return VersionedRetrieval(
        file=file,
        completed=False,
        finish_slot=None,
        latency=None,
        version=held_version,
        age_at_completion=None,
        torn_discards=discards,
    )


def execute_transaction(
    program: BroadcastProgram,
    transaction: ReadTransaction,
    items: Mapping[str, DataItem],
    *,
    start: int = 0,
    slot_ms: float,
    faults: FaultModel | None = None,
    server: UpdatingServer | None = None,
    update_overhead_ms: float = 0.0,
) -> TransactionResult:
    """The seed ``execute_transaction``: slot-walking per-item fetches.

    Mirrors :func:`repro.rtdb.transactions.execute_transaction` - both
    regimes, same staleness rules, same sequential single-receiver
    chaining - but every retrieval is the slot walker
    (:func:`repro.sim.reference.retrieve` / :func:`retrieve_versioned`
    above).
    """
    fault_model = faults if faults is not None else NoFaults()
    clock = start
    retrievals = []
    versioned = []
    stale = []

    for name in transaction.items:
        item = items.get(name)
        if item is None:
            raise SimulationError(
                f"transaction {transaction.name!r} reads unknown item "
                f"{name!r}"
            )
        if server is None:
            result = sim_reference.retrieve(
                program,
                name,
                item.blocks,
                start=clock,
                faults=fault_model,
                need_distinct=True,
            )
            retrievals.append(result)
            completed = result.completed and result.finish_slot is not None
            if completed and not item.constraint.is_fresh(
                result.latency * slot_ms
            ):
                stale.append(name)
            finish = result.finish_slot
        else:
            vresult = retrieve_versioned(
                program,
                server,
                name,
                item.blocks,
                start=clock,
                faults=fault_model,
            )
            versioned.append(vresult)
            completed = (
                vresult.completed and vresult.finish_slot is not None
            )
            if completed and not vresult.is_fresh(
                latency_budget_slots(
                    item.constraint,
                    slot_ms=slot_ms,
                    update_overhead_ms=update_overhead_ms,
                )
            ):
                stale.append(name)
            finish = vresult.finish_slot
        if not completed or finish is None:
            return TransactionResult(
                transaction=transaction,
                start=start,
                retrievals=tuple(retrievals),
                finish_slot=None,
                stale_items=tuple(stale),
                versioned=tuple(versioned),
            )
        clock = finish + 1

    return TransactionResult(
        transaction=transaction,
        start=start,
        retrievals=tuple(retrievals),
        finish_slot=clock - 1,
        stale_items=tuple(stale),
        versioned=tuple(versioned),
    )


def retrieve_versioned_quorum(
    channels,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    tuned: int = 0,
    faults=None,
    quorum: int | None = None,
    max_slots: int | None = None,
):
    """The seed quorum read: slot-walking probes and copies throughout.

    Semantics match :func:`repro.rtdb.updates.retrieve_versioned_quorum`
    exactly - the sequential best-remaining-channel order, the tuning
    and horizon conventions, the trailing-run quorum condition - but
    every channel probe uses :func:`repro.sim.reference.retrieve` and
    every copy uses the slot-walking :func:`retrieve_versioned` above.
    """
    from repro.rtdb.updates import MAX_DEFAULT_HORIZON, QuorumRead

    r = channels.quorum if quorum is None else quorum
    candidates = channels.channels_for(file)
    if r > len(candidates):
        raise SimulationError(
            f"quorum {r} of {file!r} needs {r} copies, but only "
            f"{len(candidates)} channel(s) carry it "
            f"(channels {list(candidates)})"
        )
    update_period = server.period(file)
    remaining = list(candidates)
    clock, current, switches = start, tuned, 0
    completed_copies = 0
    run = 0
    run_version = None
    newest = None
    discards = 0
    aborted = 0
    last_busy = start

    while remaining:
        # The shared choice rule, re-derived with slot-walking probes.
        best_key = None
        chosen = None
        for candidate in remaining:
            listen = clock
            if candidate != current:
                listen += channels.tuning_cost
            program = channels.programs[candidate]
            plain_horizon = (m_needed + 2) * program.data_cycle_length
            probe = sim_reference.retrieve(
                program,
                file,
                m_needed,
                start=listen,
                faults=None,
                need_distinct=True,
                max_slots=plain_horizon,
            )
            busy_until = (
                probe.finish_slot
                if probe.completed and probe.finish_slot is not None
                else listen + plain_horizon - 1
            )
            key = (0 if probe.completed else 1, busy_until, candidate)
            if best_key is None or key < best_key:
                best_key = key
                chosen = (candidate, listen)
        channel, listen = chosen
        remaining.remove(channel)
        if channel != current:
            switches += 1
            current = channel
        program = channels.programs[channel]
        if max_slots is not None:
            horizon = max_slots
        else:
            horizon = versioned_horizon(program, m_needed, update_period)
            if horizon > MAX_DEFAULT_HORIZON:
                raise SimulationError(
                    f"default horizon for a versioned retrieval of "
                    f"{file!r} is {horizon} slots, past the "
                    f"{MAX_DEFAULT_HORIZON}-slot budget; pass max_slots"
                )
        fault_model = faults[channel] if faults is not None else None
        copy = retrieve_versioned(
            program,
            server,
            file,
            m_needed,
            start=listen,
            faults=fault_model,
            max_slots=horizon,
        )
        discards += copy.torn_discards
        if copy.completed and copy.finish_slot is not None:
            completed_copies += 1
            if copy.version == run_version:
                run += 1
            else:
                run = 1
                run_version = copy.version
            newest = copy.version
            last_busy = copy.finish_slot
            clock = copy.finish_slot + 1
            if run >= r:
                return QuorumRead(
                    file=file,
                    start=start,
                    outcome="ok",
                    version=copy.version,
                    finish_slot=copy.finish_slot,
                    latency=copy.finish_slot - start + 1,
                    tuned=current,
                    switches=switches,
                    copies=completed_copies,
                    stale_copies=completed_copies - run,
                    age_at_completion=copy.age_at_completion,
                    torn_discards=discards,
                )
        else:
            aborted += 1
            last_busy = listen + horizon - 1
            clock = last_busy + 1

    return QuorumRead(
        file=file,
        start=start,
        outcome="incomplete" if aborted else "mismatch",
        version=newest,
        finish_slot=last_busy,
        latency=None,
        tuned=current,
        switches=switches,
        copies=completed_copies,
        stale_copies=completed_copies - run,
        age_at_completion=None,
        torn_discards=discards,
    )
