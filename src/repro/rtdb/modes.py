"""Operation modes and mode-driven broadcast program management.

Section 2.2: "the fault-tolerant timely access of a data object (e.g.
'location of nearby aircrafts') could be critical in a given mode of
operation (e.g. 'combat'), but less critical in a different mode (e.g.
'landing')".  AIDA makes the redundancy level a per-mode knob; switching
modes re-runs the bandwidth-allocation step and redesigns the broadcast
program without re-dispersing any file.

:class:`ModeManager` owns a set of :class:`repro.rtdb.items.DataItem` and
produces, per mode, the file specifications, the AIDA redundancy policy,
and (lazily, cached) the designed broadcast program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecificationError
from repro.bdisk.builder import ProgramDesign, design_program
from repro.ida.aida import RedundancyPolicy
from repro.rtdb.items import DataItem


@dataclass(frozen=True, slots=True)
class OperationMode:
    """A named mode with a human-readable description."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("mode name must be non-empty")


class ModeManager:
    """Per-mode broadcast-disk designs over a fixed item population.

    Parameters
    ----------
    items:
        The database objects on the air.
    modes:
        The modes the system can operate in.
    slot_ms:
        Slot duration used to convert temporal constraints to budgets.
    """

    def __init__(
        self,
        items: list[DataItem],
        modes: list[OperationMode],
        *,
        slot_ms: float,
    ) -> None:
        if not items:
            raise SpecificationError("at least one item is required")
        if not modes:
            raise SpecificationError("at least one mode is required")
        names = [item.name for item in items]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate item names in {names}")
        self.items = list(items)
        self.modes = {mode.name: mode for mode in modes}
        if len(self.modes) != len(modes):
            raise SpecificationError("duplicate mode names")
        self.slot_ms = slot_ms
        self._designs: dict[str, ProgramDesign] = {}
        self._active: str = modes[0].name

    @property
    def active_mode(self) -> str:
        """The currently active mode name."""
        return self._active

    def switch_to(self, mode: str) -> ProgramDesign:
        """Activate ``mode`` and return its (cached) program design."""
        if mode not in self.modes:
            raise SpecificationError(
                f"unknown mode {mode!r}; known: {sorted(self.modes)}"
            )
        self._active = mode
        return self.design_for(mode)

    def design_for(self, mode: str) -> ProgramDesign:
        """The broadcast program design for a mode (designed on demand)."""
        if mode not in self.modes:
            raise SpecificationError(
                f"unknown mode {mode!r}; known: {sorted(self.modes)}"
            )
        if mode not in self._designs:
            specs = [
                item.as_file_spec(mode, slot_ms=self.slot_ms)
                for item in self.items
            ]
            self._designs[mode] = design_program(specs)
        return self._designs[mode]

    def redundancy_policy(self) -> RedundancyPolicy:
        """The AIDA policy implied by the items' criticality tables."""
        budgets = {
            mode: {
                item.name: item.fault_budget(mode) for item in self.items
            }
            for mode in self.modes
        }
        return RedundancyPolicy(budgets)

    def bandwidth_by_mode(self) -> dict[str, int]:
        """Planned bandwidth per mode - the cost of criticality.

        Benches use this to show the bandwidth/fault-tolerance trade-off
        across modes (more critical items => more redundancy slots =>
        more bandwidth).
        """
        return {
            mode: self.design_for(mode).bandwidth_plan.bandwidth
            for mode in self.modes
        }
