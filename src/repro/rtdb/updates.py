"""Update dissemination: versioned items on a broadcast disk.

The paper's temporal-consistency motivation presumes the server keeps
re-dispersing fresh values ("disseminating updates" is the companion
line of work it cites).  This module models that loop:

* an :class:`UpdatingServer` owns per-item update periods: item ``i``
  gets a new version every ``period_i`` slots (version ``k`` is written
  at slot ``k * period_i``);
* every broadcast slot carries the block *of the version current at
  that slot* - so a client whose retrieval straddles an update observes
  blocks from two versions;
* IDA cannot mix versions (the linear combinations differ), so the
  client discards stale blocks and keeps collecting - a **torn read**
  that costs extra latency, which is exactly why tight temporal
  constraints need tight retrieval windows;
* the value's **age at completion** is ``finish - version_write_slot``;
  temporal consistency holds when that age fits the item's constraint.

:func:`retrieve_versioned` implements the client as an *occurrence
walker*: it jumps service-to-service along the program's precomputed
occurrence index (:attr:`BroadcastProgram.index`), asking the fault
model about whole batches of candidate slots at once - the same
treatment :func:`repro.sim.client.retrieve` received.  Slots carrying
other files never affected the outcome and fault decisions are
deterministic per ``(seed, slot)``, so the result is bit-identical to
the seed slot-walking loop (kept in :mod:`repro.rtdb.reference` as the
executable spec); benches sweep update periods to show the feasibility
frontier between update rate and the retrieval window.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Mapping, Sequence, TYPE_CHECKING

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import choose_channel, default_horizon
from repro.sim.faults import FaultModel, NoFaults, lost_in

if TYPE_CHECKING:  # pragma: no cover
    from repro.bdisk.multichannel import ChannelSet

#: Occurrences per batched fault query (the :mod:`repro.sim.client`
#: convention): large enough to amortize the batch call, small enough
#: that an early finish wastes little work.
_FAULT_BATCH = 128

#: Ceiling on the *derived* default horizon, in slots.  A default past
#: this is almost certainly a configuration accident (an enormous data
#: cycle); rather than silently walking millions of slots the retrieval
#: raises and asks the caller to choose ``max_slots`` explicitly.
#: Caller-chosen horizons are honoured whatever their size - the budget
#: bounds the *implicit* walk only.
MAX_DEFAULT_HORIZON = 1 << 22


class UpdatingServer:
    """Per-item update clocks.

    ``update_periods[item]`` is the number of slots between consecutive
    versions; version ``v`` of an item is written at slot
    ``v * period`` (version 0 exists from the start).
    """

    def __init__(self, update_periods: Mapping[str, int]) -> None:
        for item, period in update_periods.items():
            if not isinstance(period, int) or isinstance(period, bool):
                raise SpecificationError(
                    f"update period for {item!r} must be an integer "
                    f"slot count, got {period!r}"
                )
            if period < 1:
                raise SpecificationError(
                    f"update period for {item!r} must be >= 1 slot"
                )
        self._periods = dict(update_periods)

    def period(self, item: str) -> int:
        try:
            return self._periods[item]
        except KeyError:
            raise SimulationError(
                f"no update period known for {item!r}"
            ) from None

    def version_at(self, item: str, slot: int) -> int:
        """The version current while slot ``slot`` is broadcast."""
        return slot // self.period(item)

    def write_slot(self, item: str, version: int) -> int:
        """The slot at which ``version`` was written."""
        return version * self.period(item)


def versioned_horizon(
    program: BroadcastProgram, m_needed: int, update_period: int
) -> int:
    """The default listening horizon for a versioned retrieval.

    The guarantee the default must cover: *when the update period is at
    least one data cycle, a fault-free retrieval always completes within
    two data cycles.*  One data cycle of any file carries every one of
    its block indices (the occurrence tables' block column is a whole
    number of rotations per cycle), so a version epoch with at least a
    cycle remaining completes the read, and an epoch boundary - when one
    is needed at all - arrives within a cycle.  Faster updates than that
    sit in the torn-read regime, where completion depends on how epoch
    boundaries align with the rotation; a few extra epochs of listening
    is all that is worth spending there.

    The default is therefore the plain-retrieval convention
    (:func:`repro.sim.client.default_horizon`, ``(m + 2)`` data cycles -
    the fault-free guarantee plus fault margin) stretched by at most one
    update period, clamped to one extra cycle's worth per epoch regime:
    ``(m + 2) * cycle + min(period, (m + 2) * cycle)``.  Unlike the old
    ``(m + 2) * (cycle + period)`` it grows *at most twofold* however
    long the item's period is, instead of exploding linearly in the
    period.
    """
    base = default_horizon(program, m_needed)
    return base + min(update_period, base)


@dataclass(frozen=True)
class VersionedRetrieval:
    """Outcome of a retrieval against a live-updated item."""

    file: str
    completed: bool
    finish_slot: int | None
    latency: int | None
    version: int | None
    age_at_completion: int | None
    torn_discards: int

    def is_fresh(self, max_age_slots: int) -> bool:
        """Temporal consistency at completion time."""
        return (
            self.completed
            and self.age_at_completion is not None
            and self.age_at_completion <= max_age_slots
        )


def retrieve_versioned(
    program: BroadcastProgram,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    max_slots: int | None = None,
) -> VersionedRetrieval:
    """Retrieve ``m_needed`` distinct blocks *of one version*.

    Blocks of an older version are discarded the moment a newer one is
    seen (IDA cannot reconstruct across versions).  The result reports
    the version obtained, its age when retrieval completed, and how many
    blocks were thrown away to torn reads.

    The client walks the occurrence index service-to-service with
    batched fault queries; outcomes are bit-identical to the slot
    walker preserved in :func:`repro.rtdb.reference.retrieve_versioned`.

    Raises
    ------
    SimulationError
        If ``file`` is not broadcast, or no ``max_slots`` was given and
        the derived default horizon exceeds :data:`MAX_DEFAULT_HORIZON`
        (pass an explicit ``max_slots`` to listen longer deliberately).
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    update_period = server.period(file)
    if max_slots is not None:
        horizon = max_slots
    else:
        horizon = versioned_horizon(program, m_needed, update_period)
        if horizon > MAX_DEFAULT_HORIZON:
            raise SimulationError(
                f"default horizon for a versioned retrieval of {file!r} "
                f"is {horizon} slots (m={m_needed}, data cycle "
                f"{program.data_cycle_length}, period {update_period}), "
                f"past the {MAX_DEFAULT_HORIZON}-slot budget; pass "
                f"max_slots to listen that long deliberately"
            )
    end = start + horizon

    held: set[int] = set()
    held_version: int | None = None
    discards = 0

    index = program.index
    occ_slots = index.occurrence_slots(file)
    occ_blocks = index.occurrence_blocks(file)
    count = len(occ_slots)
    cycle = index.data_cycle_length
    quotient, within = divmod(start, cycle)
    base = quotient * cycle
    i = bisect_left(occ_slots, within)

    # The version-absorb step is inlined in both walks below (a per-
    # occurrence function call would dominate the fault-free path):
    # a newer version discards everything held; an older one (never
    # produced by the monotone clock) would be skipped; completion
    # reports the held version's write-slot age.
    if isinstance(fault_model, NoFaults):
        # Fault-free fast path: no decisions to make, walk the arrays.
        held_add = held.add
        while base < end:
            while i < count:
                slot = base + occ_slots[i]
                if slot >= end:
                    base = end  # horizon exhausted
                    break
                block = occ_blocks[i]
                i += 1
                version = slot // update_period
                if version != held_version:
                    if held:
                        discards += len(held)
                        held = set()
                        held_add = held.add
                    held_version = version
                held_add(block)
                if len(held) >= m_needed:
                    return VersionedRetrieval(
                        file=file,
                        completed=True,
                        finish_slot=slot,
                        latency=slot - start + 1,
                        version=version,
                        age_at_completion=slot - version * update_period,
                        torn_discards=discards,
                    )
            else:
                base += cycle
                i = 0
    else:
        while base < end:
            # Gather the next batch of service slots inside the horizon
            # and decide their fates in one fault-model call.
            batch_slots: list[int] = []
            batch_blocks: list[int] = []
            while len(batch_slots) < _FAULT_BATCH:
                if i >= count:
                    base += cycle
                    i = 0
                    if base >= end:
                        break
                    continue
                slot = base + occ_slots[i]
                if slot >= end:
                    base = end
                    break
                batch_slots.append(slot)
                batch_blocks.append(occ_blocks[i])
                i += 1
            if not batch_slots:
                break
            decisions = lost_in(fault_model, batch_slots)
            for slot, block, is_lost in zip(
                batch_slots, batch_blocks, decisions
            ):
                if is_lost:
                    continue
                version = slot // update_period
                if version != held_version:
                    if held:
                        discards += len(held)
                        held = set()
                    held_version = version
                held.add(block)
                if len(held) >= m_needed:
                    return VersionedRetrieval(
                        file=file,
                        completed=True,
                        finish_slot=slot,
                        latency=slot - start + 1,
                        version=version,
                        age_at_completion=slot - version * update_period,
                        torn_discards=discards,
                    )
    return VersionedRetrieval(
        file=file,
        completed=False,
        finish_slot=None,
        latency=None,
        version=held_version,
        age_at_completion=None,
        torn_discards=discards,
    )


#: Outcomes a quorum read can report.
QUORUM_OUTCOMES = ("ok", "mismatch", "incomplete")


@dataclass(frozen=True)
class QuorumRead:
    """Outcome of an r-of-k version-consistent read over a channel set.

    Attributes
    ----------
    file:
        The item read.
    start:
        The slot the client decided to read at.
    outcome:
        ``"ok"`` - ``r`` copies of one version assembled;
        ``"mismatch"`` - every candidate channel was read cleanly but an
        update landed mid-assembly, so no ``r`` copies share the newest
        version; ``"incomplete"`` - at least one copy retrieval
        exhausted its horizon before the quorum formed.
    version:
        The version the quorum agreed on (``"ok"``), or the newest
        version seen (otherwise; ``None`` when nothing completed).
    finish_slot:
        The last slot the client was busy (quorum completion slot on
        ``"ok"``).
    latency:
        ``finish_slot - start + 1`` on ``"ok"``, else ``None``.
    tuned:
        The channel the client ends up tuned to.
    switches:
        Re-tunes performed (each cost ``tuning_cost`` slots).
    copies:
        Copy retrievals that completed.
    stale_copies:
        Completed copies whose version lost to a newer one mid-assembly
        (wasted reads, the quorum protocol's torn-read analogue).
    age_at_completion:
        The agreed version's age at the quorum completion slot
        (``"ok"`` only).
    torn_discards:
        Blocks discarded to torn reads, summed over all copies.
    """

    file: str
    start: int
    outcome: str
    version: int | None
    finish_slot: int
    latency: int | None
    tuned: int
    switches: int
    copies: int
    stale_copies: int
    age_at_completion: int | None
    torn_discards: int

    @property
    def completed(self) -> bool:
        """Whether the quorum assembled (``outcome == "ok"``)."""
        return self.outcome == "ok"

    def is_fresh(self, max_age_slots: int) -> bool:
        """Temporal consistency of the agreed version at completion."""
        return (
            self.completed
            and self.age_at_completion is not None
            and self.age_at_completion <= max_age_slots
        )


def retrieve_versioned_quorum(
    channels: "ChannelSet",
    server: UpdatingServer,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    tuned: int = 0,
    faults: Sequence[FaultModel | None] | None = None,
    quorum: int | None = None,
    max_slots: int | None = None,
) -> QuorumRead:
    """Assemble an ``r``-of-``k`` version-consistent read.

    A single-receiver client reads copies *sequentially*: at each step
    it picks the best remaining candidate channel by the shared
    fault-free choice rule (:func:`repro.sim.client.choose_channel`),
    re-tunes if needed (paying ``tuning_cost``), and runs an ordinary
    :func:`retrieve_versioned` there under that channel's fault model.
    Because the update clock is monotone, copy versions are
    non-decreasing, so the quorum condition is simply a trailing run of
    ``r`` copies with one version; an update landing mid-assembly
    resets the run (earlier copies become ``stale_copies``) and the
    client keeps going on fresh channels.

    ``quorum`` overrides the channel set's configured ``r``.  With one
    channel and ``r=1`` the read degenerates to a single
    :func:`retrieve_versioned` - bit-identical latency, version, age,
    and torn discards - so ``k=1`` scenarios reproduce the
    single-channel stack exactly.
    """
    r = channels.quorum if quorum is None else quorum
    candidates = channels.channels_for(file)
    if r < 1:
        raise SpecificationError(f"quorum must be >= 1: {r}")
    if r > len(candidates):
        raise SimulationError(
            f"quorum {r} of {file!r} needs {r} copies, but only "
            f"{len(candidates)} channel(s) carry it "
            f"(channels {list(candidates)})"
        )
    if faults is not None and len(faults) != channels.count:
        raise SimulationError(
            f"faults must have one entry per channel: got {len(faults)} "
            f"for {channels.count} channel(s)"
        )
    update_period = server.period(file)
    remaining = list(candidates)
    clock, current, switches = start, tuned, 0
    completed_copies = 0
    run = 0
    run_version: int | None = None
    newest: int | None = None
    discards = 0
    aborted = 0
    last_busy = start

    while remaining:
        channel, listen, _plain_horizon, _probe = choose_channel(
            channels,
            file,
            m_needed,
            start=clock,
            tuned=current,
            among=tuple(remaining),
        )
        remaining.remove(channel)
        if channel != current:
            switches += 1
            current = channel
        program = channels.programs[channel]
        if max_slots is not None:
            horizon = max_slots
        else:
            horizon = versioned_horizon(program, m_needed, update_period)
            if horizon > MAX_DEFAULT_HORIZON:
                raise SimulationError(
                    f"default horizon for a versioned retrieval of "
                    f"{file!r} is {horizon} slots (m={m_needed}, data "
                    f"cycle {program.data_cycle_length}, period "
                    f"{update_period}), past the "
                    f"{MAX_DEFAULT_HORIZON}-slot budget; pass max_slots "
                    f"to listen that long deliberately"
                )
        fault_model = faults[channel] if faults is not None else None
        copy = retrieve_versioned(
            program,
            server,
            file,
            m_needed,
            start=listen,
            faults=fault_model,
            max_slots=horizon,
        )
        discards += copy.torn_discards
        if copy.completed and copy.finish_slot is not None:
            completed_copies += 1
            if copy.version == run_version:
                run += 1
            else:
                run = 1
                run_version = copy.version
            newest = copy.version
            last_busy = copy.finish_slot
            clock = copy.finish_slot + 1
            if run >= r:
                return QuorumRead(
                    file=file,
                    start=start,
                    outcome="ok",
                    version=copy.version,
                    finish_slot=copy.finish_slot,
                    latency=copy.finish_slot - start + 1,
                    tuned=current,
                    switches=switches,
                    copies=completed_copies,
                    stale_copies=completed_copies - run,
                    age_at_completion=copy.age_at_completion,
                    torn_discards=discards,
                )
        else:
            aborted += 1
            last_busy = listen + horizon - 1
            clock = last_busy + 1

    return QuorumRead(
        file=file,
        start=start,
        outcome="incomplete" if aborted else "mismatch",
        version=newest,
        finish_slot=last_busy,
        latency=None,
        tuned=current,
        switches=switches,
        copies=completed_copies,
        stale_copies=completed_copies - run,
        age_at_completion=None,
        torn_discards=discards,
    )


def consistency_rate(
    program: BroadcastProgram,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    max_age_slots: int,
    *,
    faults: FaultModel | None = None,
) -> float:
    """Fraction of phases whose retrieval is temporally consistent.

    Sweeps every client phase over one data cycle (the distinct client
    experiences of the periodic program) and checks the completed
    value's age against ``max_age_slots``.
    """
    if max_age_slots < 1:
        raise SpecificationError(
            f"max_age_slots must be >= 1: {max_age_slots}"
        )
    fresh = 0
    total = program.data_cycle_length
    for phase in range(total):
        result = retrieve_versioned(
            program, server, file, m_needed, start=phase, faults=faults
        )
        if result.is_fresh(max_age_slots):
            fresh += 1
    return fresh / total
