"""Update dissemination: versioned items on a broadcast disk.

The paper's temporal-consistency motivation presumes the server keeps
re-dispersing fresh values ("disseminating updates" is the companion
line of work it cites).  This module models that loop:

* an :class:`UpdatingServer` owns per-item update periods: item ``i``
  gets a new version every ``period_i`` slots (version ``k`` is written
  at slot ``k * period_i``);
* every broadcast slot carries the block *of the version current at
  that slot* - so a client whose retrieval straddles an update observes
  blocks from two versions;
* IDA cannot mix versions (the linear combinations differ), so the
  client discards stale blocks and keeps collecting - a **torn read**
  that costs extra latency, which is exactly why tight temporal
  constraints need tight retrieval windows;
* the value's **age at completion** is ``finish - version_write_slot``;
  temporal consistency holds when that age fits the item's constraint.

:func:`retrieve_versioned` implements the client; benches sweep update
periods to show the feasibility frontier between update rate and the
retrieval window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.faults import FaultModel, NoFaults


class UpdatingServer:
    """Per-item update clocks.

    ``update_periods[item]`` is the number of slots between consecutive
    versions; version ``v`` of an item is written at slot
    ``v * period`` (version 0 exists from the start).
    """

    def __init__(self, update_periods: Mapping[str, int]) -> None:
        for item, period in update_periods.items():
            if period < 1:
                raise SpecificationError(
                    f"update period for {item!r} must be >= 1 slot"
                )
        self._periods = dict(update_periods)

    def period(self, item: str) -> int:
        try:
            return self._periods[item]
        except KeyError:
            raise SimulationError(
                f"no update period known for {item!r}"
            ) from None

    def version_at(self, item: str, slot: int) -> int:
        """The version current while slot ``slot`` is broadcast."""
        return slot // self.period(item)

    def write_slot(self, item: str, version: int) -> int:
        """The slot at which ``version`` was written."""
        return version * self.period(item)


@dataclass(frozen=True)
class VersionedRetrieval:
    """Outcome of a retrieval against a live-updated item."""

    file: str
    completed: bool
    finish_slot: int | None
    latency: int | None
    version: int | None
    age_at_completion: int | None
    torn_discards: int

    def is_fresh(self, max_age_slots: int) -> bool:
        """Temporal consistency at completion time."""
        return (
            self.completed
            and self.age_at_completion is not None
            and self.age_at_completion <= max_age_slots
        )


def retrieve_versioned(
    program: BroadcastProgram,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    max_slots: int | None = None,
) -> VersionedRetrieval:
    """Retrieve ``m_needed`` distinct blocks *of one version*.

    Blocks of an older version are discarded the moment a newer one is
    seen (IDA cannot reconstruct across versions).  The result reports
    the version obtained, its age when retrieval completed, and how many
    blocks were thrown away to torn reads.
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    update_period = server.period(file)
    horizon = (
        max_slots
        if max_slots is not None
        else (m_needed + 2) * (program.data_cycle_length + update_period)
    )

    held: set[int] = set()
    held_version: int | None = None
    discards = 0
    for t in range(start, start + horizon):
        content = program.slot_content(t)
        if content is None or content.file != file:
            continue
        if fault_model.is_lost(t):
            continue
        version = server.version_at(file, t)
        if held_version is None or version > held_version:
            discards += len(held)
            held = set()
            held_version = version
        elif version < held_version:  # pragma: no cover - monotone clock
            continue
        held.add(content.block_index)
        if len(held) >= m_needed:
            write = server.write_slot(file, held_version)
            return VersionedRetrieval(
                file=file,
                completed=True,
                finish_slot=t,
                latency=t - start + 1,
                version=held_version,
                age_at_completion=t - write,
                torn_discards=discards,
            )
    return VersionedRetrieval(
        file=file,
        completed=False,
        finish_slot=None,
        latency=None,
        version=held_version,
        age_at_completion=None,
        torn_discards=discards,
    )


def consistency_rate(
    program: BroadcastProgram,
    server: UpdatingServer,
    file: str,
    m_needed: int,
    max_age_slots: int,
    *,
    faults: FaultModel | None = None,
) -> float:
    """Fraction of phases whose retrieval is temporally consistent.

    Sweeps every client phase over one data cycle (the distinct client
    experiences of the periodic program) and checks the completed
    value's age against ``max_age_slots``.
    """
    if max_age_slots < 1:
        raise SpecificationError(
            f"max_age_slots must be >= 1: {max_age_slots}"
        )
    fresh = 0
    total = program.data_cycle_length
    for phase in range(total):
        result = retrieve_versioned(
            program, server, file, m_needed, start=phase, faults=faults
        )
        if result.is_fresh(max_age_slots):
            fresh += 1
    return fresh / total
