"""Dispersal and reconstruction of files (Figures 2 and 3 of the paper).

``disperse`` processes a file ``F`` into ``N`` distinct blocks such that
recombining any ``m`` of them retrieves ``F`` exactly; ``reconstruct``
performs the inverse given at least ``m`` distinct blocks.  Both are the
linear transformations of Rabin's IDA over GF(2^8):

* the file is padded to a multiple of ``m`` and laid out as an
  ``m x width`` byte matrix (segment ``k`` is row ``k``);
* dispersal multiplies by the ``N x m`` matrix from
  :mod:`repro.ida.vandermonde`: dispersed block ``i`` is row ``i`` of the
  product - ``width`` bytes each, i.e. a total expansion factor of
  ``N / m``;
* reconstruction selects the rows matching the received block indices,
  inverts that ``m x m`` submatrix, and multiplies - then trims padding
  using the ``original_length`` carried by every self-identifying block.

Reconstruction inverses are precomputed per index-set and memoized; the
paper notes exactly this optimization ("the inverse transformation could
be precomputed for some or even all possible subsets of m rows").
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import DispersalError
from repro.ida.blocks import Block
from repro.ida.gf256 import gf_matvec_bytes
from repro.ida.vandermonde import (
    dispersal_matrix,
    reconstruction_matrix,
    systematic_dispersal_matrix,
)


@lru_cache(maxsize=256)
def _cached_matrix(n_total: int, m: int, systematic: bool) -> np.ndarray:
    if systematic:
        return systematic_dispersal_matrix(n_total, m)
    return dispersal_matrix(n_total, m)


@lru_cache(maxsize=4096)
def _cached_inverse(
    n_total: int, m: int, systematic: bool, indices: tuple[int, ...]
) -> np.ndarray:
    matrix = _cached_matrix(n_total, m, systematic)
    return reconstruction_matrix(matrix, indices)


def disperse(
    data: bytes,
    m: int,
    n_total: int,
    *,
    file_id: str = "file",
    systematic: bool = False,
) -> list[Block]:
    """Disperse ``data`` into ``n_total`` blocks, any ``m`` sufficient.

    Parameters
    ----------
    data:
        The file contents.  May be empty (blocks then carry only padding).
    m:
        Dispersal level: number of blocks needed for reconstruction.
    n_total:
        Total number of distinct blocks to produce (``N >= m``).
    file_id:
        Identity stamped into each self-identifying block.
    systematic:
        If true, the first ``m`` blocks are the plaintext segments
        themselves (handy for AIDA's zero-redundancy mode); the flag is
        recorded in each block so reconstruction picks the right family.

    Returns
    -------
    list[Block]
        ``n_total`` blocks with indices ``0 .. n_total - 1``.
    """
    if m < 1:
        raise DispersalError(f"dispersal level m={m} must be >= 1")
    matrix = _cached_matrix(n_total, m, systematic)

    width = max(1, -(-len(data) // m))  # ceil; at least 1 byte per segment
    padded = np.zeros(m * width, dtype=np.uint8)
    if data:
        padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
    segments = padded.reshape(m, width)

    dispersed = gf_matvec_bytes(matrix, segments)
    return [
        Block(
            file_id=file_id,
            index=row,
            m=m,
            n_total=n_total,
            original_length=len(data),
            payload=dispersed[row].tobytes(),
            systematic=systematic,
        )
        for row in range(n_total)
    ]


def _select_blocks(blocks: list[Block] | tuple[Block, ...]) -> dict[int, Block]:
    """Validate consistency and pick the first ``m`` distinct indices."""
    head = blocks[0]
    chosen: dict[int, Block] = {}
    for block in blocks:
        if (
            block.file_id != head.file_id
            or block.m != head.m
            or block.n_total != head.n_total
            or block.original_length != head.original_length
            or block.systematic != head.systematic
        ):
            raise DispersalError(
                f"inconsistent blocks: {block.sequence_label} does not "
                f"match {head.sequence_label}"
            )
        if len(block.payload) != len(head.payload):
            raise DispersalError(
                f"payload width mismatch on {block.sequence_label}"
            )
        if block.index not in chosen:
            chosen[block.index] = block
        if len(chosen) == head.m:
            break
    if len(chosen) < head.m:
        raise DispersalError(
            f"need {head.m} distinct blocks of {head.file_id!r}, "
            f"got {len(chosen)}"
        )
    return chosen


def reconstruct(blocks: list[Block] | tuple[Block, ...]) -> bytes:
    """Reconstruct the original file from any ``m`` distinct blocks.

    Consistency of the supplied blocks (same file, same parameters, same
    payload width, distinct indices) is validated; blocks beyond the first
    ``m`` distinct indices are ignored, mirroring a client that stops
    listening once it has enough.

    A systematic fast path skips matrix work entirely when the received
    indices happen to be exactly the plaintext rows ``0 .. m-1``.

    Raises
    ------
    DispersalError
        On an empty input, fewer than ``m`` distinct blocks, or
        inconsistent metadata.
    """
    if not blocks:
        raise DispersalError("no blocks supplied")
    head = blocks[0]
    chosen = _select_blocks(blocks)
    indices = tuple(sorted(chosen))

    if head.systematic and indices == tuple(range(head.m)):
        concatenated = b"".join(chosen[i].payload for i in indices)
        return concatenated[: head.original_length]

    received = np.stack(
        [
            np.frombuffer(chosen[index].payload, dtype=np.uint8)
            for index in indices
        ]
    )
    inverse = _cached_inverse(
        head.n_total, head.m, head.systematic, indices
    )
    segments = gf_matvec_bytes(inverse, received)
    return segments.reshape(-1)[: head.original_length].tobytes()
