"""Self-identifying blocks and their wire codec.

The paper assumes "broadcasted blocks are self-identifying": each block
carries (1) the data item it belongs to and (2) its sequence number
relative to the item's dispersed blocks ("this is block 4 out of 5"), so
clients can relate blocks to objects and pick the right reconstruction
matrix.  :class:`Block` models exactly that header plus the payload; the
codec frames it for a byte-oriented channel with a CRC so corrupted frames
are *detected* (a detected-bad block is what the fault models in
:mod:`repro.sim.faults` drop).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import BlockCodecError, DispersalError

#: Frame magic: identifies AIDA frames on the wire.
MAGIC = b"AIDA"

#: Codec version byte.
VERSION = 1

_HEADER = struct.Struct(">4sBHHHIQI")  # magic, ver, index, m, N, orig_len,
#                                        payload_len is the Q? see encode()


@dataclass(frozen=True, slots=True)
class Block:
    """One dispersed block of a broadcast file.

    Attributes
    ----------
    file_id:
        Identity of the data item (the paper's "object Z").
    index:
        This block's row index in the dispersal matrix, ``0 <= index < n``.
    m:
        Dispersal level: any ``m`` distinct blocks reconstruct the file.
    n_total:
        Total number of distinct dispersed blocks that exist (``N``).
    original_length:
        Byte length of the file before padding, so reconstruction can trim.
    payload:
        The block's bytes (``ceil(original_length / m)`` after padding).
    systematic:
        Whether the dispersal matrix was the systematic variant (first
        ``m`` rows = identity); reconstruction must invert the matching
        family, so the flag travels with every block.
    """

    file_id: str
    index: int
    m: int
    n_total: int
    original_length: int
    payload: bytes
    systematic: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n_total:
            raise DispersalError(
                f"block index {self.index} out of range [0, {self.n_total})"
            )
        if self.m < 1 or self.n_total < self.m:
            raise DispersalError(
                f"invalid dispersal parameters m={self.m}, N={self.n_total}"
            )
        if self.original_length < 0:
            raise DispersalError(
                f"original_length must be >= 0: {self.original_length}"
            )

    @property
    def sequence_label(self) -> str:
        """Human-readable "block i+1 out of N" label, as in the paper."""
        return (
            f"block {self.index + 1} out of {self.n_total} "
            f"of object {self.file_id}"
        )


def encode_block(block: Block) -> bytes:
    """Frame a block for the wire: header, file id, payload, CRC32.

    Layout (big-endian)::

        4s  magic "AIDA"
        B   version
        H   index
        H   m
        H   n_total
        I   original_length
        Q   flags (bit 0: systematic dispersal matrix)
        I   crc32 over header fields (before the CRC) and the body
        H   file_id length | file_id bytes | payload

    The CRC covers the header prefix as well as the body, so corruption
    of *any* field - index, dispersal parameters, payload - is detected
    and surfaces as :class:`BlockCodecError` rather than a half-decoded
    block.
    """
    file_bytes = block.file_id.encode("utf-8")
    if len(file_bytes) > 0xFFFF:
        raise BlockCodecError("file_id too long to encode")
    body = struct.pack(">H", len(file_bytes)) + file_bytes + block.payload
    prefix = struct.pack(
        ">4sBHHHIQ",
        MAGIC,
        VERSION,
        block.index,
        block.m,
        block.n_total,
        block.original_length,
        1 if block.systematic else 0,
    )
    crc = zlib.crc32(prefix + body) & 0xFFFFFFFF
    return prefix + struct.pack(">I", crc) + body


def decode_block(frame: bytes) -> Block:
    """Decode a wire frame back into a :class:`Block`.

    Raises :class:`BlockCodecError` on bad magic, short frames, version
    mismatch, or CRC failure - the conditions a client treats as "the
    block I tried to fetch was clobbered".
    """
    if len(frame) < _HEADER.size + 2:
        raise BlockCodecError(
            f"frame too short: {len(frame)} < {_HEADER.size + 2}"
        )
    magic, version, index, m, n_total, original_length, flags, crc = (
        _HEADER.unpack_from(frame)
    )
    if magic != MAGIC:
        raise BlockCodecError(f"bad magic {magic!r}")
    if version != VERSION:
        raise BlockCodecError(f"unsupported codec version {version}")
    prefix = frame[: _HEADER.size - 4]
    body = frame[_HEADER.size :]
    if zlib.crc32(prefix + body) & 0xFFFFFFFF != crc:
        raise BlockCodecError("CRC mismatch: frame corrupted in transit")
    (file_len,) = struct.unpack_from(">H", body)
    file_end = 2 + file_len
    if len(body) < file_end:
        raise BlockCodecError("frame truncated inside file_id")
    try:
        file_id = body[2:file_end].decode("utf-8")
        return Block(
            file_id=file_id,
            index=index,
            m=m,
            n_total=n_total,
            original_length=original_length,
            payload=body[file_end:],
            systematic=bool(flags & 1),
        )
    except (UnicodeDecodeError, DispersalError) as error:
        # A frame that passed the CRC but carries inconsistent fields
        # was malformed at the sender; receivers treat it as undecodable.
        raise BlockCodecError(f"malformed frame: {error}") from error
