"""Dispersal matrices with the "any m rows independent" property.

Rabin's construction needs an ``N x m`` matrix ``[x_ij]`` over the field
such that *every* choice of ``m`` rows is mutually independent, so that
the reconstruction submatrix is always invertible (Section 2.1).  A
Vandermonde matrix over distinct evaluation points delivers this: row
``i`` is ``(1, x_i, x_i^2, ..., x_i^{m-1})`` and any ``m`` rows form a
square Vandermonde matrix with distinct nodes, whose determinant
``prod_{i<j} (x_i - x_j)`` is non-zero.

The *systematic* variant post-multiplies by the inverse of the top
``m x m`` block, turning the first ``m`` rows into the identity - the
first ``m`` dispersed blocks are then the plaintext segments themselves.
Right-multiplication by an invertible matrix preserves the any-``m``-rows
property (each submatrix is the original submatrix times the same
invertible factor), so the variant is equally sound while making AIDA's
"no redundancy" operating point free of decoding cost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DispersalError
from repro.ida.gf256 import GF_ORDER, gf_pow
from repro.ida.matrix import gf_mat_inv, gf_mat_mul


def dispersal_matrix(n_total: int, m: int) -> np.ndarray:
    """The ``n_total x m`` Vandermonde dispersal matrix.

    Evaluation points are the field elements ``1 .. n_total`` (distinct and
    non-zero), so at most ``GF_ORDER - 1 = 255`` rows are available; the
    paper's block-size discussion (Section 5) notes that the dispersal
    level ``m`` is in practice far below this.

    Raises
    ------
    DispersalError
        If ``m < 1``, ``n_total < m``, or ``n_total > 255``.
    """
    if m < 1:
        raise DispersalError(f"dispersal level m={m} must be >= 1")
    if n_total < m:
        raise DispersalError(
            f"total blocks N={n_total} must be >= dispersal level m={m}"
        )
    if n_total > GF_ORDER - 1:
        raise DispersalError(
            f"N={n_total} exceeds the field limit of {GF_ORDER - 1} rows"
        )
    matrix = np.zeros((n_total, m), dtype=np.uint8)
    for row in range(n_total):
        point = row + 1  # distinct non-zero field elements
        for col in range(m):
            matrix[row, col] = gf_pow(point, col)
    return matrix


def systematic_dispersal_matrix(n_total: int, m: int) -> np.ndarray:
    """Dispersal matrix whose first ``m`` rows are the identity.

    Built as ``V @ inv(V[:m])`` from the Vandermonde matrix ``V``; see the
    module docstring for why the any-``m``-rows property is preserved.
    """
    vandermonde = dispersal_matrix(n_total, m)
    top_inverse = gf_mat_inv(vandermonde[:m])
    return gf_mat_mul(vandermonde, top_inverse)


def reconstruction_matrix(
    matrix: np.ndarray, row_indices: list[int] | tuple[int, ...]
) -> np.ndarray:
    """Inverse of the submatrix picked out by ``row_indices``.

    This is the paper's ``[y_ij] = [x'_ij]^-1`` step: the receiver selects
    the rows matching the ``m`` blocks it actually obtained and inverts
    that square submatrix.  The indices must be distinct and in range.
    """
    m = matrix.shape[1]
    indices = list(row_indices)
    if len(indices) != m:
        raise DispersalError(
            f"need exactly m={m} row indices, got {len(indices)}"
        )
    if len(set(indices)) != len(indices):
        raise DispersalError(f"row indices must be distinct: {indices}")
    if any(not 0 <= i < matrix.shape[0] for i in indices):
        raise DispersalError(
            f"row indices out of range [0, {matrix.shape[0]}): {indices}"
        )
    return gf_mat_inv(matrix[indices, :])
