"""Matrix algebra over GF(2^8).

Implements exactly what IDA needs (Figure 3 of the paper): multiplication
of the dispersal matrix with the data, and Gauss-Jordan inversion of the
``m x m`` reconstruction submatrix ``[x'_ij]`` so the receiver can compute
``[y_ij] = [x'_ij]^-1``.  Matrices are small (``m, N <= 255``), so clarity
wins over blocking tricks; the data-path products are vectorized in
:mod:`repro.ida.gf256` instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DispersalError
from repro.ida.gf256 import gf_div, gf_inv, gf_mul


def _as_matrix(values: np.ndarray | list) -> np.ndarray:
    matrix = np.asarray(values, dtype=np.uint8)
    if matrix.ndim != 2:
        raise DispersalError(f"expected a 2-D matrix, got shape {matrix.shape}")
    return matrix


def gf_identity(size: int) -> np.ndarray:
    """The ``size x size`` identity matrix over GF(256)."""
    return np.eye(size, dtype=np.uint8)


def gf_mat_mul(left: np.ndarray | list, right: np.ndarray | list) -> np.ndarray:
    """Matrix product over GF(256) (scalar loops; small matrices only)."""
    a = _as_matrix(left)
    b = _as_matrix(right)
    if a.shape[1] != b.shape[0]:
        raise DispersalError(
            f"cannot multiply {a.shape} by {b.shape}: inner dims differ"
        )
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        for j in range(b.shape[1]):
            acc = 0
            for k in range(a.shape[1]):
                acc ^= gf_mul(int(a[i, k]), int(b[k, j]))
            out[i, j] = acc
    return out


def gf_mat_inv(matrix: np.ndarray | list) -> np.ndarray:
    """Gauss-Jordan inversion over GF(256).

    Raises :class:`DispersalError` when the matrix is singular - for IDA
    this means the chosen dispersal rows were not independent, which the
    Vandermonde construction rules out by design.
    """
    source = _as_matrix(matrix)
    size = source.shape[0]
    if source.shape[1] != size:
        raise DispersalError(f"cannot invert non-square matrix {source.shape}")
    work = source.astype(np.int32).copy()
    inverse = np.eye(size, dtype=np.int32)

    for col in range(size):
        pivot_row = next(
            (r for r in range(col, size) if work[r, col] != 0), None
        )
        if pivot_row is None:
            raise DispersalError(
                f"matrix is singular (no pivot in column {col})"
            )
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inverse[[col, pivot_row]] = inverse[[pivot_row, col]]
        pivot = int(work[col, col])
        if pivot != 1:
            for j in range(size):
                work[col, j] = gf_div(int(work[col, j]), pivot)
                inverse[col, j] = gf_div(int(inverse[col, j]), pivot)
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(size):
                work[row, j] ^= gf_mul(factor, int(work[col, j]))
                inverse[row, j] ^= gf_mul(factor, int(inverse[col, j]))
    return inverse.astype(np.uint8)


def gf_mat_rank(matrix: np.ndarray | list) -> int:
    """Rank over GF(256) by forward elimination."""
    work = _as_matrix(matrix).astype(np.int32).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot_row = next(
            (r for r in range(rank, rows) if work[r, col] != 0), None
        )
        if pivot_row is None:
            continue
        if pivot_row != rank:
            work[[rank, pivot_row]] = work[[pivot_row, rank]]
        inv_pivot = gf_inv(int(work[rank, col]))
        for j in range(cols):
            work[rank, j] = gf_mul(int(work[rank, j]), inv_pivot)
        for row in range(rows):
            if row == rank or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            for j in range(cols):
                work[row, j] ^= gf_mul(factor, int(work[rank, j]))
        rank += 1
        if rank == rows:
            break
    return rank


def is_nonsingular(matrix: np.ndarray | list) -> bool:
    """Whether a square matrix over GF(256) is invertible."""
    square = _as_matrix(matrix)
    if square.shape[0] != square.shape[1]:
        return False
    return gf_mat_rank(square) == square.shape[0]
