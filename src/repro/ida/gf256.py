"""Arithmetic in the finite field GF(2^8).

Rabin's IDA performs its linear transformations "in the domain of a
particular irreducible polynomial"; we use the field of 256 elements with
the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D, the classic
Reed-Solomon modulus) and generator 2.  Bytes are field elements, addition
is XOR, and multiplication is table-driven through discrete logarithms:

    a * b = EXP[LOG[a] + LOG[b]]          (a, b != 0)

The exp table is doubled in length so products of logs never need a
modular reduction.  Numpy-vectorized helpers operate on whole arrays of
bytes at once - these are what make dispersal of megabyte payloads
practical in pure Python (see ``benchmarks/bench_ida_throughput.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DispersalError

#: Number of field elements.
GF_ORDER = 256

#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
PRIMITIVE_POLY = 0x11D

#: Multiplicative generator of the field.
GENERATOR = 2


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build EXP (length 512) and LOG (length 256) tables."""
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    # Duplicate so EXP[i + j] works for i, j in [0, 255).
    exp[255:510] = exp[:255]
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()


def gf_add(a: int, b: int) -> int:
    """Field addition (= subtraction): bitwise XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Field multiplication via log/antilog tables."""
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) + int(LOG_TABLE[b])])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    if a == 0:
        raise DispersalError("zero has no multiplicative inverse in GF(256)")
    return int(EXP_TABLE[255 - int(LOG_TABLE[a])])


def gf_div(a: int, b: int) -> int:
    """Field division ``a / b``; raises on division by zero."""
    if b == 0:
        raise DispersalError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(EXP_TABLE[int(LOG_TABLE[a]) - int(LOG_TABLE[b]) + 255])


def gf_pow(a: int, exponent: int) -> int:
    """Field exponentiation ``a ** exponent`` (exponent >= 0)."""
    if exponent < 0:
        raise DispersalError("negative exponents unsupported; use gf_inv")
    if exponent == 0:
        return 1
    if a == 0:
        return 0
    return int(EXP_TABLE[(int(LOG_TABLE[a]) * exponent) % 255])


def gf_mul_bytes(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorized).

    ``data`` must be a uint8 array; zeros are handled correctly.  This is
    the inner loop of dispersal: one row coefficient times one data row.
    """
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_s = int(LOG_TABLE[scalar])
    result = EXP_TABLE[LOG_TABLE[data.astype(np.int32)] + log_s]
    result[data == 0] = 0
    return result.astype(np.uint8)


def gf_matvec_bytes(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
    """GF(256) matrix product ``matrix @ data`` on byte arrays.

    ``matrix`` is ``(rows, m)`` uint8, ``data`` is ``(m, width)`` uint8;
    the result is ``(rows, width)``.  Row combinations accumulate with XOR.
    """
    rows, m = matrix.shape
    if data.shape[0] != m:
        raise DispersalError(
            f"shape mismatch: matrix is {matrix.shape}, data {data.shape}"
        )
    out = np.zeros((rows, data.shape[1]), dtype=np.uint8)
    for row in range(rows):
        acc = np.zeros(data.shape[1], dtype=np.uint8)
        for col in range(m):
            coefficient = int(matrix[row, col])
            if coefficient:
                acc ^= gf_mul_bytes(coefficient, data[col])
        out[row] = acc
    return out
