"""AIDA: the Adaptive Information Dispersal Algorithm (Section 2.2).

AIDA inserts a *bandwidth allocation* step between dispersal and
transmission (Figure 4): the file is dispersed once into ``N`` blocks, but
only ``n`` of them, ``m <= n <= N``, are actually transmitted.  Because
IDA redundancy is uniform - "there is simply no distinction between data
and parity" - the transmitted prefix of any size ``n >= m`` still lets a
client reconstruct from any ``m`` of the ``n``, so ``n`` can be re-chosen
per *operation mode*: boost redundancy on critical objects in "combat"
mode, scale it to zero in "landing" mode, without re-dispersing.

:class:`AidaEncoder` owns one file's dispersal and hands out transmission
sets; :class:`RedundancyPolicy` maps (mode, file) to fault-tolerance
budgets the broadcast-disk designer turns into ``pc`` windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import DispersalError, SpecificationError
from repro.ida.blocks import Block
from repro.ida.dispersal import disperse, reconstruct


def tolerable_faults(n_transmitted: int, m: int) -> int:
    """Faults tolerated per window when ``n`` blocks are sent: ``n - m``."""
    if n_transmitted < m:
        raise DispersalError(
            f"cannot transmit {n_transmitted} < m={m} blocks"
        )
    return n_transmitted - m


def bandwidth_allocation(
    blocks: list[Block], n_transmitted: int
) -> list[Block]:
    """The AIDA allocation step: keep ``n`` of the ``N`` dispersed blocks.

    ``blocks`` must be a full dispersal (indices ``0 .. N-1``); the first
    ``n`` are selected, which for a systematic dispersal means plaintext
    first, redundancy after - the "no redundancy" mode transmits exactly
    the original file.
    """
    if not blocks:
        raise DispersalError("no blocks supplied")
    total = blocks[0].n_total
    m = blocks[0].m
    if not m <= n_transmitted <= total:
        raise DispersalError(
            f"n={n_transmitted} must lie in [m={m}, N={total}]"
        )
    by_index = {block.index: block for block in blocks}
    if len(by_index) != total:
        raise DispersalError(
            f"expected a full dispersal of {total} blocks, "
            f"got {len(by_index)} distinct indices"
        )
    return [by_index[i] for i in range(n_transmitted)]


class AidaEncoder:
    """One file's dispersal plus adaptive redundancy selection.

    Parameters
    ----------
    file_id:
        Identity stamped into blocks.
    data:
        File contents.
    m:
        Dispersal level (blocks needed to reconstruct).
    n_max:
        Maximum redundancy ever needed (``N``); dispersal happens once at
        this level and the allocation step only ever *selects*.
    systematic:
        Use the systematic dispersal matrix (plaintext-first).
    """

    def __init__(
        self,
        file_id: str,
        data: bytes,
        m: int,
        n_max: int,
        *,
        systematic: bool = True,
    ) -> None:
        if n_max < m:
            raise SpecificationError(
                f"n_max={n_max} must be >= dispersal level m={m}"
            )
        self.file_id = file_id
        self.m = m
        self.n_max = n_max
        self._blocks = disperse(
            data, m, n_max, file_id=file_id, systematic=systematic
        )

    @property
    def blocks(self) -> list[Block]:
        """The full dispersal (all ``N`` blocks)."""
        return list(self._blocks)

    def transmission_set(self, n_transmitted: int) -> list[Block]:
        """Blocks to put on the air at redundancy ``n``; see
        :func:`bandwidth_allocation`."""
        return bandwidth_allocation(self._blocks, n_transmitted)

    def for_fault_tolerance(self, faults: int) -> list[Block]:
        """Transmission set tolerating ``faults`` losses per window."""
        if faults < 0:
            raise SpecificationError(f"faults must be >= 0, got {faults}")
        return self.transmission_set(self.m + faults)

    def reconstruct_from(self, blocks: list[Block]) -> bytes:
        """Client-side reconstruction (delegates to
        :func:`repro.ida.dispersal.reconstruct`)."""
        return reconstruct(blocks)


@dataclass(frozen=True)
class RedundancyPolicy:
    """Per-mode fault-tolerance budgets for a set of files.

    ``budgets[mode][file_id] = r`` means: in ``mode``, file ``file_id``
    must tolerate ``r`` block losses per retrieval window, i.e. transmit
    ``m + r`` distinct blocks per window.  Missing entries fall back to
    ``default`` (0 = no redundancy, the non-critical case).
    """

    budgets: Mapping[str, Mapping[str, int]]
    default: int = 0

    def __post_init__(self) -> None:
        if self.default < 0:
            raise SpecificationError(
                f"default fault budget must be >= 0: {self.default}"
            )
        for mode, files in self.budgets.items():
            for file_id, budget in files.items():
                if budget < 0:
                    raise SpecificationError(
                        f"fault budget for {file_id!r} in mode {mode!r} "
                        f"must be >= 0: {budget}"
                    )

    def fault_budget(self, mode: str, file_id: str) -> int:
        """The fault budget ``r`` for ``file_id`` in ``mode``."""
        return self.budgets.get(mode, {}).get(file_id, self.default)

    def transmission_count(self, mode: str, file_id: str, m: int) -> int:
        """Blocks per window in ``mode``: ``m + r``."""
        return m + self.fault_budget(mode, file_id)

    def modes(self) -> tuple[str, ...]:
        """All modes the policy mentions."""
        return tuple(self.budgets)
