"""Rabin's Information Dispersal Algorithm and Bestavros' adaptive AIDA.

This subpackage is the fault-tolerance substrate of the paper's Section 2:

* :mod:`repro.ida.gf256` - arithmetic in GF(2^8) (the "irreducible
  polynomial arithmetic" of Rabin's construction), with table-driven
  scalar and numpy-vectorized operations;
* :mod:`repro.ida.matrix` - Gauss-Jordan inversion and multiplication of
  matrices over the field;
* :mod:`repro.ida.vandermonde` - dispersal matrices ``[x_ij]`` (N x m)
  any ``m`` rows of which are mutually independent, plus the systematic
  variant whose first ``m`` blocks are the plaintext;
* :mod:`repro.ida.dispersal` - dispersal of a byte string into ``N``
  blocks such that any ``m`` reconstruct it exactly (Figure 3);
* :mod:`repro.ida.blocks` - self-identifying blocks ("this is block 4 out
  of 5 of object Z") and their wire codec;
* :mod:`repro.ida.aida` - the AIDA bandwidth-allocation step that scales
  transmitted redundancy between ``m`` (none) and ``N`` (maximum), per
  operation mode (Figure 4).
"""

from repro.ida.gf256 import (
    GF_ORDER,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
)
from repro.ida.matrix import (
    gf_identity,
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    is_nonsingular,
)
from repro.ida.vandermonde import (
    dispersal_matrix,
    systematic_dispersal_matrix,
)
from repro.ida.blocks import Block, decode_block, encode_block
from repro.ida.dispersal import disperse, reconstruct
from repro.ida.aida import (
    AidaEncoder,
    RedundancyPolicy,
    bandwidth_allocation,
    tolerable_faults,
)

__all__ = [
    "GF_ORDER",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_pow",
    "gf_identity",
    "gf_mat_inv",
    "gf_mat_mul",
    "gf_mat_rank",
    "is_nonsingular",
    "dispersal_matrix",
    "systematic_dispersal_matrix",
    "Block",
    "decode_block",
    "encode_block",
    "disperse",
    "reconstruct",
    "AidaEncoder",
    "RedundancyPolicy",
    "bandwidth_allocation",
    "tolerable_faults",
]
