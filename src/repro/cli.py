"""Command-line interface: design and run broadcast disks from a shell.

Nine subcommands mirror the library's main entry points::

    python -m repro run scenario.json
    python -m repro traffic scenario.json --clients 1000 --duration 50000
    python -m repro server scenario.json --script mutations.json
    python -m repro sweep sweep.json --workers 8 --resume
    python -m repro obs summarize out.telemetry
    python -m repro schedulers
    python -m repro design --file pos:4:2:2 --file map:6:5:1
    python -m repro generalized --file F:2:5,6,6 --file H:1:9,12
    python -m repro delay-table --file A:5:10 --file B:3:6 --errors 5

``run`` executes declarative :class:`repro.api.Scenario` files (JSON,
see ``examples/scenario_awacs.json``) end to end - design, broadcast
program, fault-channel simulation, delay analysis - and prints a summary
(or a machine-readable record with ``--json``).  Scenarios with a
``"temporal"`` block (see ``examples/scenario_awacs_temporal.json``)
derive their catalogue from real-time database items - temporal
constraints become slot budgets, the active mode selects fault budgets -
and their traffic runs report the freshness dimension: consistency
rate, read-age quantiles, torn-read discards, and deadline-miss rate.  Several scenario files
may be given at once; ``--workers N`` fans the batch out over a process
pool (results are identical to the serial run).  ``traffic`` runs the
open-loop population simulator (:mod:`repro.traffic`) against one
scenario's designed program: the scenario's ``"traffic"`` block (or the
defaults, when absent) with any of ``--clients``, ``--duration``,
``--requests-per-client``, ``--think``, ``--arrival``, ``--popularity``,
and ``--seed`` overridden from the flags; ``--workers N`` shards the
population across processes.  ``server`` runs the *online* broadcast
server (:mod:`repro.server`): the scenario goes on the air, a JSON
mutation timeline (``--script``) applies runtime mode changes / file
edits / budget bumps, each re-solve is warm-started from the solve
cache (``--cache-dir`` persists it), the new program is spliced in at a
safe data-cycle boundary, and a JSONL as-run log (``--log``) records
planned-vs-aired divergence, mutations, and re-solve provenance.
``sweep`` expands a
:class:`repro.sweep.SweepSpec` file (a base scenario crossed with axes
over any dotted scenario field) and runs the whole grid on one shared
pool, memoizing solved schedules in a content-addressed solve-cache and
streaming rows to a resumable JSONL run store (``--resume`` skips
completed cells).  ``schedulers`` lists the live scheduler registry.
``run``, ``traffic``, ``sweep``, and ``server`` all accept
``--telemetry DIR``: the invocation runs with the unified telemetry
layer (:mod:`repro.obs`) active - counters, histograms, and trace
spans from the solver, cache, sweep orchestrator, traffic engines, and
server, merged exactly across worker processes - and exports
``telemetry.json`` / ``trace.jsonl`` / ``metrics.prom`` into ``DIR``.
``obs summarize DIR`` renders an export as tables plus the aggregated
span tree.  Telemetry never perturbs results: outputs are bit-identical
with and without the flag.  ``--workers`` everywhere must be a positive
integer; 0 or negative is rejected with an argument error (exit status
2) rather than a pool traceback.

File syntax for the piecewise subcommands:

* ``design``      - ``name:blocks:latency[:fault_budget]``
* ``generalized`` - ``name:blocks:d0,d1,...`` (latency vector in slots)
* ``delay-table`` - ``name:m:n_total`` (AIDA dispersal parameters)

All output is plain text on stdout; exit status 0 on success, 2 on
argument errors, 1 when the design is infeasible or the scenario file is
invalid.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.errors import ReproError
from repro.obs import telemetry as obs
from repro.obs.export import embed, export_directory
from repro.api.engine import BroadcastEngine, run_scenarios
from repro.api.scenario import Scenario
from repro.core.registry import registered_schedulers
from repro.traffic.arrivals import ARRIVAL_KINDS, POPULARITY_KINDS
from repro.traffic.simulate import ENGINES as TRAFFIC_ENGINES
from repro.traffic.spec import TrafficSpec
from repro.bdisk.builder import design_generalized_program, design_program
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.bdisk.flat import build_aida_flat_program, build_flat_program
from repro.sim.delay import worst_case_delay_table


def _workers_flag(raw: str) -> int:
    """``--workers`` argument type: a positive integer.

    Rejecting 0/negative here turns a process-pool traceback into a
    one-line argparse error (exit status 2) uniformly across ``run``,
    ``traffic``, and ``sweep``.
    """
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer worker count, got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1, got {value}"
        )
    return value


def _add_shared_flags(
    parser: argparse.ArgumentParser,
    *,
    workers: str | None = None,
    cache_dir: str | None = None,
    telemetry: bool = True,
) -> None:
    """Attach the flags shared across ``run``/``traffic``/``sweep``/
    ``server`` in one place.

    ``workers`` and ``cache_dir`` are the per-command help strings
    (``None`` omits the flag); every ``--workers`` goes through
    :func:`_workers_flag`, so the "positive integer or exit 2"
    validation cannot diverge between subcommands.  ``--telemetry`` is
    attached by default: it names a directory that receives the full
    telemetry export (``telemetry.json``, ``trace.jsonl``,
    ``metrics.prom``) for ``repro obs summarize``.
    """
    if workers is not None:
        parser.add_argument(
            "--workers",
            type=_workers_flag,
            default=None,
            metavar="N",
            help=workers,
        )
    if cache_dir is not None:
        parser.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help=cache_dir,
        )
    if telemetry:
        parser.add_argument(
            "--telemetry",
            default=None,
            metavar="DIR",
            help=(
                "export telemetry to DIR: counters/gauges/histograms "
                "(telemetry.json), the trace span ring (trace.jsonl), "
                "and a Prometheus textfile (metrics.prom); inspect "
                "with 'repro obs summarize DIR'"
            ),
        )


@contextmanager
def _telemetry_capture(
    args: argparse.Namespace,
) -> Iterator[obs.Telemetry | None]:
    """Activate telemetry for one CLI invocation when requested.

    Yields the active :class:`~repro.obs.Telemetry` when the command
    was given ``--telemetry DIR`` (exporting to ``DIR`` on the way
    out, even when the command fails mid-run) and ``None`` otherwise -
    the instrumented library paths then stay on their no-op branches.
    """
    path = getattr(args, "telemetry", None)
    if path is None:
        yield None
        return
    with obs.capture() as tel:
        try:
            yield tel
        finally:
            export_directory(tel, path)


def _parse_design_file(raw: str) -> FileSpec:
    parts = raw.split(":")
    if len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"expected name:blocks:latency[:fault_budget], got {raw!r}"
        )
    try:
        name = parts[0]
        blocks = int(parts[1])
        latency = int(parts[2])
        budget = int(parts[3]) if len(parts) == 4 else 0
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error
    return FileSpec(name, blocks, latency, fault_budget=budget)


def _parse_generalized_file(raw: str) -> GeneralizedFileSpec:
    parts = raw.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected name:blocks:d0,d1,..., got {raw!r}"
        )
    try:
        vector = tuple(int(x) for x in parts[2].split(","))
        return GeneralizedFileSpec(parts[0], int(parts[1]), vector)
    except (ValueError, ReproError) as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _parse_dispersal_file(raw: str) -> tuple[str, int, int]:
    parts = raw.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected name:m:n_total, got {raw!r}"
        )
    try:
        return parts[0], int(parts[1]), int(parts[2])
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Pinwheel scheduling for fault-tolerant broadcast disks "
            "(Baruah & Bestavros, ICDE 1997)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run declarative scenario JSON files end to end"
    )
    run.add_argument(
        "scenarios",
        nargs="+",
        metavar="scenario",
        help="path(s) to Scenario JSON files",
    )
    run.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON result record",
    )
    _add_shared_flags(
        run,
        workers=(
            "run scenarios over a process pool of N workers "
            "(default: serial; results are identical either way)"
        ),
    )

    traffic = sub.add_parser(
        "traffic",
        help="run an open-loop client population against a scenario",
    )
    traffic.add_argument(
        "scenario", help="path to a Scenario JSON file"
    )
    traffic.add_argument(
        "--clients", type=int, default=None, metavar="N",
        help="population size (overrides the scenario's traffic block)",
    )
    traffic.add_argument(
        "--duration", type=int, default=None, metavar="SLOTS",
        help="arrival horizon in slots",
    )
    traffic.add_argument(
        "--requests-per-client", type=int, default=None, metavar="R",
        help="requests each session issues before leaving",
    )
    traffic.add_argument(
        "--think", type=int, default=None, metavar="SLOTS",
        help="mean think time between a session's requests",
    )
    traffic.add_argument(
        "--arrival", choices=ARRIVAL_KINDS, default=None,
        help="arrival process",
    )
    traffic.add_argument(
        "--popularity", choices=POPULARITY_KINDS, default=None,
        help="file popularity law",
    )
    traffic.add_argument(
        "--seed", type=int, default=None,
        help="master traffic seed",
    )
    _add_shared_flags(
        traffic,
        workers=(
            "shard the population over a process pool of N workers "
            "(default: in-process; results are identical either way)"
        ),
    )
    traffic.add_argument(
        "--engine", choices=TRAFFIC_ENGINES, default="object",
        help=(
            "shard engine: per-client session objects ('object') or "
            "the vectorized structure-of-arrays engine ('soa', needs "
            "numpy); results are bit-identical"
        ),
    )
    traffic.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON result record",
    )

    sweep = sub.add_parser(
        "sweep",
        help=(
            "expand a sweep spec (base scenario x axes) and run every "
            "cell, with a schedule solve-cache and a resumable run store"
        ),
        epilog=(
            "Distributed mode: 'repro sweep serve SPEC --workers N' "
            "coordinates the same grid across worker processes "
            "('repro sweep work --connect HOST:PORT' joins from "
            "anywhere); see each verb's --help."
        ),
    )
    sweep.add_argument("spec", help="path to a SweepSpec JSON file")
    _add_shared_flags(
        sweep,
        workers=(
            "run cells and traffic shards on one shared process pool "
            "of N workers (default: serial; results are identical "
            "either way)"
        ),
        cache_dir="solve-cache directory (default: <spec>.solve-cache)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in the run store",
    )
    sweep.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSONL run store (default: <spec>.runs.jsonl)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the schedule solve-cache (every cell re-solves)",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON summary + tidy records",
    )

    server = sub.add_parser(
        "server",
        help=(
            "run the online broadcast server: live re-solves, splices "
            "at data-cycle boundaries, and a JSONL as-run log"
        ),
    )
    server.add_argument(
        "scenario", help="path to a Scenario JSON file"
    )
    server.add_argument(
        "--script", default=None, metavar="PATH",
        help=(
            "JSON mutation timeline: a list of "
            '{"at_slot": N, "mutation": {...}} entries'
        ),
    )
    server.add_argument(
        "--until", type=int, default=None, metavar="SLOT",
        help="stop the kernel at SLOT (default: drain every event)",
    )
    server.add_argument(
        "--log", default=None, metavar="PATH",
        help="stream the JSONL as-run log to PATH",
    )
    _add_shared_flags(
        server,
        cache_dir=(
            "persistent solve-cache directory (default: in-memory; "
            "a warm directory makes mutation re-solves warm starts)"
        ),
    )
    server.add_argument(
        "--window", type=int, default=None, metavar="SLOTS",
        help="planned-vs-aired slots logged around each splice",
    )
    server.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON result record",
    )

    sub.add_parser(
        "schedulers", help="list the registered pinwheel schedulers"
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="inspect telemetry exported with --telemetry",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize",
        help=(
            "render the counters, histograms, and aggregated span tree "
            "of a telemetry export"
        ),
    )
    summarize.add_argument(
        "path",
        help=(
            "a --telemetry export directory (or its telemetry.json "
            "file directly)"
        ),
    )

    design = sub.add_parser(
        "design", help="design a regular fault-tolerant broadcast disk"
    )
    design.add_argument(
        "--file",
        dest="files",
        action="append",
        required=True,
        type=_parse_design_file,
        metavar="NAME:BLOCKS:LATENCY[:FAULTS]",
    )
    design.add_argument(
        "--bandwidth", type=int, default=None,
        help="force a bandwidth instead of the Equation 1/2 bound",
    )
    design.add_argument(
        "--periods", type=int, default=1,
        help="broadcast periods of the program to print",
    )

    generalized = sub.add_parser(
        "generalized",
        help="design a generalized (latency-vector) broadcast disk",
    )
    generalized.add_argument(
        "--file",
        dest="files",
        action="append",
        required=True,
        type=_parse_generalized_file,
        metavar="NAME:BLOCKS:D0,D1,...",
    )

    delay = sub.add_parser(
        "delay-table",
        help="regenerate a Figure-7-style delay table for a catalogue",
    )
    delay.add_argument(
        "--file",
        dest="files",
        action="append",
        required=True,
        type=_parse_dispersal_file,
        metavar="NAME:M:N",
    )
    delay.add_argument("--errors", type=int, default=5)
    return parser


def _run_scenario(args: argparse.Namespace) -> int:
    scenarios = [Scenario.from_file(path) for path in args.scenarios]
    with _telemetry_capture(args) as tel:
        results = run_scenarios(scenarios, max_workers=args.workers)
        if args.as_json:
            # One file keeps the historical single-object record; a
            # batch emits a JSON array in input order.
            payload: object = (
                results[0].to_dict()
                if len(results) == 1
                else [result.to_dict() for result in results]
            )
            if tel is not None and isinstance(payload, dict):
                embed(tel, payload)
            print(json.dumps(payload, indent=2))
        else:
            print("\n\n".join(result.summary() for result in results))
    return 0


def _run_traffic(args: argparse.Namespace) -> int:
    from dataclasses import replace

    scenario = Scenario.from_file(args.scenario)
    spec = scenario.traffic if scenario.traffic is not None else TrafficSpec()
    overrides = {
        key: value
        for key, value in (
            ("clients", args.clients),
            ("duration", args.duration),
            ("requests_per_client", args.requests_per_client),
            ("think_time", args.think),
            ("arrival", args.arrival),
            ("popularity", args.popularity),
            ("seed", args.seed),
        )
        if value is not None
    }
    if overrides:
        spec = replace(spec, **overrides)
    engine = BroadcastEngine(replace(scenario, traffic=spec))
    with _telemetry_capture(args) as tel:
        result = engine.run_traffic(
            max_workers=args.workers, engine=args.engine
        )
        assert result is not None  # the spec was just attached
        if args.as_json:
            payload = {"scenario": scenario.name, **result.to_dict()}
            if tel is not None:
                embed(tel, payload)
            print(json.dumps(payload, indent=2))
        else:
            print(f"scenario  : {scenario.name}")
            print(result.report())
    return 0


def _run_server(args: argparse.Namespace) -> int:
    from repro.server import MutationScript, run_script
    from repro.server.asrun import ASRUN_WINDOW
    from repro.sweep.cache import SolveCache

    scenario = Scenario.from_file(args.scenario)
    script = (
        MutationScript.from_file(args.script)
        if args.script is not None
        else MutationScript(())
    )
    cache = SolveCache(args.cache_dir)
    with _telemetry_capture(args) as tel:
        result = run_script(
            scenario,
            script,
            cache=cache,
            log_path=args.log,
            until=args.until,
            window=(
                args.window if args.window is not None else ASRUN_WINDOW
            ),
        )
        if args.as_json:
            payload = result.to_dict()
            if tel is not None:
                embed(tel, payload)
            print(json.dumps(payload, indent=2))
        else:
            print(result.report())
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sweep import SweepSpec, run_sweep

    spec_path = Path(args.spec)
    spec = SweepSpec.from_file(spec_path)
    store = (
        args.store
        if args.store is not None
        else str(spec_path.with_suffix(".runs.jsonl"))
    )
    cache_dir = None
    if not args.no_cache:
        cache_dir = (
            args.cache_dir
            if args.cache_dir is not None
            else str(spec_path.with_suffix(".solve-cache"))
        )
    with _telemetry_capture(args) as tel:
        result = run_sweep(
            spec,
            max_workers=args.workers,
            store_path=store,
            cache_dir=cache_dir,
            use_cache=not args.no_cache,
            resume=args.resume,
        )
        if args.as_json:
            payload = result.to_dict()
            if tel is not None:
                embed(tel, payload)
            print(json.dumps(payload, indent=2))
            return 0
    axes = ", ".join(axis.field for axis in spec.axes) or "(no axes)"
    print(f"sweep     : {spec.name} ({result.cells} cells over {axes})")
    print(f"store     : {result.store_path}")
    print(
        f"cells     : {result.executed} executed, "
        f"{result.resumed} resumed"
    )
    if args.resume:
        print(
            f"re-run    : {result.rerun_drift} fingerprint drift "
            f"(stored scenario changed), "
            f"{result.rerun_missing} missing key (never completed)"
        )
    print(
        f"designs   : {result.distinct_designs} distinct, "
        f"{result.solves} solved, {result.cache_hits} cell cache hits"
    )
    print(
        f"elapsed   : {result.elapsed:.2f}s "
        f"({result.workers} worker{'s' if result.workers != 1 else ''})"
    )
    print()
    print(result.table())
    return 0


def _sweep_serve(argv: Sequence[str]) -> int:
    """``repro sweep serve``: coordinate one distributed sweep."""
    from pathlib import Path

    from repro.sweep import SweepSpec
    from repro.sweep.distributed import (
        SweepCoordinator,
        parse_address,
        spawn_worker,
        wait_for_workers,
    )

    parser = argparse.ArgumentParser(
        prog="repro sweep serve",
        description=(
            "Expand a sweep into content-addressed work units and "
            "serve them to workers ('repro sweep work') over a socket "
            "protocol with crash-safe leases.  Rows stream into the "
            "run store exactly as 'repro sweep' would write them."
        ),
    )
    parser.add_argument("spec", help="path to a SweepSpec JSON file")
    parser.add_argument(
        "--bind", default="127.0.0.1:0", metavar="HOST:PORT",
        help="listen address (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help=(
            "write the bound host:port to PATH once listening (how "
            "scripts discover an ephemeral port)"
        ),
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="JSONL run store (default: <spec>.runs.jsonl)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse stored rows whose scenario payload still matches",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=15.0, metavar="S",
        help=(
            "heartbeat budget: a worker silent this long forfeits its "
            "leased cells back to the queue (default: 15)"
        ),
    )
    parser.add_argument(
        "--batch", type=int, default=16, metavar="N",
        help="max work units per grant (default: 16)",
    )
    parser.add_argument(
        "--workers", type=_workers_flag, default=None, metavar="N",
        help=(
            "also spawn N local worker processes against the bound "
            "port (omit to serve remote workers only)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "shared solve-cache directory for spawned workers "
            "(default: <spec>.solve-cache); point remote workers at a "
            "shared mount for cluster-wide single-flight"
        ),
    )
    parser.add_argument(
        "--no-rows",
        action="store_true",
        help=(
            "drop rows after storing/aggregating them (bounds memory "
            "on huge grids; the summary then shows marginals, not the "
            "full table)"
        ),
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="export coordinator telemetry (plus worker registries) to DIR",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON summary",
    )
    args = parser.parse_args(argv)

    spec_path = Path(args.spec)
    spec = SweepSpec.from_file(spec_path)
    store = (
        args.store
        if args.store is not None
        else str(spec_path.with_suffix(".runs.jsonl"))
    )
    cache_dir = (
        args.cache_dir
        if args.cache_dir is not None
        else str(spec_path.with_suffix(".solve-cache"))
    )
    coordinator = SweepCoordinator(
        spec,
        bind=parse_address(args.bind),
        store_path=store,
        resume=args.resume,
        lease_seconds=args.lease_seconds,
        batch=args.batch,
        keep_rows=not args.no_rows,
    )
    host, port = coordinator.address
    if args.port_file is not None:
        Path(args.port_file).write_text(f"{host}:{port}\n")
    if not args.as_json:
        print(f"serving   : {spec.name} on {host}:{port}")
    children = []
    with _telemetry_capture(args) as tel:
        try:
            for index in range(args.workers or 0):
                children.append(
                    spawn_worker(
                        (host, port),
                        cache_dir=cache_dir,
                        name=f"local-{index}",
                    )
                )
            result = coordinator.serve()
        finally:
            coordinator.close()
            wait_for_workers(children)
        if args.as_json:
            payload = result.to_dict()
            if tel is not None:
                embed(tel, payload)
            print(json.dumps(payload, indent=2))
            return 0
    summary = result.summary()
    print(f"store     : {result.store_path}")
    print(
        f"cells     : {result.executed} executed, "
        f"{result.resumed} resumed"
    )
    if args.resume:
        print(
            f"re-run    : {result.rerun_drift} fingerprint drift "
            f"(stored scenario changed), "
            f"{result.rerun_missing} missing key (never completed)"
        )
    print(
        f"designs   : {result.distinct_designs} distinct, "
        f"{result.solves} solved cluster-wide, "
        f"{result.cross_hits} cross-worker cache hits"
    )
    dist = summary["distributed"]
    print(
        f"leases    : {dist['requeued']} requeued "
        f"({dist['lease_expiries']} by expiry), "
        f"{dist['duplicates']} duplicate rows deduped"
    )
    print(
        f"elapsed   : {result.elapsed:.2f}s "
        f"({result.workers} worker{'s' if result.workers != 1 else ''})"
    )
    if result.failures:
        print(f"failures  : {len(result.failures)} cells")
        for failure in result.failures:
            print(f"  {failure['key']}: {failure['error']}")
    print()
    if args.no_rows:
        from repro.sweep.aggregate import render_table

        for field, table in result.marginals.items():
            print(f"marginal over {field}:")
            print(render_table(table))
            print()
    else:
        print(result.table())
    return 0 if not result.failures else 1


def _sweep_work(argv: Sequence[str]) -> int:
    """``repro sweep work``: one worker process for a served sweep."""
    from repro.sweep.distributed import parse_address, run_worker

    parser = argparse.ArgumentParser(
        prog="repro sweep work",
        description=(
            "Lease cells from a 'repro sweep serve' coordinator, run "
            "them, and stream the rows back until the grid completes."
        ),
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's address",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "shared solve-cache directory (same path on every worker "
            "=> each distinct design solves exactly once cluster-wide)"
        ),
    )
    parser.add_argument(
        "--name", default=None, metavar="NAME",
        help="worker name in coordinator stats (default: host-pid)",
    )
    parser.add_argument(
        "--max-units", type=int, default=None, metavar="N",
        help="stop after computing N cells (default: run to completion)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="units to request per round trip",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="S",
        help="give up dialing the coordinator after S seconds",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the final worker stats as JSON",
    )
    args = parser.parse_args(argv)

    host, port = parse_address(args.connect)
    try:
        stats = run_worker(
            host,
            port,
            cache_dir=args.cache_dir,
            name=args.name,
            max_units=args.max_units,
            batch=args.batch,
            connect_timeout=args.connect_timeout,
        )
    except EOFError:
        # The coordinator vanished mid-run.  Completed batches are
        # already acked and durable; exiting non-zero tells a
        # supervisor to retry against the restarted coordinator.
        print("error: lost connection to coordinator", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(stats, indent=2))
    else:
        print(
            f"worker done: {stats['cells']} cells "
            f"({stats['solves']} solves, {stats['cross_hits']} "
            f"cross-worker hits, {stats['failed']} failed)"
        )
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    from repro.obs.summarize import render_summary

    # ``required=True`` on the subparser guarantees obs_command is set;
    # "summarize" is the only verb today.
    print(render_summary(args.path))
    return 0


def _run_schedulers(args: argparse.Namespace) -> int:
    print("name | cost | kind | description")
    for entry in registered_schedulers():
        kind = "complete" if entry.complete else "heuristic"
        print(
            f"{entry.name} | {entry.cost} | {kind} | {entry.description}"
        )
    return 0


def _run_design(args: argparse.Namespace) -> int:
    design = design_program(args.files, bandwidth=args.bandwidth)
    plan = design.bandwidth_plan
    print(f"bandwidth : {plan.bandwidth} blocks/s "
          f"(necessary >= {float(plan.necessary):.3f}, "
          f"eq-bound {plan.eq_bound})")
    print(f"density   : {float(plan.density):.4f}")
    print(f"scheduler : {plan.report.method}")
    print(f"period    : {design.program.broadcast_period} slots; "
          f"data cycle {design.program.data_cycle_length}")
    print(f"program   : {design.program.render(periods=args.periods)}")
    return 0


def _run_generalized(args: argparse.Namespace) -> int:
    design = design_generalized_program(args.files)
    print(f"density   : {float(design.density):.4f}")
    for candidate in design.candidates:
        print(f"transform : {candidate}")
    print(f"period    : {design.program.broadcast_period} slots; "
          f"data cycle {design.program.data_cycle_length}")
    print(f"program   : {design.program.render()}")
    return 0


def _run_delay_table(args: argparse.Namespace) -> int:
    aida = build_aida_flat_program(args.files)
    flat = build_flat_program([(n, m) for n, m, _ in args.files])
    sizes = {name: m for name, m, _ in args.files}
    rows = worst_case_delay_table(aida, flat, sizes, args.errors)
    print("errors | with IDA | without IDA | r*Delta | r*Pi")
    for row in rows:
        print(row)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # 'sweep serve' / 'sweep work' are verb-style subcommands routed
    # ahead of argparse, so the existing positional form
    # ('repro sweep spec.json') keeps working unchanged.
    try:
        if argv[:2] == ["sweep", "serve"]:
            return _sweep_serve(argv[2:])
        if argv[:2] == ["sweep", "work"]:
            return _sweep_work(argv[2:])
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _run_scenario,
        "traffic": _run_traffic,
        "server": _run_server,
        "sweep": _run_sweep,
        "obs": _run_obs,
        "schedulers": _run_schedulers,
        "design": _run_design,
        "generalized": _run_generalized,
        "delay-table": _run_delay_table,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
