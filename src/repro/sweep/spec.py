"""Declarative sweep specifications.

A :class:`SweepSpec` is to a parameter study what
:class:`repro.api.Scenario` is to one experiment: a single immutable,
JSON-round-trippable object naming the whole grid - a base scenario plus
*axes*, each a dotted scenario field with the values to try.  Expansion
takes the cross-product in axis order and yields one validated
:class:`SweepCell` per combination; orchestration
(:func:`repro.sweep.orchestrate.run_sweep`) runs them.

A spec file looks like::

    {
      "name": "fault-grid",
      "base": { ... any Scenario payload ... },
      "axes": [
        {"field": "faults.probability",
         "values": [0.0, 0.02, 0.05, 0.1]},
        {"field": "workload.zipf_skew",
         "range": {"start": 0.0, "stop": 1.5, "step": 0.5}}
      ]
    }

``values`` lists arbitrary JSON values (numbers, strings, lists - e.g.
scheduler policies); ``range`` is sugar for an inclusive numeric
progression.  Cells carry a stable ``key`` (the canonical
``field=value`` list), which is what the run store uses to resume.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.api.scenario import Scenario
from repro.sweep.expand import apply_overrides, split_field

#: Keys a serialized axis may carry.
_AXIS_KEYS = {"field", "values", "range"}
_RANGE_KEYS = {"start", "stop", "step"}


def _expand_range(payload: Mapping[str, Any], what: str) -> tuple:
    """Expand an inclusive ``{start, stop, step}`` progression."""
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"{what}: range must be an object, got "
            f"{type(payload).__name__}"
        )
    unknown = set(payload) - _RANGE_KEYS
    if unknown:
        raise SpecificationError(
            f"{what}: unknown range keys {sorted(unknown)} "
            f"(allowed: {sorted(_RANGE_KEYS)})"
        )
    missing = {"start", "stop"} - set(payload)
    if missing:
        raise SpecificationError(
            f"{what}: range is missing {sorted(missing)}"
        )
    start, stop = payload["start"], payload["stop"]
    step = payload.get("step", 1)
    for name, value in (("start", start), ("stop", stop), ("step", step)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SpecificationError(
                f"{what}: range {name} must be a number, got {value!r}"
            )
    if step <= 0:
        raise SpecificationError(f"{what}: range step must be > 0: {step}")
    if stop < start:
        raise SpecificationError(
            f"{what}: range stop {stop} is below start {start}"
        )
    exact = all(isinstance(v, int) for v in (start, stop, step))
    values: list[int | float] = []
    index = 0
    # Generate by multiplication, not accumulation, so float steps do
    # not drift; the epsilon keeps an intended endpoint inclusive.
    while True:
        value = start + index * step
        if value > stop + (0 if exact else 1e-9 * max(1.0, abs(stop))):
            break
        values.append(value if exact else float(min(value, stop)))
        index += 1
    return tuple(values)


@dataclass(frozen=True)
class SweepAxis:
    """One grid dimension: a dotted scenario field and its values."""

    field: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        split_field(self.field)  # validates the dotted path
        try:
            object.__setattr__(self, "values", tuple(self.values))
        except TypeError as error:
            raise SpecificationError(
                f"sweep axis {self.field!r}: values must be a list: "
                f"{error}"
            ) from error
        if not self.values:
            raise SpecificationError(
                f"sweep axis {self.field!r}: at least one value is "
                f"required"
            )
        # Duplicate values would expand into cells with identical keys:
        # redundant work that the run store then collapses to one row.
        tokens = [_value_key(value) for value in self.values]
        if len(set(tokens)) != len(tokens):
            dupes = sorted({t for t in tokens if tokens.count(t) > 1})
            raise SpecificationError(
                f"sweep axis {self.field!r}: duplicate values {dupes}"
            )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict (ranges serialize as their expanded values)."""
        return {"field": self.field, "values": list(self.values)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepAxis":
        """Build an axis from ``{"field", "values"|"range"}``."""
        if not isinstance(payload, Mapping):
            raise SpecificationError(
                f"sweep axis must be an object, got "
                f"{type(payload).__name__}: {payload!r}"
            )
        unknown = set(payload) - _AXIS_KEYS
        if unknown:
            raise SpecificationError(
                f"sweep axis: unknown keys {sorted(unknown)} "
                f"(allowed: {sorted(_AXIS_KEYS)})"
            )
        field_name = payload.get("field")
        has_values = "values" in payload
        has_range = "range" in payload
        if has_values == has_range:
            raise SpecificationError(
                f"sweep axis {field_name!r}: exactly one of 'values' "
                f"and 'range' is required"
            )
        if has_range:
            values = _expand_range(
                payload["range"], f"sweep axis {field_name!r}"
            )
        else:
            values = payload["values"]
            if isinstance(values, (str, bytes, Mapping)) or not hasattr(
                values, "__iter__"
            ):
                raise SpecificationError(
                    f"sweep axis {field_name!r}: values must be a list, "
                    f"got {type(values).__name__}"
                )
        return cls(field=field_name, values=tuple(values))


def _value_key(value: Any) -> str:
    """A canonical compact JSON rendering of one axis value."""
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as error:
        raise SpecificationError(
            f"sweep axis value {value!r} is not JSON-serializable: "
            f"{error}"
        ) from error


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid point.

    ``key`` is the cell's stable identity - the canonical
    ``field=value`` list in axis order - used by the run store to skip
    completed cells on resume.  ``scenario`` is the fully validated
    concrete scenario.
    """

    index: int
    key: str
    overrides: tuple[tuple[str, Any], ...]
    scenario: Scenario


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario crossed with axes - the whole parameter study."""

    name: str
    base: Scenario
    axes: tuple[SweepAxis, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError(
                f"sweep name must be a non-empty string: {self.name!r}"
            )
        if not isinstance(self.base, Scenario):
            raise SpecificationError(
                f"sweep base must be a Scenario, got "
                f"{type(self.base).__name__}"
            )
        object.__setattr__(self, "axes", tuple(self.axes))
        for axis in self.axes:
            if not isinstance(axis, SweepAxis):
                raise SpecificationError(
                    f"sweep axes must be SweepAxis instances, got "
                    f"{type(axis).__name__}"
                )
        fields = [axis.field for axis in self.axes]
        if len(set(fields)) != len(fields):
            dupes = sorted({f for f in fields if fields.count(f) > 1})
            raise SpecificationError(
                f"sweep {self.name!r}: duplicate axis fields {dupes}"
            )

    @property
    def total_cells(self) -> int:
        """Grid size: the product of axis lengths (1 with no axes)."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def cells(self) -> tuple[SweepCell, ...]:
        """Expand the cross-product into validated cells, in axis order.

        The first axis varies slowest (row-major, like nested loops in
        declaration order).  Every cell's scenario is constructed - and
        therefore validated - here, so a malformed grid point fails
        before any work is dispatched.
        """
        fields = [axis.field for axis in self.axes]
        grids = [axis.values for axis in self.axes]
        cells = []
        for index, combo in enumerate(itertools.product(*grids)):
            overrides = tuple(zip(fields, combo))
            key = ";".join(
                f"{field_name}={_value_key(value)}"
                for field_name, value in overrides
            )
            scenario = apply_overrides(self.base, dict(overrides))
            cells.append(
                SweepCell(
                    index=index,
                    key=key,
                    overrides=overrides,
                    scenario=scenario,
                )
            )
        return tuple(cells)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        if not isinstance(payload, Mapping):
            raise SpecificationError(
                f"sweep payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        unknown = set(payload) - {"name", "base", "axes"}
        if unknown:
            raise SpecificationError(
                f"sweep spec: unknown keys {sorted(unknown)} "
                f"(allowed: ['axes', 'base', 'name'])"
            )
        if "base" not in payload:
            raise SpecificationError("sweep spec: 'base' is required")
        axes_payload = payload.get("axes", ())
        if isinstance(axes_payload, (str, bytes, Mapping)) or not hasattr(
            axes_payload, "__iter__"
        ):
            raise SpecificationError(
                f"sweep axes must be a list of axis objects, got "
                f"{type(axes_payload).__name__}"
            )
        return cls(
            name=payload.get("name", ""),
            base=Scenario.from_dict(payload["base"]),
            axes=tuple(
                SweepAxis.from_dict(axis) for axis in axes_payload
            ),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a sweep spec from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecificationError(
                f"invalid sweep JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        """Load a sweep spec from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise SpecificationError(
                f"cannot read sweep file {path}: {error}"
            ) from error
        return cls.from_json(text)

    def save(self, path: str | Path) -> None:
        """Write the sweep spec to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")
