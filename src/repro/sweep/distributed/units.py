"""Content-addressed work units: the currency of the distributed sweep.

A :class:`WorkUnit` is one sweep cell in wire form: the cell ``key``
(axis coordinates), its positional ``index``, the fully expanded
scenario payload, and a ``uid`` - the canonical fingerprint of
``{key, scenario}`` (see :mod:`repro.core.fingerprint`).  The uid makes
units *content-addressed*: a worker recomputes it from the payload it
received and refuses a unit whose bytes do not match its address, so a
truncated or version-skewed coordinator can never make a worker compute
the wrong cell under the right name.

Expansion here is **lazy and payload-level**: :func:`iter_units`
applies dotted overrides to the base scenario's dict form directly
(:func:`repro.sweep.expand.set_dotted`) without constructing a
:class:`~repro.api.Scenario` per cell.  Validation moves to the worker
(``Scenario.from_dict`` runs there anyway), which keeps the
coordinator's per-cell cost at microseconds - at 10^5 cells, eager
``spec.cells()`` expansion alone would serialize tens of seconds into
the coordinator's startup and cap worker scaling.
"""

from __future__ import annotations

import copy
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.core.fingerprint import fingerprint
from repro.errors import SpecificationError
from repro.sweep.expand import set_dotted
from repro.sweep.spec import SweepSpec, _value_key


def unit_fingerprint(key: str, scenario: Mapping[str, Any]) -> str:
    """The content address of one work unit.

    Coordinator and worker both compute this - the coordinator to name
    the unit, the worker to verify the payload it received.  The
    scenario payload is canonicalized by :func:`fingerprint` (sorted
    keys, tagged encodings), so dict ordering differences between the
    two sides cannot break addressing.
    """
    return fingerprint({"key": key, "scenario": scenario})


@dataclass(frozen=True)
class WorkUnit:
    """One grid point in wire form."""

    uid: str
    index: int
    key: str
    overrides: tuple[tuple[str, Any], ...]
    scenario: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "uid": self.uid,
            "index": self.index,
            "key": self.key,
            "overrides": [list(pair) for pair in self.overrides],
            "scenario": self.scenario,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkUnit":
        """Rebuild a unit from its wire form, verifying the address."""
        try:
            unit = cls(
                uid=payload["uid"],
                index=payload["index"],
                key=payload["key"],
                overrides=tuple(
                    (field, value)
                    for field, value in payload["overrides"]
                ),
                scenario=dict(payload["scenario"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SpecificationError(
                f"malformed work unit: {error!r}"
            ) from error
        expected = unit_fingerprint(unit.key, unit.scenario)
        if unit.uid != expected:
            raise SpecificationError(
                f"work unit {unit.key!r} failed content verification: "
                f"addressed {unit.uid[:12]} but payload fingerprints "
                f"to {expected[:12]}"
            )
        return unit


def iter_units(spec: SweepSpec) -> Iterator[WorkUnit]:
    """Lazily expand a sweep into work units, in cell order.

    Unit keys and indices are exactly what ``spec.cells()`` would
    produce, and each unit's payload *validates to* the same scenario
    (``Scenario.from_dict(unit.scenario).to_dict() ==
    cell.scenario.to_dict()``, pinned by tests) - but the payload here
    is pre-normalization (overrides applied to a deep copy of the base
    payload), since per-cell ``Scenario`` construction is exactly the
    serial cost this path exists to avoid.  Consumers that compare
    against *stored* rows (which hold normalized scenarios) must
    normalize first - see the coordinator's resume path.  A sweep whose
    base payload fails to round-trip through JSON fails here, before
    anything is served.
    """
    base = json.loads(json.dumps(spec.base.to_dict()))
    fields = [axis.field for axis in spec.axes]
    grids = [axis.values for axis in spec.axes]

    for index, combo in enumerate(itertools.product(*grids)):
        overrides = tuple(zip(fields, combo))
        key = ";".join(
            f"{field_name}={_value_key(value)}"
            for field_name, value in overrides
        )
        payload = copy.deepcopy(base)
        for field_name, value in overrides:
            set_dotted(payload, field_name, value)
        yield WorkUnit(
            uid=unit_fingerprint(key, payload),
            index=index,
            key=key,
            overrides=overrides,
            scenario=payload,
        )


#: Row fields (and nested traffic fields) that legitimately differ
#: between two runs of the same cell: wall-clock derived, or the
#: observational cache_hit flag (which worker saw the first miss).
VOLATILE_ROW_FIELDS = ("elapsed", "cache_hit")
VOLATILE_TRAFFIC_FIELDS = ("requests_per_sec", "workers")


def strip_volatile(row: Mapping[str, Any]) -> dict[str, Any]:
    """A copy of one run-store row minus its volatile fields.

    This is the comparison form behind the core invariant: for any
    worker count and any kill schedule, the distributed row set equals
    a serial :func:`~repro.sweep.orchestrate.run_sweep` row set under
    this projection (everything else - results, fingerprints, keys -
    is bit-identical).
    """
    out = {
        field: value
        for field, value in row.items()
        if field not in VOLATILE_ROW_FIELDS
    }
    result = out.get("result")
    if isinstance(result, Mapping):
        result = json.loads(json.dumps(result))
        traffic = result.get("traffic")
        if isinstance(traffic, dict):
            for field in VOLATILE_TRAFFIC_FIELDS:
                traffic.pop(field, None)
        out["result"] = result
    return out
