"""Distributed sweep service: coordinator/worker fan-out.

A sweep grid becomes a stream of content-addressed work units served
over a length-prefixed JSON socket protocol; worker processes lease
cells under heartbeat deadlines (crashed or hung workers forfeit their
cells back to the queue), share one solve-cache namespace with a
cross-process single-flight lock (each distinct design solves exactly
once cluster-wide), and stream rows into the fsync'd run store.  The
core invariant: modulo wall-clock fields, the distributed row set is
identical to serial :func:`~repro.sweep.orchestrate.run_sweep` for any
worker count and any kill schedule.

Entry points: :func:`~repro.sweep.distributed.service.run_distributed_sweep`
for a one-call local cluster, :class:`SweepCoordinator` +
``repro sweep work`` for multi-host setups, and
``repro sweep serve`` / ``repro sweep work`` on the CLI.
"""

from repro.sweep.distributed.coordinator import (
    DistributedSweepResult,
    SweepCoordinator,
)
from repro.sweep.distributed.lease import Lease, LeaseTable
from repro.sweep.distributed.protocol import (
    PROTOCOL_VERSION,
    FramedSocket,
    ProtocolError,
    connect,
    parse_address,
)
from repro.sweep.distributed.service import (
    run_distributed_sweep,
    spawn_worker,
    wait_for_workers,
    worker_command,
)
from repro.sweep.distributed.units import (
    WorkUnit,
    iter_units,
    strip_volatile,
    unit_fingerprint,
)
from repro.sweep.distributed.worker import WorkerStats, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "DistributedSweepResult",
    "FramedSocket",
    "Lease",
    "LeaseTable",
    "ProtocolError",
    "SweepCoordinator",
    "WorkUnit",
    "WorkerStats",
    "connect",
    "iter_units",
    "parse_address",
    "run_distributed_sweep",
    "run_worker",
    "spawn_worker",
    "strip_volatile",
    "unit_fingerprint",
    "wait_for_workers",
    "worker_command",
]
