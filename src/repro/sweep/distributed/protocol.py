"""The coordinator/worker wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The format is deliberately boring: it survives any
TCP segmentation, needs no external dependency, and every message stays
human-readable with ``xxd``-level tooling.  :class:`FramedSocket` wraps
a connected socket with buffered, timeout-tolerant receives (a timeout
mid-frame keeps the partial bytes and resumes cleanly) and a send lock
so a worker's heartbeat thread and its main loop never interleave
frames.

Message vocabulary (every message is an object with a ``"type"``):

Worker -> coordinator
    ``hello``      ``{worker, pid, protocol, cache_dir}`` - sign-on.
    ``request``    ``{max_units}`` - ask for a lease.
    ``result``     ``{units: [{uid, key, row | error}], stats}`` - one
                   completed batch (a run-store row per unit, or an
                   ``error`` string for a cell that failed) plus the
                   worker's *cumulative* cache counters (so a later
                   crash cannot lose the solve accounting already
                   reported).
    ``heartbeat``  fire-and-forget lease keep-alive; never answered.
    ``goodbye``    ``{stats, telemetry?}`` - final counters and, when
                   the coordinator asked for it, the worker's captured
                   telemetry registry.

Coordinator -> worker
    ``welcome``    ``{sweep, protocol, lease_seconds, telemetry}``.
    ``grant``      ``{units: [work units]}`` - leased cells.
    ``wait``       ``{delay}`` - nothing grantable right now (the tail
                   of the grid is leased to other workers); retry.
    ``done``       the grid is complete; disconnect.
    ``ack``        ``{accepted, duplicates}`` - the result batch is
                   durable in the run store (sent *after* the fsync'd
                   append, which is what makes worker handoff
                   at-least-once rather than at-most-once).
    ``error``      ``{reason}`` - protocol violation; connection drops.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from typing import Any

from repro.errors import SpecificationError

#: Bumped on any incompatible wire change; hello/welcome both carry it.
PROTOCOL_VERSION = 1

#: One frame must fit a result batch of deep rows, with margin.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class ProtocolError(SpecificationError):
    """A malformed or oversized frame, or a version mismatch."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message into its wire frame."""
    try:
        data = json.dumps(
            message, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            f"message is not JSON-serializable: {error}"
        ) from error
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(data)) + data


def decode_payload(data: bytes) -> dict[str, Any]:
    """Parse one frame payload back into a message object."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame payload: {error}") from error
    if not isinstance(message, dict) or not isinstance(
        message.get("type"), str
    ):
        raise ProtocolError(
            f"messages must be objects with a string 'type', got "
            f"{type(message).__name__}"
        )
    return message


class FramedSocket:
    """A connected socket speaking length-prefixed JSON messages.

    ``send`` is thread-safe (one lock around the full ``sendall``), so
    a heartbeat thread can share the socket with the main loop.
    ``recv`` is single-reader and *timeout-tolerant*: a timeout in the
    middle of a frame preserves the partial bytes in the receive buffer
    and returns ``None``, so callers can poll a shutdown flag without
    ever corrupting the stream.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()
        self._send_lock = threading.Lock()

    @property
    def socket(self) -> socket.socket:
        return self._sock

    def send(self, message: dict[str, Any]) -> None:
        """Send one message (whole frame, under the send lock)."""
        frame = encode_frame(message)
        with self._send_lock:
            self._sock.sendall(frame)

    def _fill(self, needed: int, deadline: float | None) -> bool:
        """Grow the buffer to ``needed`` bytes; ``False`` on timeout.

        Raises :class:`EOFError` when the peer closed - a clean close
        and an abortive one (e.g. a SIGKILL'd worker, surfacing as
        ``ECONNRESET``) are the same event to the protocol: the peer is
        gone.
        """
        while len(self._buffer) < needed:
            if deadline is None:
                self._sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(65536)
            except (socket.timeout, TimeoutError):
                return False
            except ConnectionError as error:
                raise EOFError(
                    f"peer connection lost: {error}"
                ) from error
            if not chunk:
                raise EOFError("peer closed the connection")
            self._buffer.extend(chunk)
        return True

    def recv(self, timeout: float | None = None) -> dict[str, Any] | None:
        """The next message, or ``None`` if ``timeout`` elapsed first.

        Raises :class:`EOFError` when the peer closed (including a
        SIGKILL'd worker, whose exit closes the socket) and
        :class:`ProtocolError` on a malformed or oversized frame.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        if not self._fill(_LENGTH.size, deadline):
            return None
        length = _LENGTH.unpack(bytes(self._buffer[: _LENGTH.size]))[0]
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"incoming frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        if not self._fill(_LENGTH.size + length, deadline):
            return None
        del self._buffer[: _LENGTH.size]
        data = bytes(self._buffer[:length])
        del self._buffer[:length]
        return decode_payload(data)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def connect(
    host: str, port: int, *, timeout: float = 10.0
) -> FramedSocket:
    """Dial the coordinator, retrying until ``timeout`` elapses.

    Workers routinely start before the coordinator finishes binding
    (or reconnect across a coordinator restart), so refusal is retried
    on a short backoff instead of failing the worker outright.
    """
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            sock.settimeout(None)
            return FramedSocket(sock)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise SpecificationError(
                    f"cannot connect to sweep coordinator at "
                    f"{host}:{port}: {error}"
                ) from error
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def parse_address(raw: str) -> tuple[str, int]:
    """Parse a ``host:port`` flag value."""
    host, sep, port = raw.rpartition(":")
    if not sep or not host:
        raise SpecificationError(
            f"expected host:port, got {raw!r}"
        )
    try:
        number = int(port)
    except ValueError as error:
        raise SpecificationError(
            f"invalid port in {raw!r}: {port!r}"
        ) from error
    if not 0 <= number <= 65535:
        raise SpecificationError(f"port out of range in {raw!r}")
    return host, number
