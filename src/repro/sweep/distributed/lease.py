"""Crash-safe work leases: who is computing which cell, until when.

The coordinator never *assigns* cells - it **leases** them.  A lease is
a promise with a deadline: the worker must either return the cell's row
or keep the lease alive with heartbeats; a lease whose deadline passes
(hung worker) or whose connection drops (killed worker - the kernel
closes the socket, the coordinator sees EOF) is *released* and its cell
goes back on the queue for someone else.  That single rule is what
makes any kill schedule safe: cells can be computed twice (results are
deterministic and the store dedupes by key) but can never be lost.

:class:`LeaseTable` is the bookkeeping core, deliberately free of
sockets and threads: time is injected (``clock``), so expiry logic is
unit-testable at microsecond speed.  Thread safety is the caller's job
(the coordinator holds one lock around queue + table).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.sweep.distributed.units import WorkUnit


@dataclass
class Lease:
    """One outstanding promise: ``worker`` computes ``unit`` by
    ``deadline``."""

    unit: WorkUnit
    worker: str
    deadline: float
    granted_at: float


@dataclass
class LeaseTable:
    """Outstanding leases, keyed by unit uid.

    ``lease_seconds`` is the heartbeat budget: a worker that stays
    silent that long forfeits its cells.  Every message from a worker
    (heartbeat, request, result) renews all of its leases - liveness is
    a property of the *worker*, not of one cell, so a long-solving cell
    stays leased as long as its worker keeps breathing.
    """

    lease_seconds: float = 15.0
    clock: Callable[[], float] = time.monotonic
    _leases: dict[str, Lease] = field(default_factory=dict)
    #: Lifetime counters (the coordinator folds them into telemetry).
    granted: int = 0
    expired: int = 0
    released: int = 0
    completed: int = 0

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, uid: str) -> bool:
        return uid in self._leases

    def grant(self, unit: WorkUnit, worker: str) -> Lease:
        """Lease one unit to ``worker`` (it must not be leased)."""
        assert unit.uid not in self._leases, unit.key
        now = self.clock()
        lease = Lease(
            unit=unit,
            worker=worker,
            deadline=now + self.lease_seconds,
            granted_at=now,
        )
        self._leases[unit.uid] = lease
        self.granted += 1
        return lease

    def renew(self, worker: str) -> int:
        """Push every lease of ``worker`` forward; returns how many."""
        deadline = self.clock() + self.lease_seconds
        count = 0
        for lease in self._leases.values():
            if lease.worker == worker:
                lease.deadline = deadline
                count += 1
        return count

    def complete(self, uid: str) -> Lease | None:
        """Drop the lease for a returned row (``None`` if not leased -
        e.g. the row arrived after the lease expired and re-queued)."""
        lease = self._leases.pop(uid, None)
        if lease is not None:
            self.completed += 1
        return lease

    def release_worker(self, worker: str) -> list[WorkUnit]:
        """Take back every lease of a dead worker (EOF path)."""
        taken = [
            uid
            for uid, lease in self._leases.items()
            if lease.worker == worker
        ]
        units = [self._leases.pop(uid).unit for uid in taken]
        self.released += len(units)
        return units

    def expire(self) -> list[WorkUnit]:
        """Take back every lease whose deadline passed (hung-worker
        path); the caller re-queues the returned units."""
        now = self.clock()
        overdue = [
            uid
            for uid, lease in self._leases.items()
            if lease.deadline <= now
        ]
        units = [self._leases.pop(uid).unit for uid in overdue]
        self.expired += len(units)
        return units

    def workers(self) -> set[str]:
        """Workers currently holding at least one lease."""
        return {lease.worker for lease in self._leases.values()}

    def leases(self) -> Iterator[Lease]:
        yield from self._leases.values()

    def stats(self) -> dict[str, Any]:
        """Lifetime counters plus the current outstanding count."""
        return {
            "outstanding": len(self._leases),
            "granted": self.granted,
            "completed": self.completed,
            "expired": self.expired,
            "released": self.released,
        }
