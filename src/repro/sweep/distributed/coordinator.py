"""The sweep coordinator: lease cells out, stream rows in, lose nothing.

:class:`SweepCoordinator` owns one sweep run end to end: it lazily
expands the :class:`~repro.sweep.spec.SweepSpec` into content-addressed
:class:`~repro.sweep.distributed.units.WorkUnit`\\ s, serves them over
the length-prefixed JSON protocol to any number of worker connections
(local or remote), and folds completed rows into the fsync'd
:class:`~repro.sweep.store.RunStore` plus live streaming marginals.

The durability contract, end to end:

* a result batch is acknowledged only **after** its rows are fsync'd
  into the run store - a worker treats unacknowledged cells as not
  done, so delivery is at-least-once and the coordinator dedupes by
  cell key (rows are deterministic; recomputing is always safe);
* a worker that disconnects (SIGKILL closes its socket) or stops
  heartbeating (hang) forfeits its leases; the cells re-queue and the
  grid still completes - **any** kill schedule loses zero cells;
* ``resume=True`` reuses stored rows whose scenario payload still
  matches, reporting *why* every other stored row re-ran (fingerprint
  drift vs. missing key), exactly like the serial orchestrator.

Threading model: one accept loop (the ``serve`` caller's thread), one
daemon thread per worker connection, one reaper for lease expiry.  All
shared state - queue, lease table, completed rows, counters - sits
behind a single lock; the expensive per-cell work happens in worker
*processes*, so the lock is never held across anything slower than an
fsync.
"""

from __future__ import annotations

import collections
import json
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import SpecificationError
from repro.api.scenario import Scenario
from repro.obs import telemetry as obs
from repro.sweep.aggregate import MarginalAccumulator, render_table, tidy_rows
from repro.sweep.spec import SweepSpec
from repro.sweep.store import RunStore
from repro.sweep.distributed.lease import LeaseTable
from repro.sweep.distributed.protocol import (
    PROTOCOL_VERSION,
    FramedSocket,
    ProtocolError,
)
from repro.sweep.distributed.units import WorkUnit, iter_units

#: Seconds a worker gets to say hello before the connection is dropped.
HELLO_TIMEOUT = 30.0
#: Suggested client back-off when the queue is momentarily empty.
WAIT_DELAY = 0.2
#: Default marginal metrics folded live per axis field.
MARGINAL_METRICS = ("sim_miss_rate", "sim_p95", "traffic_miss_rate")


@dataclass(frozen=True)
class DistributedSweepResult:
    """Everything one distributed sweep run produced.

    The counters mirror :class:`~repro.sweep.orchestrate.SweepResult`
    (so summaries are comparable across modes) plus the distributed
    story: ``duplicates`` (rows recomputed after a lease bounced, then
    deduped), ``requeued`` (cells taken back from dead or hung
    workers), ``lease_expiries`` (the hung-worker subset), and
    per-worker utilization.  ``solves`` aggregates the workers'
    *reported* cache counters - with a shared cache directory and the
    single-flight lock it equals ``distinct_designs``: each design
    solved exactly once cluster-wide.
    """

    spec: SweepSpec
    rows: tuple[dict[str, Any], ...]
    cells: int
    executed: int
    resumed: int
    distinct_designs: int
    solves: int
    cache_hits: int
    workers: int
    elapsed: float
    store_path: str | None
    duplicates: int
    requeued: int
    lease_expiries: int
    lock_waits: int
    cross_hits: int
    rerun_drift: int
    rerun_missing: int
    worker_stats: dict[str, dict[str, Any]]
    marginals: dict[str, list[dict[str, Any]]]
    failures: tuple[dict[str, str], ...] = ()

    def records(self) -> list[dict[str, Any]]:
        """Tidy per-cell records (requires ``keep_rows=True``)."""
        return tidy_rows(self.rows)

    def table(self) -> str:
        """An aligned plain-text table of the tidy records."""
        return render_table(self.records())

    def summary(self) -> dict[str, Any]:
        """The headline counters as one JSON-able dict."""
        return {
            "sweep": self.spec.name,
            "cells": self.cells,
            "executed": self.executed,
            "resumed": self.resumed,
            "rerun": {
                "fingerprint_drift": self.rerun_drift,
                "missing_key": self.rerun_missing,
            },
            "distinct_designs": self.distinct_designs,
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "workers": self.workers,
            "elapsed": round(self.elapsed, 3),
            "store": self.store_path,
            "distributed": {
                "duplicates": self.duplicates,
                "requeued": self.requeued,
                "lease_expiries": self.lease_expiries,
                "lock_waits": self.lock_waits,
                "cross_hits": self.cross_hits,
                "failures": len(self.failures),
                "worker_stats": self.worker_stats,
            },
        }

    def to_dict(self) -> dict[str, Any]:
        """Summary plus live marginals (rows live in the store)."""
        return {"summary": self.summary(), "marginals": self.marginals}


class SweepCoordinator:
    """Serve one sweep's cells to workers until every row is home.

    Parameters mirror :func:`~repro.sweep.orchestrate.run_sweep` where
    they overlap; the distributed knobs:

    bind:
        ``(host, port)`` to listen on; port 0 picks an ephemeral port
        (read :attr:`address` after construction - the listener is
        bound and listening as soon as ``__init__`` returns, so workers
        may dial immediately even though ``serve`` starts later).
    lease_seconds:
        The heartbeat budget: a worker silent this long forfeits its
        leased cells to the queue.
    batch:
        Upper bound on units per grant (workers may ask for less).
        Batching amortizes one request/response round-trip and one
        store fsync over many cells - the knob that keeps a 10^5-cell
        grid coordinator-light.
    keep_rows:
        ``False`` drops completed rows after storing/aggregating them,
        bounding coordinator memory at huge grids (the store still has
        everything; ``result.rows`` is then empty).
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        store_path: str | Path | None = None,
        resume: bool = False,
        lease_seconds: float = 15.0,
        batch: int = 16,
        keep_rows: bool = True,
        marginal_metrics: tuple[str, ...] = MARGINAL_METRICS,
    ) -> None:
        if not isinstance(spec, SweepSpec):
            raise SpecificationError(
                f"SweepCoordinator expects a SweepSpec, got "
                f"{type(spec).__name__}"
            )
        if resume and store_path is None:
            raise SpecificationError(
                "resume requires a run store (store_path)"
            )
        if lease_seconds <= 0:
            raise SpecificationError(
                f"lease_seconds must be > 0: {lease_seconds}"
            )
        if batch < 1:
            raise SpecificationError(f"batch must be >= 1: {batch}")
        self.spec = spec
        self.lease_seconds = float(lease_seconds)
        self.batch = int(batch)
        self._keep_rows = keep_rows
        self._resume = resume
        self._store = (
            None if store_path is None else RunStore(store_path)
        )

        self._lock = threading.Lock()
        self._queue: collections.deque[WorkUnit] = collections.deque()
        self._iter: Iterator[WorkUnit] | None = None
        self._iter_done = False
        self._leases = LeaseTable(lease_seconds=self.lease_seconds)
        self._total = spec.total_cells
        self._rows: dict[str, dict[str, Any]] = {}
        self._completed: set[str] = set()
        self._fingerprints: set[str] = set()
        self._failures: dict[str, str] = {}
        self._stored_by_key: dict[str, dict[str, Any]] = {}
        self._executed = 0
        self._resumed = 0
        self._duplicates = 0
        self._requeued = 0
        self._rerun_drift = 0
        self._rerun_missing = 0
        self._worker_stats: dict[str, dict[str, Any]] = {}
        self._worker_connected: dict[str, float] = {}
        self._worker_finished: dict[str, float] = {}
        self._worker_serial = 0
        self._marginals = MarginalAccumulator(
            fields=tuple(axis.field for axis in spec.axes),
            metrics=marginal_metrics,
        )
        self._done = threading.Event()
        self._closed = False
        self._threads: list[threading.Thread] = []
        self.progress: Any = None  # callback(completed, total) or None

        self._listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(bind)
        self._listener.listen(64)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` workers should dial."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def completed_count(self) -> int:
        """Completed cells so far (resumed + executed); thread-safe."""
        with self._lock:
            return len(self._completed)

    @property
    def total_cells(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    # queue management

    def _load_resume_rows(self) -> None:
        """Index the store for resume (called once, before serving)."""
        if self._store is None:
            return
        if not self._resume:
            self._store.backup_and_clear()
            return
        with obs.span("sweep.dist.resume_load"):
            for row in self._store.rows():
                key = row.get("key")
                if isinstance(key, str):
                    # Last row per key wins, like the serial resume.
                    self._stored_by_key[key] = row

    def _try_resume(self, unit: WorkUnit) -> dict[str, Any] | None:
        """The stored row for ``unit`` if it is still valid.

        Stored rows hold *normalized* scenario payloads (they came out
        of ``ScenarioResult.to_dict``), while lazily expanded units are
        pre-normalization - so the unit's payload is normalized through
        one ``Scenario`` round-trip before comparing.  That cost is
        paid only for keys that actually have a stored row.
        """
        stored = self._stored_by_key.get(unit.key)
        if stored is None:
            if self._resume:
                self._rerun_missing += 1
            return None
        expected = json.loads(
            json.dumps(Scenario.from_dict(unit.scenario).to_dict())
        )
        if (stored.get("result") or {}).get("scenario") != expected:
            self._rerun_drift += 1
            return None
        return {**stored, "index": unit.index}

    def _refill(self, want: int) -> None:
        """Pull units from the lazy expansion until the queue can serve
        ``want`` units (or the grid is exhausted).  Lock held."""
        if self._iter is None:
            self._iter = iter_units(self.spec)
        while len(self._queue) < want and not self._iter_done:
            try:
                unit = next(self._iter)
            except StopIteration:
                self._iter_done = True
                break
            resumed = self._try_resume(unit)
            if resumed is not None:
                self._resumed += 1
                self._complete_row(unit.key, resumed, resumed_row=True)
                continue
            self._queue.append(unit)

    def _complete_row(
        self,
        key: str,
        row: dict[str, Any],
        *,
        resumed_row: bool = False,
    ) -> bool:
        """Record one finished cell.  Lock held.  False on duplicate."""
        if key in self._completed:
            return False
        self._completed.add(key)
        fingerprint = row.get("fingerprint")
        if isinstance(fingerprint, str):
            self._fingerprints.add(fingerprint)
        if not resumed_row:
            self._executed += 1
        if self._keep_rows:
            self._rows[key] = row
        self._marginals.add_row(row)
        if len(self._completed) + len(self._failures) >= self._total:
            self._done.set()
        return True

    def _requeue(self, units: list[WorkUnit], reason: str) -> None:
        """Put forfeited leases back on the queue.  Lock held."""
        if not units:
            return
        for unit in units:
            if unit.key not in self._completed:
                self._queue.append(unit)
        self._requeued += len(units)
        obs.inc(
            "sweep.dist.requeued", len(units), stability="volatile",
            reason=reason,
        )

    # ------------------------------------------------------------------
    # protocol handlers (each runs on a connection thread)

    def _register_worker(self, hello: Mapping[str, Any]) -> str:
        base = str(hello.get("worker") or "worker")
        with self._lock:
            self._worker_serial += 1
            name = base
            if name in self._worker_stats:
                name = f"{base}#{self._worker_serial}"
            self._worker_stats[name] = {}
            self._worker_connected[name] = time.monotonic()
            obs.gauge("sweep.dist.workers", len(self._worker_stats))
        return name

    def _handle_request(
        self, worker: str, message: Mapping[str, Any]
    ) -> dict[str, Any]:
        want = message.get("max_units")
        if not isinstance(want, int) or want < 1:
            want = self.batch
        want = min(want, self.batch)
        with self._lock:
            self._leases.renew(worker)
            if self._done.is_set():
                return {"type": "done"}
            self._refill(want)
            units = []
            while self._queue and len(units) < want:
                unit = self._queue.popleft()
                if unit.key in self._completed:
                    continue
                self._leases.grant(unit, worker)
                units.append(unit)
            depth = len(self._queue)
            done = self._done.is_set()
        obs.gauge("sweep.dist.queue_depth", depth)
        if units:
            obs.inc(
                "sweep.dist.leases.granted", len(units),
                stability="volatile",
            )
            return {
                "type": "grant",
                "units": [unit.to_dict() for unit in units],
            }
        if done:
            return {"type": "done"}
        return {"type": "wait", "delay": WAIT_DELAY}

    def _handle_result(
        self, worker: str, message: Mapping[str, Any]
    ) -> dict[str, Any]:
        entries = message.get("units")
        if not isinstance(entries, list):
            raise ProtocolError("result message carries no units list")
        stats = message.get("stats")
        accepted: list[dict[str, Any]] = []
        duplicates = 0
        failed = 0
        with self._lock:
            self._leases.renew(worker)
            for entry in entries:
                uid = entry.get("uid")
                if isinstance(uid, str):
                    self._leases.complete(uid)
                error = entry.get("error")
                if error is not None:
                    key = str(entry.get("key"))
                    if key not in self._failures:
                        self._failures[key] = str(error)
                        failed += 1
                        obs.inc(
                            "sweep.dist.cells.failed",
                            stability="volatile",
                        )
                    if (
                        len(self._completed) + len(self._failures)
                        >= self._total
                    ):
                        self._done.set()
                    continue
                row = entry.get("row")
                if not isinstance(row, dict) or not isinstance(
                    row.get("key"), str
                ):
                    raise ProtocolError(
                        "result rows must be run-store row objects"
                    )
                if self._complete_row(row["key"], row):
                    accepted.append(row)
                else:
                    duplicates += 1
            self._duplicates += duplicates
            if isinstance(stats, dict):
                self._worker_stats[worker] = stats
            if self._store is not None and accepted:
                # Ack only after the fsync: the batch is durable first,
                # acknowledged second (at-least-once handoff).
                with obs.span(
                    "sweep.dist.store", rows=len(accepted)
                ):
                    self._store.append_many(accepted)
            completed = len(self._completed)
        obs.inc(
            "sweep.dist.cells.completed", len(accepted)
        )
        if duplicates:
            obs.inc(
                "sweep.dist.cells.duplicates", duplicates,
                stability="volatile",
            )
        if self.progress is not None:
            self.progress(completed, self._total)
        return {
            "type": "ack",
            "accepted": len(accepted),
            "duplicates": duplicates,
            "failed": failed,
        }

    def _handle_goodbye(
        self, worker: str, message: Mapping[str, Any]
    ) -> None:
        stats = message.get("stats")
        tel_payload = message.get("telemetry")
        tel = obs.current()
        with self._lock:
            if isinstance(stats, dict):
                self._worker_stats[worker] = stats
            self._worker_finished[worker] = time.monotonic()
        if tel is not None and isinstance(tel_payload, dict):
            tel.merge_dict(tel_payload)

    def _serve_connection(self, conn: socket.socket) -> None:
        framed = FramedSocket(conn)
        worker: str | None = None
        try:
            hello = framed.recv(timeout=HELLO_TIMEOUT)
            if hello is None or hello.get("type") != "hello":
                framed.send(
                    {"type": "error", "reason": "expected hello"}
                )
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                framed.send(
                    {
                        "type": "error",
                        "reason": (
                            f"protocol mismatch: coordinator speaks "
                            f"{PROTOCOL_VERSION}, worker "
                            f"{hello.get('protocol')!r}"
                        ),
                    }
                )
                return
            worker = self._register_worker(hello)
            tel = obs.current()
            framed.send(
                {
                    "type": "welcome",
                    "sweep": self.spec.name,
                    "protocol": PROTOCOL_VERSION,
                    "worker": worker,
                    "lease_seconds": self.lease_seconds,
                    "telemetry": tel is not None,
                }
            )
            while True:
                message = framed.recv(timeout=0.5)
                if message is None:
                    if self._closed:
                        break
                    continue
                kind = message.get("type")
                if kind == "heartbeat":
                    with self._lock:
                        self._leases.renew(worker)
                elif kind == "request":
                    framed.send(self._handle_request(worker, message))
                elif kind == "result":
                    framed.send(self._handle_result(worker, message))
                elif kind == "goodbye":
                    self._handle_goodbye(worker, message)
                    break
                else:
                    raise ProtocolError(
                        f"unexpected message type {kind!r}"
                    )
        except EOFError:
            # The worker vanished (crash, SIGKILL, network cut): its
            # leases go straight back on the queue.
            pass
        except ProtocolError as error:
            try:
                framed.send({"type": "error", "reason": str(error)})
            except OSError:
                pass
        except OSError:
            pass
        finally:
            if worker is not None:
                with self._lock:
                    units = self._leases.release_worker(worker)
                    self._requeue(units, reason="disconnect")
                    self._worker_finished.setdefault(
                        worker, time.monotonic()
                    )
            framed.close()

    # ------------------------------------------------------------------
    # lifecycle

    def _reap(self) -> None:
        interval = max(0.05, min(1.0, self.lease_seconds / 4))
        while not self._done.wait(interval):
            with self._lock:
                expired = self._leases.expire()
                self._requeue(expired, reason="lease_expired")
            if expired:
                obs.inc(
                    "sweep.dist.leases.expired", len(expired),
                    stability="volatile",
                )

    def serve(self) -> DistributedSweepResult:
        """Accept workers and serve cells until the grid completes.

        Blocks the calling thread.  Failed *cells* are reported in
        ``result.failures`` rather than raised, so a 99.9%-done
        overnight grid is not thrown away over one bad cell.
        """
        begin = time.perf_counter()
        with obs.span("sweep.dist.serve", sweep=self.spec.name):
            self._load_resume_rows()
            with self._lock:
                # An all-resumed (or empty) grid completes without a
                # single worker.
                self._refill(self.batch)
                if (
                    len(self._completed) + len(self._failures)
                    >= self._total
                ):
                    self._done.set()
            reaper = threading.Thread(
                target=self._reap, name="sweep-reaper", daemon=True
            )
            reaper.start()
            self._listener.settimeout(0.2)
            try:
                while not self._done.is_set():
                    try:
                        conn, _ = self._listener.accept()
                    except (socket.timeout, TimeoutError):
                        continue
                    except OSError:
                        break
                    conn.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                    thread = threading.Thread(
                        target=self._serve_connection,
                        args=(conn,),
                        daemon=True,
                    )
                    thread.start()
                    self._threads.append(thread)
            finally:
                self._closed = True
                # Give connected workers a grace window to collect
                # their `done` and say goodbye (their final stats and
                # telemetry ride on it), then tear down.
                deadline = time.monotonic() + 10.0
                for thread in self._threads:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    thread.join(timeout=remaining)
                reaper.join(timeout=2.0)
                self._listener.close()
        elapsed = time.perf_counter() - begin
        return self._result(elapsed)

    def close(self) -> None:
        """Abort serving (tests / signal handlers)."""
        self._closed = True
        self._done.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def _result(self, elapsed: float) -> DistributedSweepResult:
        with self._lock:
            solves = sum(
                stats.get("solves", 0)
                for stats in self._worker_stats.values()
                if isinstance(stats, dict)
            )
            lock_waits = sum(
                stats.get("lock_waits", 0)
                for stats in self._worker_stats.values()
                if isinstance(stats, dict)
            )
            cross_hits = sum(
                stats.get("cross_hits", 0)
                for stats in self._worker_stats.values()
                if isinstance(stats, dict)
            )
            obs.inc("sweep.dist.cells.resumed", self._resumed)
            obs.inc(
                "sweep.dist.cache.cross_hits", cross_hits,
                stability="volatile",
            )
            end = time.monotonic()
            worker_stats: dict[str, dict[str, Any]] = {}
            for name, stats in self._worker_stats.items():
                connected = self._worker_connected.get(name)
                finished = self._worker_finished.get(name, end)
                wall = (
                    None
                    if connected is None
                    else max(1e-9, finished - connected)
                )
                busy = (
                    stats.get("busy_seconds")
                    if isinstance(stats, dict)
                    else None
                )
                utilization = None
                if wall is not None and isinstance(busy, (int, float)):
                    utilization = min(1.0, busy / wall)
                    obs.gauge(
                        "sweep.dist.worker_utilization",
                        utilization,
                        worker=name,
                    )
                worker_stats[name] = {
                    **(stats if isinstance(stats, dict) else {}),
                    "wall_seconds": wall,
                    "utilization": utilization,
                }
            rows = tuple(
                sorted(
                    self._rows.values(),
                    key=lambda row: row.get("index", 0),
                )
            ) if self._keep_rows else ()
            failures = tuple(
                {"key": key, "error": error}
                for key, error in sorted(self._failures.items())
            )
            return DistributedSweepResult(
                spec=self.spec,
                rows=rows,
                cells=self._total,
                executed=self._executed,
                resumed=self._resumed,
                distinct_designs=len(self._fingerprints),
                solves=solves,
                cache_hits=max(0, self._executed - solves),
                workers=len(self._worker_stats),
                elapsed=elapsed,
                store_path=(
                    None
                    if self._store is None
                    else str(self._store.path)
                ),
                duplicates=self._duplicates,
                requeued=self._requeued,
                lease_expiries=self._leases.expired,
                lock_waits=lock_waits,
                cross_hits=cross_hits,
                rerun_drift=self._rerun_drift,
                rerun_missing=self._rerun_missing,
                worker_stats=worker_stats,
                marginals=self._marginals.summary(),
                failures=failures,
            )
