"""The sweep worker: lease cells, run them, stream the rows home.

One worker is one process running :func:`run_worker`: dial the
coordinator, say hello, then loop *request -> grant -> compute -> result
-> ack* until the coordinator says ``done``.  A daemon heartbeat thread
keeps the worker's leases alive across long solves (the frame lock in
:class:`~repro.sweep.distributed.protocol.FramedSocket` makes the shared
socket safe).

Rows are produced **exactly** like the serial orchestrator's: the unit's
payload is validated into a :class:`~repro.api.Scenario`, the design is
resolved through the shared :class:`~repro.sweep.cache.SolveCache`
(whose disk tier plus single-flight lock is what makes each distinct
design solve exactly once *cluster-wide*), and the engine runs with the
design injected.  Modulo wall-clock fields, a distributed row is
bit-identical to its serial twin - the invariant every distributed test
leans on.

A cell that raises :class:`~repro.errors.ReproError` is reported to the
coordinator as a failed unit (``{uid, key, error}``) rather than
crashing the worker: one malformed corner of a 10^5-cell grid should
cost one cell, not a worker.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError, SpecificationError
from repro.api.engine import BroadcastEngine
from repro.api.scenario import Scenario
from repro.obs import telemetry as obs
from repro.sweep.cache import SolveCache
from repro.sweep.distributed.protocol import (
    PROTOCOL_VERSION,
    FramedSocket,
    connect,
)
from repro.sweep.distributed.units import WorkUnit


@dataclass
class WorkerStats:
    """One worker's cumulative counters, shipped with every result
    batch (so a crash after batch *n* cannot lose the accounting for
    batches 1..n - in particular the ``solves`` count the cluster-wide
    exactly-once assertion sums over)."""

    cells: int = 0
    failed: int = 0
    solves: int = 0
    hits: int = 0
    lock_waits: int = 0
    cross_hits: int = 0
    busy_seconds: float = 0.0
    _seen: set[str] = field(default_factory=set)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cells": self.cells,
            "failed": self.failed,
            "solves": self.solves,
            "hits": self.hits,
            "lock_waits": self.lock_waits,
            "cross_hits": self.cross_hits,
            "busy_seconds": round(self.busy_seconds, 6),
        }


def _execute(
    unit: WorkUnit, cache: SolveCache, stats: WorkerStats
) -> dict[str, Any]:
    """Run one cell and shape its run-store row (the serial shape)."""
    begin = time.perf_counter()
    scenario = Scenario.from_dict(unit.scenario)
    design_fp = scenario.design_fingerprint()
    first_touch = design_fp not in stats._seen
    stats._seen.add(design_fp)
    design, hit = cache.design_for(scenario)
    if first_touch and hit:
        # A hit on the very first in-process touch can only have come
        # off the shared disk tier: another worker solved this design.
        # Counted here in the batch stats only - the coordinator sums
        # these and emits the one sweep.dist.cache.cross_hits counter
        # (an obs.inc here too would double-count after the goodbye
        # registry merge).
        stats.cross_hits += 1
    engine = BroadcastEngine(scenario, design=design)
    result = engine.run()
    return {
        "key": unit.key,
        "index": unit.index,
        "overrides": [list(pair) for pair in unit.overrides],
        "fingerprint": design_fp,
        "cache_hit": hit,
        "elapsed": round(time.perf_counter() - begin, 6),
        "result": result.to_dict(),
    }


def _heartbeat_loop(
    framed: FramedSocket, interval: float, stop: threading.Event
) -> None:
    while not stop.wait(interval):
        try:
            framed.send({"type": "heartbeat"})
        except OSError:
            return


def run_worker(
    host: str,
    port: int,
    *,
    cache_dir: str | os.PathLike[str] | None = None,
    name: str | None = None,
    max_units: int | None = None,
    connect_timeout: float = 10.0,
    batch: int | None = None,
    on_cell: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Serve one worker process until the coordinator says ``done``.

    cache_dir:
        The **shared** solve-cache directory.  Point every worker of a
        cluster at the same path (local disk or a shared mount) and the
        single-flight lock guarantees one solve per distinct design
        across all of them; ``None`` keeps a process-private in-memory
        cache (correct, but each worker re-solves).
    max_units:
        Stop after computing this many cells (tests use it to model a
        politely departing worker); ``None`` runs to grid completion.
    batch:
        Units to request per round trip (the coordinator may cap it).

    Returns the worker's final stats dict (the same payload shipped in
    its goodbye).
    """
    if batch is not None and batch < 1:
        raise SpecificationError(f"batch must be >= 1: {batch}")
    stats = WorkerStats()
    cache = SolveCache(cache_dir)
    worker_name = name or f"{os.uname().nodename}-{os.getpid()}"
    framed = connect(host, port, timeout=connect_timeout)
    stop_heartbeat = threading.Event()
    heartbeat: threading.Thread | None = None
    try:
        framed.send(
            {
                "type": "hello",
                "worker": worker_name,
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "cache_dir": (
                    None if cache_dir is None else str(cache_dir)
                ),
            }
        )
        welcome = framed.recv(timeout=connect_timeout)
        if welcome is None:
            raise SpecificationError(
                "coordinator did not answer the hello in time"
            )
        if welcome.get("type") == "error":
            raise SpecificationError(
                f"coordinator rejected worker: {welcome.get('reason')}"
            )
        if welcome.get("type") != "welcome":
            raise SpecificationError(
                f"expected welcome, got {welcome.get('type')!r}"
            )
        lease_seconds = float(welcome.get("lease_seconds") or 15.0)
        ship_telemetry = bool(welcome.get("telemetry"))
        # Heartbeats at a third of the lease budget: two may be lost
        # to scheduling hiccups before the lease is at risk.
        heartbeat = threading.Thread(
            target=_heartbeat_loop,
            args=(framed, lease_seconds / 3.0, stop_heartbeat),
            daemon=True,
        )
        heartbeat.start()

        def serve(tel: Any) -> None:
            want = batch or 8
            while True:
                if max_units is not None:
                    remaining = max_units - stats.cells
                    if remaining <= 0:
                        return
                    want = min(batch or 8, remaining)
                framed.send({"type": "request", "max_units": want})
                message = _await(framed, ("grant", "wait", "done"))
                kind = message.get("type")
                if kind == "done":
                    return
                if kind == "wait":
                    time.sleep(
                        min(float(message.get("delay") or 0.2), 2.0)
                    )
                    continue
                entries = []
                for payload in message.get("units") or ():
                    unit = WorkUnit.from_dict(payload)
                    begin = time.perf_counter()
                    try:
                        with obs.span("sweep.cell", key=unit.key):
                            row = _execute(unit, cache, stats)
                    except ReproError as error:
                        stats.failed += 1
                        entries.append(
                            {
                                "uid": unit.uid,
                                "key": unit.key,
                                "error": f"{type(error).__name__}: "
                                f"{error}",
                            }
                        )
                    else:
                        stats.cells += 1
                        entries.append(
                            {
                                "uid": unit.uid,
                                "key": unit.key,
                                "row": row,
                            }
                        )
                        if on_cell is not None:
                            on_cell(row)
                    stats.busy_seconds += time.perf_counter() - begin
                cache_stats = cache.stats()
                stats.solves = cache_stats["solves"]
                stats.hits = cache_stats["hits"]
                stats.lock_waits = cache_stats["lock_waits"]
                framed.send(
                    {
                        "type": "result",
                        "units": entries,
                        "stats": stats.to_dict(),
                    }
                )
                ack = _await(framed, ("ack",))
                del ack  # at-least-once: the ack itself is the commit

        if ship_telemetry:
            with obs.capture() as tel:
                with tel.span("sweep.dist.worker", worker=worker_name):
                    serve(tel)
            telemetry_payload = tel.to_dict()
        else:
            serve(None)
            telemetry_payload = None

        stop_heartbeat.set()
        goodbye: dict[str, Any] = {
            "type": "goodbye",
            "stats": stats.to_dict(),
        }
        if telemetry_payload is not None:
            goodbye["telemetry"] = telemetry_payload
        try:
            framed.send(goodbye)
        except OSError:  # pragma: no cover - coordinator already gone
            pass
        return stats.to_dict()
    finally:
        stop_heartbeat.set()
        framed.close()


def _await(
    framed: FramedSocket, expected: tuple[str, ...]
) -> dict[str, Any]:
    """The next non-heartbeat message; it must be one of ``expected``.

    ``error`` from the coordinator and EOF both end the worker: there
    is nothing useful a worker can do without its coordinator.
    """
    while True:
        message = framed.recv(timeout=30.0)
        if message is None:
            continue
        kind = message.get("type")
        if kind == "error":
            raise SpecificationError(
                f"coordinator error: {message.get('reason')}"
            )
        if kind in expected:
            return message
        raise SpecificationError(
            f"expected one of {expected}, coordinator sent {kind!r}"
        )
