"""One-call local fan-out: coordinator plus N worker processes.

:func:`run_distributed_sweep` is the batteries-included entry point the
CLI, benchmarks, and tests share: bind a coordinator on a loopback
port, spawn ``workers`` child processes running ``repro sweep work``
against it (real processes through the real CLI - the same code path a
multi-host cluster runs), serve to completion, and reap the children.
The pieces are also exported separately (:func:`spawn_worker`) so tests
can script hostile schedules: kill a worker mid-run, start a
replacement late, run the coordinator with no workers at all.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from typing import Any, Sequence

import repro
from repro.errors import SimulationError, SpecificationError
from repro.sweep.spec import SweepSpec
from repro.sweep.distributed.coordinator import (
    DistributedSweepResult,
    SweepCoordinator,
)


def worker_command(
    address: tuple[str, int],
    *,
    cache_dir: str | Path | None = None,
    name: str | None = None,
    max_units: int | None = None,
    connect_timeout: float | None = None,
) -> list[str]:
    """The ``repro sweep work`` argv for one worker process."""
    host, port = address
    command = [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "work",
        "--connect",
        f"{host}:{port}",
    ]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    if name is not None:
        command += ["--name", name]
    if max_units is not None:
        command += ["--max-units", str(max_units)]
    if connect_timeout is not None:
        command += ["--connect-timeout", str(connect_timeout)]
    return command


def spawn_worker(
    address: tuple[str, int],
    *,
    cache_dir: str | Path | None = None,
    name: str | None = None,
    max_units: int | None = None,
    connect_timeout: float | None = None,
) -> subprocess.Popen:
    """Start one worker subprocess against ``address``.

    The child runs the real CLI (``python -m repro sweep work ...``)
    with ``PYTHONPATH`` pointing at this interpreter's ``repro``, so it
    works from a source checkout without installation.  The returned
    handle is a plain :class:`subprocess.Popen` - tests ``kill()`` it
    to model a crash.
    """
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root
        if not existing
        else os.pathsep.join((package_root, existing))
    )
    return subprocess.Popen(
        worker_command(
            address,
            cache_dir=cache_dir,
            name=name,
            max_units=max_units,
            connect_timeout=connect_timeout,
        ),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_distributed_sweep(
    spec: SweepSpec,
    *,
    workers: int = 2,
    store_path: str | Path | None = None,
    resume: bool = False,
    cache_dir: str | Path | None = None,
    lease_seconds: float = 15.0,
    batch: int = 16,
    keep_rows: bool = True,
    bind: tuple[str, int] = ("127.0.0.1", 0),
    progress: Any = None,
) -> DistributedSweepResult:
    """Run one sweep on a local coordinator + worker-process cluster.

    ``cache_dir=None`` uses a run-scoped temporary directory, so the
    workers still share one solve-cache namespace (each distinct design
    solves exactly once) without littering the filesystem.  Pass a real
    directory to share solves *across* runs too.
    """
    if workers < 1:
        raise SpecificationError(f"workers must be >= 1: {workers}")
    coordinator = SweepCoordinator(
        spec,
        bind=bind,
        store_path=store_path,
        resume=resume,
        lease_seconds=lease_seconds,
        batch=batch,
        keep_rows=keep_rows,
    )
    if progress is not None:
        coordinator.progress = progress
    shared_cache = tempfile.TemporaryDirectory(
        prefix="repro-sweep-cache-"
    ) if cache_dir is None else None
    cache = (
        Path(shared_cache.name) if shared_cache is not None else cache_dir
    )
    children: list[subprocess.Popen] = []
    try:
        # Spawn off-thread so a worker crashing before serve() starts
        # cannot wedge anything; the listener is already bound.
        def launch() -> None:
            for index in range(workers):
                children.append(
                    spawn_worker(
                        coordinator.address,
                        cache_dir=cache,
                        name=f"local-{index}",
                    )
                )

        launcher = threading.Thread(target=launch, daemon=True)
        launcher.start()
        result = coordinator.serve()
        launcher.join(timeout=10.0)
    finally:
        coordinator.close()
        for child in children:
            try:
                child.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait(timeout=10.0)
        if shared_cache is not None:
            shared_cache.cleanup()
    crashed = [
        child.returncode
        for child in children
        if child.returncode not in (0, None)
    ]
    if crashed and coordinator.completed_count < result.cells:
        raise SimulationError(
            f"worker processes exited non-zero ({crashed}) and the "
            f"grid is incomplete"
        )
    return result


def wait_for_workers(
    children: Sequence[subprocess.Popen], timeout: float = 30.0
) -> list[int]:
    """Reap worker subprocesses; returns their exit codes."""
    codes = []
    for child in children:
        try:
            codes.append(child.wait(timeout=timeout))
        except subprocess.TimeoutExpired:
            child.kill()
            codes.append(child.wait(timeout=timeout))
    return codes
