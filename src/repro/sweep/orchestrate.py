"""The sweep orchestrator: expand, memoize, fan out, stream, resume.

:func:`run_sweep` turns a :class:`~repro.sweep.spec.SweepSpec` into a
finished grid:

1. **expand** - the cross-product of axes becomes validated cells;
2. **resume** - cells whose keys are already in the run store are
   skipped (their stored rows are reused verbatim);
3. **memoize** - every distinct
   :meth:`~repro.api.Scenario.design_fingerprint` among the pending
   cells is solved exactly once into the content-addressed
   :class:`~repro.sweep.cache.SolveCache`; every other cell injects the
   cached design and pays only its simulation;
4. **fan out** - one shared process pool runs everything: cell
   pipelines *and* the traffic shards of cells with open-loop
   populations (when the pool is wider than the number of cells, each
   cell's population is split into shards the way
   :func:`repro.traffic.simulate.simulate_traffic` would, and the
   merged metrics are bit-identical to a serial run);
5. **stream** - each finished cell is appended to the JSONL run store
   immediately, so a killed sweep resumes where it stopped.

Futures are collected in submission order (the same structural guarantee
as :func:`repro.api.engine.run_scenarios`), so rows come out in cell
order no matter how workers interleave.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.api.engine import BroadcastEngine
from repro.api.scenario import Scenario
from repro.obs import telemetry as obs
from repro.traffic.metrics import TrafficMetrics
from repro.traffic.simulate import TrafficResult, shard_bounds
from repro.sweep.aggregate import render_table, tidy_rows
from repro.sweep.cache import SolveCache
from repro.sweep.spec import SweepCell, SweepSpec
from repro.sweep.store import RunStore


#: Process-local SolveCache instances, one per cache directory.  Pool
#: workers are reused across tasks, so keeping the instance alive keeps
#: its memory tier warm: each worker unpickles a given design once
#: instead of once per task.  Entries are content-addressed, so reuse
#: across sweeps in one process is always safe.
_WORKER_CACHES: dict[str, SolveCache] = {}


def _design_for(
    scenario: Scenario, cache_dir: str | None, use_cache: bool
):
    """Resolve one scenario's design through the (optional) cache."""
    if not use_cache:
        return BroadcastEngine(scenario).design(), False
    key = "" if cache_dir is None else cache_dir
    cache = _WORKER_CACHES.get(key)
    if cache is None:
        cache = _WORKER_CACHES[key] = SolveCache(cache_dir)
    return cache.design_for(scenario)


def _warm_design(
    payload: Mapping[str, Any],
    cache_dir: str | None,
    use_cache: bool,
    telemetry: bool = False,
) -> tuple[bool, dict[str, Any] | None]:
    """Pool task: ensure one design is cached; hit=True when it already
    was.  With ``telemetry`` the worker captures its own registry (solver
    attempts, cache counters) and ships the payload back for the parent
    to merge - the "existing pool plumbing" route for child telemetry."""
    scenario = Scenario.from_dict(payload)
    if not telemetry:
        _, hit = _design_for(scenario, cache_dir, use_cache)
        return hit, None
    with obs.capture() as tel:
        with tel.span("sweep.warm_design"):
            _, hit = _design_for(scenario, cache_dir, use_cache)
    return hit, tel.to_dict()


def _run_cell(
    payload: Mapping[str, Any],
    cache_dir: str | None,
    use_cache: bool,
    include_traffic: bool,
    telemetry: bool = False,
    key: str | None = None,
    queued_at: float | None = None,
) -> tuple[bool, dict[str, Any], float, dict[str, Any] | None]:
    """Pool task: run one cell's pipeline (optionally minus traffic)."""
    begin = time.perf_counter()
    scenario = Scenario.from_dict(payload)
    if not telemetry:
        design, hit = _design_for(scenario, cache_dir, use_cache)
        engine = BroadcastEngine(scenario, design=design)
        result = engine.run(include_traffic=include_traffic)
        return hit, result.to_dict(), time.perf_counter() - begin, None
    with obs.capture() as tel:
        with tel.span("sweep.cell", key=key):
            if queued_at is not None:
                # Queue wait is measured on the shared wall clock
                # (time.time survives the process hop; perf_counter
                # does not) and recorded as a pre-measured child span.
                tel.record_span(
                    "sweep.cell.queue", max(0.0, time.time() - queued_at)
                )
            with tel.span("sweep.cell.solve"):
                design, hit = _design_for(scenario, cache_dir, use_cache)
            engine = BroadcastEngine(scenario, design=design)
            with tel.span("sweep.cell.simulate"):
                result = engine.run(include_traffic=include_traffic)
    return hit, result.to_dict(), time.perf_counter() - begin, tel.to_dict()


def _run_traffic_shard(
    payload: Mapping[str, Any],
    cache_dir: str | None,
    use_cache: bool,
    lo: int,
    hi: int,
    telemetry: bool = False,
) -> tuple[TrafficMetrics, dict[str, Any] | None]:
    """Pool task: one traffic shard of one cell."""
    scenario = Scenario.from_dict(payload)
    if not telemetry:
        design, _ = _design_for(scenario, cache_dir, use_cache)
        shard = BroadcastEngine(scenario, design=design)
        return shard.run_traffic_shard(lo, hi), None
    with obs.capture() as tel:
        with tel.span("sweep.traffic_shard", lo=lo, hi=hi):
            design, _ = _design_for(scenario, cache_dir, use_cache)
            shard = BroadcastEngine(scenario, design=design)
            metrics = shard.run_traffic_shard(lo, hi)
    return metrics, tel.to_dict()


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep run produced.

    ``rows`` holds one run-store row per cell, in cell order, including
    rows reused from a resumed store.  The counters tell the caching
    story: ``distinct_designs`` fingerprints appeared among executed
    cells, ``solves`` of them actually ran the solver this invocation,
    and ``cache_hits`` is ``executed - solves`` - the design fetches the
    cache absorbed - which is identical for serial and pooled runs of
    the same sweep.  (Each row's ``cache_hit`` flag is observational:
    the pool's warm wave solves before any cell runs, so there every
    cell observes a hit, while serially the first cell per design
    reports the miss.)
    """

    spec: SweepSpec
    rows: tuple[dict[str, Any], ...]
    cells: int
    executed: int
    resumed: int
    distinct_designs: int
    solves: int
    cache_hits: int
    workers: int
    elapsed: float
    store_path: str | None = None
    cache_dir: str | None = None
    #: Resumed runs say *why* each non-reused cell re-ran instead of
    #: silently re-executing: the stored row's scenario payload no
    #: longer matched (its design fingerprint drifted - e.g. the base
    #: scenario changed in a field no axis covers) ...
    rerun_drift: int = 0
    #: ... or the cell's key was not in the store at all (a new or
    #: never-finished cell).  Both are zero on non-resumed runs.
    rerun_missing: int = 0

    def records(self) -> list[dict[str, Any]]:
        """Tidy per-cell records (see :mod:`repro.sweep.aggregate`)."""
        return tidy_rows(self.rows)

    def table(self) -> str:
        """An aligned plain-text table of the tidy records."""
        return render_table(self.records())

    def summary(self) -> dict[str, Any]:
        """The headline counters as one JSON-able dict."""
        return {
            "sweep": self.spec.name,
            "cells": self.cells,
            "executed": self.executed,
            "resumed": self.resumed,
            "rerun": {
                "fingerprint_drift": self.rerun_drift,
                "missing_key": self.rerun_missing,
            },
            "distinct_designs": self.distinct_designs,
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "workers": self.workers,
            "elapsed": round(self.elapsed, 3),
            "store": self.store_path,
            "cache_dir": self.cache_dir,
        }

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able record: summary plus tidy records.

        The full deep rows live in the run store; re-serializing them
        here would dwarf the useful signal.
        """
        return {"summary": self.summary(), "records": self.records()}


def _row(
    cell: SweepCell,
    fingerprint: str,
    cache_hit: bool,
    elapsed: float,
    result: dict[str, Any],
) -> dict[str, Any]:
    return {
        "key": cell.key,
        "index": cell.index,
        "overrides": [list(pair) for pair in cell.overrides],
        "fingerprint": fingerprint,
        "cache_hit": cache_hit,
        "elapsed": round(elapsed, 6),
        "result": result,
    }


def _traffic_shards(
    cell: SweepCell, workers: int, pending: int, use_cache: bool
) -> int:
    """How many shards this cell's traffic population gets.

    Cell-level parallelism saturates the pool when there are at least as
    many pending cells as workers; only the leftover width is spent
    splitting populations.  With the solve-cache disabled every shard
    task would re-solve the cell's design from scratch, so populations
    stay unsharded there - the control arm means one solve per cell.
    """
    spec = cell.scenario.traffic
    if spec is None or not use_cache:
        return 1
    return max(1, min(spec.clients, workers // max(1, pending)))


def run_sweep(
    spec: SweepSpec,
    *,
    max_workers: int | None = None,
    store_path: str | Path | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
    resume: bool = False,
) -> SweepResult:
    """Run every cell of a sweep; return rows, counters, and tables.

    Parameters
    ----------
    spec:
        The sweep specification (or grid) to run.
    max_workers:
        ``None`` or ``1`` runs serially in-process; a larger value runs
        cells and traffic shards on one shared process pool of that
        size.  Results are bit-identical either way.
    store_path:
        JSONL run-store path.  ``None`` keeps rows in memory only
        (``resume`` then has nothing to read and is rejected).  A
        fresh run over a populated store renames it to ``<name>.bak``
        first (one generation) rather than deleting finished rows.
    cache_dir:
        Directory for the persistent solve-cache tier.  ``None`` with a
        process pool uses a run-scoped temporary directory (still only
        one solve per distinct design *within* the run); ``None``
        serially uses the in-memory tier.
    use_cache:
        ``False`` disables design memoization entirely - every cell
        pays the solver.  (The benchmark's control arm.)
    resume:
        Skip cells whose keys are already in the run store; their
        stored rows are returned as-is.
    """
    if not isinstance(spec, SweepSpec):
        raise SpecificationError(
            f"run_sweep expects a SweepSpec, got {type(spec).__name__}"
        )
    if max_workers is not None:
        if not isinstance(max_workers, int) or isinstance(max_workers, bool):
            raise SpecificationError(
                f"max_workers must be a positive integer, got "
                f"{type(max_workers).__name__}: {max_workers!r}"
            )
        if max_workers < 1:
            raise SpecificationError(
                f"max_workers must be >= 1: {max_workers}"
            )
    if resume and store_path is None:
        raise SpecificationError(
            "resume requires a run store (store_path)"
        )

    begin = time.perf_counter()
    cells = spec.cells()
    fingerprints = {
        cell.key: cell.scenario.design_fingerprint() for cell in cells
    }

    store = None if store_path is None else RunStore(store_path)
    rows_by_key: dict[str, dict[str, Any]] = {}
    rerun_drift = 0
    rerun_missing = 0
    if store is not None:
        if resume:
            # A row is reusable only if it was produced by the *same*
            # concrete scenario - matching on the cell key alone would
            # silently resurrect stale rows after the spec's base
            # scenario changed in a field no axis covers.  Scenarios
            # are compared in JSON-normalized form (the store holds
            # pure JSON types).
            by_key = {cell.key: cell for cell in cells}
            expected = {
                cell.key: json.loads(json.dumps(cell.scenario.to_dict()))
                for cell in cells
            }
            drift_keys: set[str] = set()
            for row in store.rows():
                key = row.get("key")
                if key not in expected:
                    continue
                stored = (row.get("result") or {}).get("scenario")
                if stored != expected[key]:
                    # Stale: the stored row was produced by a different
                    # concrete scenario (so its fingerprint drifted);
                    # the cell re-runs, and the summary says why.
                    drift_keys.add(key)
                    continue
                # The key pins the axis values but not the position -
                # the grid may have gained cells since the row was
                # written, so the positional index is rewritten from
                # the current expansion.
                rows_by_key[key] = {**row, "index": by_key[key].index}
            # A later matching row rescues a key an older stale row
            # would have flagged (duplicate keys: last good row wins).
            drift_keys -= set(rows_by_key)
            rerun_drift = len(drift_keys)
            rerun_missing = (
                len(expected) - len(rows_by_key) - rerun_drift
            )
        else:
            # A fresh (non-resume) run over a populated store keeps one
            # .bak generation instead of silently destroying finished
            # rows - the forgot---resume foot-gun.
            store.backup_and_clear()
    resumed = len(rows_by_key)
    pending = [cell for cell in cells if cell.key not in rows_by_key]

    # The pool is NOT clamped to the cell count: leftover width beyond
    # one-worker-per-cell is spent splitting traffic populations into
    # shards (see _traffic_shards).
    workers = 1 if max_workers is None or not pending else max_workers
    temp_cache = None
    if use_cache and cache_dir is None and workers > 1:
        # The persistent tier is what crosses process boundaries; give
        # pool runs one scoped to this invocation when none was named.
        temp_cache = tempfile.mkdtemp(prefix="repro-solve-cache-")
        cache_dir = temp_cache
    cache_dir_str = None if cache_dir is None else str(cache_dir)

    tel = obs.current()
    busy_seconds = 0.0
    solves = 0
    try:
        if workers == 1:
            cache = SolveCache(cache_dir_str) if use_cache else None
            for cell in pending:
                cell_begin = time.perf_counter()
                with obs.span("sweep.cell", key=cell.key):
                    with obs.span("sweep.cell.solve"):
                        if cache is None:
                            design, hit = (
                                BroadcastEngine(cell.scenario).design(),
                                False,
                            )
                            solves += 1
                        else:
                            design, hit = cache.design_for(cell.scenario)
                    engine = BroadcastEngine(cell.scenario, design=design)
                    with obs.span("sweep.cell.simulate"):
                        result = engine.run()
                    row = _row(
                        cell,
                        fingerprints[cell.key],
                        hit,
                        time.perf_counter() - cell_begin,
                        result.to_dict(),
                    )
                    if store is not None:
                        with obs.span("sweep.cell.store"):
                            store.append(row)
                rows_by_key[cell.key] = row
                busy_seconds += time.perf_counter() - cell_begin
            if cache is not None:
                solves = cache.solves
        elif pending:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=workers) as pool:
                if use_cache:
                    # Wave 0: solve each distinct design exactly once,
                    # in parallel, before any cell needs it.
                    distinct: dict[str, dict[str, Any]] = {}
                    for cell in pending:
                        distinct.setdefault(
                            fingerprints[cell.key],
                            cell.scenario.to_dict(),
                        )
                    warm = [
                        pool.submit(
                            _warm_design, payload, cache_dir_str, True,
                            tel is not None,
                        )
                        for payload in distinct.values()
                    ]
                    for future in warm:
                        warm_hit, warm_tel = future.result()
                        if not warm_hit:
                            solves += 1
                        if tel is not None and warm_tel is not None:
                            tel.merge_dict(warm_tel)
                # Wave 1: cell pipelines plus traffic shards, all on the
                # same pool, futures collected in submission order.
                submitted = []
                for cell in pending:
                    shards = _traffic_shards(
                        cell, workers, len(pending), use_cache
                    )
                    payload = cell.scenario.to_dict()
                    base = pool.submit(
                        _run_cell,
                        payload,
                        cache_dir_str,
                        use_cache,
                        shards == 1,
                        tel is not None,
                        cell.key,
                        time.time() if tel is not None else None,
                    )
                    shard_futures = []
                    if shards > 1:
                        bounds = shard_bounds(
                            cell.scenario.traffic.clients, shards
                        )
                        shard_futures = [
                            pool.submit(
                                _run_traffic_shard,
                                payload,
                                cache_dir_str,
                                use_cache,
                                lo,
                                hi,
                                tel is not None,
                            )
                            for lo, hi in bounds
                        ]
                    # Completion is stamped by done-callbacks, not by
                    # the in-order collection loop: a cell collected
                    # late must not count earlier cells' wall time as
                    # its own.
                    finish: dict[str, float] = {}

                    def _stamp(_future, box=finish) -> None:
                        box["at"] = time.perf_counter()

                    for future in (base, *shard_futures):
                        future.add_done_callback(_stamp)
                    submitted.append(
                        (cell, base, shard_futures, time.perf_counter(),
                         finish)
                    )
                if not use_cache:
                    solves = len(pending)
                for (
                    cell, base, shard_futures, submit_time, finish
                ) in submitted:
                    hit, result, cell_elapsed, cell_tel = base.result()
                    if tel is not None and cell_tel is not None:
                        tel.merge_dict(cell_tel)
                    busy_seconds += cell_elapsed
                    if shard_futures:
                        traffic_spec = cell.scenario.traffic
                        parts = []
                        for future in shard_futures:
                            metrics, shard_tel = future.result()
                            parts.append(metrics)
                            if tel is not None and shard_tel is not None:
                                tel.merge_dict(shard_tel)
                        merged = TrafficMetrics.merged(
                            parts, seed=traffic_spec.seed
                        )
                        # Submission to last-task-completion covers both
                        # phases (they overlap on the pool) without
                        # double-counting, and keeps simulate_traffic's
                        # semantics: wall clock including pool overhead.
                        traffic_elapsed = (
                            finish.get("at", time.perf_counter())
                            - submit_time
                        )
                        result["traffic"] = TrafficResult(
                            spec=traffic_spec,
                            metrics=merged,
                            elapsed=traffic_elapsed,
                            workers=len(shard_futures),
                            temporal=cell.scenario.temporal is not None,
                        ).to_dict()
                        cell_elapsed = traffic_elapsed
                    row = _row(
                        cell,
                        fingerprints[cell.key],
                        hit,
                        cell_elapsed,
                        result,
                    )
                    if store is not None:
                        with obs.span("sweep.cell.store", key=cell.key):
                            store.append(row)
                    rows_by_key[cell.key] = row
    finally:
        if temp_cache is not None:
            shutil.rmtree(temp_cache, ignore_errors=True)

    elapsed = time.perf_counter() - begin
    if tel is not None:
        tel.inc("sweep.cells.executed", len(pending))
        tel.inc("sweep.cells.resumed", resumed)
        tel.gauge("sweep.workers", workers)
        if elapsed > 0:
            tel.gauge("sweep.rows_per_sec", len(pending) / elapsed)
            tel.gauge(
                "sweep.worker_utilization",
                min(1.0, busy_seconds / (workers * elapsed)),
            )

    return SweepResult(
        spec=spec,
        rows=tuple(rows_by_key[cell.key] for cell in cells),
        cells=len(cells),
        executed=len(pending),
        resumed=resumed,
        distinct_designs=len(
            {fingerprints[cell.key] for cell in pending}
        ),
        solves=solves,
        cache_hits=max(0, len(pending) - solves),
        workers=workers,
        elapsed=elapsed,
        store_path=None if store is None else str(store.path),
        cache_dir=None if temp_cache is not None else cache_dir_str,
        rerun_drift=rerun_drift,
        rerun_missing=rerun_missing,
    )
