"""The resumable JSONL run store.

Every completed sweep cell is appended to the store as one JSON line and
flushed to disk immediately, so a killed sweep keeps everything it
finished.  Re-invoking with ``resume=True`` reads the store back, skips
every cell whose ``key`` is already present, and appends only the rest -
the store converges to one row per cell no matter how many times the
sweep is interrupted.

Robustness over a kill mid-append: a torn *final* line (the only kind a
crash can produce, since rows are appended serially) is ignored on read;
a malformed line anywhere else means the file is not a run store and
raises :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.errors import SimulationError
from repro.obs import telemetry as obs

try:  # POSIX only; the store degrades to lock-free appends elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


class RunStore:
    """Append-only JSONL storage for sweep rows."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """Where the rows live."""
        return self._path

    def exists(self) -> bool:
        """Whether the store file is present."""
        return self._path.exists()

    def clear(self) -> None:
        """Delete the store file (a fresh, non-resumed run starts here)."""
        try:
            self._path.unlink()
        except FileNotFoundError:
            pass

    def backup_and_clear(self) -> Path | None:
        """Move a populated store aside before a fresh run overwrites it.

        Forgetting ``--resume`` after a killed 10-hour sweep must not
        silently destroy 90 finished rows, so a non-empty store is
        renamed to ``<name>.bak`` (one generation kept) rather than
        unlinked; an empty or absent store is simply cleared.  Returns
        the backup path when one was made.
        """
        try:
            if self._path.stat().st_size > 0:
                backup = self._path.with_name(self._path.name + ".bak")
                os.replace(self._path, backup)
                return backup
        except FileNotFoundError:
            return None
        self.clear()
        return None

    @contextmanager
    def _locked_handle(self) -> Iterator[Any]:
        """The store file, opened for appending, under an advisory lock.

        ``fcntl.flock`` (exclusive) serializes whole append batches, so
        multiple *processes* can safely share one store - the
        distributed sweep coordinator and any local writers interleave
        at row granularity, never mid-line.  The lock is advisory: only
        cooperating ``RunStore`` instances honor it, which is exactly
        the contract the sweep stack needs.  On platforms without
        ``fcntl`` the store degrades to the historical lock-free
        behavior (single-writer).
        """
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._path, "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield handle
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _heal_torn_tail(self, handle: Any) -> None:
        """Truncate a torn final line before appending after it.

        Rows contain no embedded newlines, so a file whose last byte is
        not ``\\n`` ends in a killed append; leaving it would strand
        malformed JSON *mid*-file once a new row lands after it.  The
        check is one seek per append; the rewrite happens only in the
        recovery case.  Discarding data - even a torn row the sweep will
        legitimately redo - is never silent: it warns with the byte
        offset and counts in telemetry.  ``handle`` is the already
        locked append handle, so heal-then-write is one critical
        section.
        """
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        keep = handle.read().rfind(b"\n") + 1
        handle.truncate(keep)
        self._report_torn(keep, size, healed=True)

    def _report_torn(self, offset: int, size: int, *, healed: bool) -> None:
        action = "truncated" if healed else "ignored"
        warnings.warn(
            f"{self._path}: torn final run-store line {action} "
            f"(bytes {offset}..{size} of {size}); the interrupted cell "
            f"will be re-run",
            RuntimeWarning,
            stacklevel=3,
        )
        obs.inc(
            "sweep.store.torn_lines",
            healed=str(healed).lower(),
        )

    def append(self, row: dict[str, Any]) -> None:
        """Append one row and force it to disk.

        The flush + fsync per row is deliberate: rows are coarse (one
        per completed cell), and durability is the point of the store.
        A torn final line left by a killed append is truncated first,
        and the whole heal-then-write runs under an exclusive advisory
        file lock so concurrent local writers never tear or lose rows.
        """
        self.append_many((row,))

    def append_many(self, rows: Sequence[dict[str, Any]]) -> None:
        """Append a batch of rows with one lock + one fsync (group
        commit).

        The distributed coordinator streams result batches from many
        workers; paying one fsync per batch instead of one per row is
        what keeps the store off the critical path at 10^5-cell scale
        while every *completed* batch stays exactly as durable as a
        single :meth:`append`.  Serialization happens before the lock
        is taken, so a non-JSON row cannot poison the file.
        """
        lines = [
            json.dumps(row, separators=(",", ":"), allow_nan=False)
            for row in rows
        ]
        if not lines:
            return
        data = ("\n".join(lines) + "\n").encode("utf-8")
        with self._locked_handle() as handle:
            self._heal_torn_tail(handle)
            # The handle is in append mode: the write lands at EOF even
            # after a heal truncated the tail.
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def rows(self) -> list[dict[str, Any]]:
        """All stored rows, in append order (empty if no file yet).

        A final line without its terminating newline is treated as torn
        even when it happens to parse - the append-side healer will
        truncate it, and counting a row the next write deletes would
        let a resumed sweep skip a cell whose record is about to
        vanish.  Reader and healer agree: unterminated means torn.
        Rows are written as single ``line + newline`` writes, so a kill
        can never leave a *terminated* malformed line - that means
        external corruption, and it raises rather than being silently
        skipped (and then stranded mid-file by the next append).
        """
        try:
            text = self._path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        rows: list[dict[str, Any]] = []
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            lines = lines[:-1]
            data = text.encode("utf-8")
            self._report_torn(data.rfind(b"\n") + 1, len(data), healed=False)
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise SimulationError(
                    f"{self._path}:{number}: malformed run-store line: "
                    f"{error}"
                ) from error
            if not isinstance(row, dict):
                raise SimulationError(
                    f"{self._path}:{number}: run-store rows must be "
                    f"objects, got {type(row).__name__}"
                )
            rows.append(row)
        return rows

    def completed_keys(self) -> set[str]:
        """The cell keys already present in the store (inspection aid).

        Note that :func:`repro.sweep.orchestrate.run_sweep` resumes on
        a *stronger* condition than key presence - it also compares the
        stored scenario payload, so rows left by an older base scenario
        are re-run rather than resurrected.
        """
        return {
            row["key"] for row in self.rows() if isinstance(row.get("key"), str)
        }

    def __repr__(self) -> str:
        return f"RunStore({str(self._path)!r})"
