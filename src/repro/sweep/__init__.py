"""Sweep orchestration: whole parameter studies as one command.

The paper's quantitative results are parameter sweeps - worst-case delay
vs. error count (Figure 7), AIDA width vs. bandwidth overhead (Lemmas
1-2) - and the related fault-tolerance literature evaluates *spaces* of
configurations, not points.  This subpackage makes such studies
one-command cheap:

* :mod:`repro.sweep.spec` - :class:`SweepSpec`: a base
  :class:`~repro.api.Scenario` crossed with axes over any dotted
  scenario field, JSON-round-trippable;
* :mod:`repro.sweep.expand` - dotted-field overrides with eager
  validation of every expanded cell;
* :mod:`repro.sweep.cache` - :class:`SolveCache`: solved broadcast
  programs memoized under canonical design fingerprints, so a grid that
  varies only fault/traffic knobs pays the pinwheel solver once;
* :mod:`repro.sweep.store` - :class:`RunStore`: a resumable JSONL
  stream of finished cells;
* :mod:`repro.sweep.orchestrate` - :func:`run_sweep`: one shared
  process pool over cells and traffic shards, submit-order-stable,
  streaming to the store;
* :mod:`repro.sweep.aggregate` - tidy per-cell records, per-axis
  marginals (batch and streaming), and plain-text tables for
  EXPERIMENTS.md;
* :mod:`repro.sweep.distributed` - the coordinator/worker fan-out
  service: content-addressed work units over a socket protocol,
  crash-safe leases, and a shared solve-cache namespace, scaling one
  sweep across processes or hosts (``repro sweep serve`` /
  ``repro sweep work``).

Quickstart::

    from repro.sweep import SweepAxis, SweepSpec, run_sweep

    sweep = SweepSpec(
        name="fault-grid",
        base=scenario,
        axes=(
            SweepAxis("faults.probability", (0.0, 0.02, 0.05, 0.1)),
            SweepAxis("workload.zipf_skew", (0.0, 0.5, 1.0)),
        ),
    )
    result = run_sweep(
        sweep,
        max_workers=8,
        store_path="fault-grid.runs.jsonl",
        cache_dir="fault-grid.solve-cache",
        resume=True,
    )
    print(result.table())

The CLI equivalent is ``repro sweep spec.json --workers 8 --resume``.
"""

from repro.sweep.spec import SweepAxis, SweepCell, SweepSpec
from repro.sweep.expand import apply_overrides, set_dotted
from repro.sweep.cache import SolveCache
from repro.sweep.store import RunStore
from repro.sweep.aggregate import (
    MarginalAccumulator,
    marginals,
    render_table,
    tidy_row,
    tidy_rows,
)
from repro.sweep.orchestrate import SweepResult, run_sweep
from repro.sweep.distributed import (
    DistributedSweepResult,
    SweepCoordinator,
    run_distributed_sweep,
    run_worker,
)

__all__ = [
    "DistributedSweepResult",
    "MarginalAccumulator",
    "RunStore",
    "SolveCache",
    "SweepAxis",
    "SweepCell",
    "SweepCoordinator",
    "SweepResult",
    "SweepSpec",
    "apply_overrides",
    "marginals",
    "render_table",
    "run_distributed_sweep",
    "run_sweep",
    "run_worker",
    "set_dotted",
    "tidy_row",
    "tidy_rows",
]
