"""The content-addressed schedule solve-cache.

Designing a broadcast program - bandwidth planning plus pinwheel
scheduling plus verification - is the expensive head of every scenario
run, yet a sweep over fault or traffic knobs re-solves the *identical*
pinwheel instance for every cell.  :class:`SolveCache` memoizes solved
:class:`~repro.bdisk.builder.ProgramDesign` records under the scenario's
:meth:`~repro.api.Scenario.design_fingerprint` (a canonical SHA-256 of
the design-relevant inputs - see :mod:`repro.core.fingerprint`), so only
the first scenario per distinct instance pays the solver.

Two tiers:

* an in-process dict, always on - the serial orchestrator path needs
  nothing more;
* an optional *directory* tier with one pickle per fingerprint, written
  atomically (temp file + ``os.replace``) - this is what crosses
  process-pool boundaries and sweep invocations.  Entries are
  content-addressed, so concurrent writers racing on a cold cache are
  harmless: they write identical bytes and the last rename wins.

Unreadable or torn entries are treated as misses and rewritten.

The disk tier is also a **cross-process single-flight**: a miss takes an
``O_CREAT | O_EXCL`` lockfile (``<fingerprint>.lock``, holding the
owner's pid) around the solve-and-put, and every other process that
misses the same fingerprint *waits for the entry* instead of re-running
the solver.  With N sweep workers sharing one cache directory, each
distinct design therefore solves exactly once cluster-wide; the waiters
come back with a disk hit and a bumped ``lock_waits`` counter.  A lock
whose owner died mid-solve is broken (the pid is probed), so a killed
worker never wedges the rest of the fleet.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path

from repro.errors import SpecificationError
from repro.api.engine import BroadcastEngine
from repro.api.scenario import Scenario
from repro.bdisk.builder import ProgramDesign
from repro.bdisk.multichannel import MultiChannelDesign
from repro.obs import telemetry as obs


class SolveCache:
    """Memoized broadcast-program designs, keyed by content fingerprint.

    ``directory=None`` keeps the cache purely in-memory (one process);
    a directory adds the persistent, process-shared tier.  ``hits`` /
    ``misses`` / ``solves`` count this instance's traffic only.
    """

    #: How often a single-flight waiter polls for the winner's entry.
    LOCK_POLL_SECONDS = 0.01
    #: Give up waiting on a (live) lock holder after this long and
    #: solve anyway - a safety valve, not an expected path.
    LOCK_WAIT_TIMEOUT = 600.0

    def __init__(self, directory: str | Path | None = None) -> None:
        self._directory = None if directory is None else Path(directory)
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, ProgramDesign | MultiChannelDesign] = {}
        self.hits = 0
        self.misses = 0
        self.solves = 0
        self.lock_waits = 0

    @property
    def directory(self) -> Path | None:
        """The persistent tier's directory (``None`` when memory-only)."""
        return self._directory

    def _path(self, fingerprint: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{fingerprint}.pkl"

    def _read_disk(
        self, fingerprint: str
    ) -> ProgramDesign | MultiChannelDesign | None:
        """Load one disk-tier entry without touching any counter."""
        if self._directory is None:
            return None
        try:
            with open(self._path(fingerprint), "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, ValueError,
                AttributeError):
            # Absent, torn, or stale-format entry: a miss either way.
            return None

    def get(
        self, fingerprint: str
    ) -> ProgramDesign | MultiChannelDesign | None:
        """The cached design for ``fingerprint``, or ``None``."""
        tier = "memory"
        design = self._memory.get(fingerprint)
        if design is None and self._directory is not None:
            tier = "disk"
            design = self._read_disk(fingerprint)
            if design is not None:
                self._memory[fingerprint] = design
        tel = obs.current()
        if design is None:
            self.misses += 1
            if tel is not None:
                tel.inc("solve_cache.misses", stability="shape")
        else:
            self.hits += 1
            if tel is not None:
                tel.inc("solve_cache.hits", stability="shape", tier=tier)
        return design

    def put(
        self, fingerprint: str, design: ProgramDesign | MultiChannelDesign
    ) -> None:
        """Store ``design`` under ``fingerprint`` (atomic on disk)."""
        if not isinstance(design, (ProgramDesign, MultiChannelDesign)):
            raise SpecificationError(
                f"SolveCache stores ProgramDesign or MultiChannelDesign "
                f"records, got {type(design).__name__}"
            )
        self._memory[fingerprint] = design
        if self._directory is None:
            return
        target = self._path(fingerprint)
        scratch = target.with_suffix(f".tmp-{os.getpid()}")
        with open(scratch, "wb") as handle:
            pickle.dump(design, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(scratch, target)

    def _lock_path(self, fingerprint: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{fingerprint}.lock"

    @staticmethod
    def _lock_owner_dead(lock: Path) -> bool:
        """Whether the single-flight lock's owner is provably gone.

        The lockfile holds the owner's pid; a pid that no longer exists
        means the owner was killed mid-solve and the lock must be
        broken.  An unreadable or not-yet-written pid is treated as
        alive - breaking a lock wrongly would double-solve, while
        waiting a poll longer costs 10ms.
        """
        try:
            text = lock.read_text(encoding="utf-8").strip()
            pid = int(text)
        except (OSError, ValueError):
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except (OSError, OverflowError):
            return False
        return False

    def _acquire_single_flight(self, fingerprint: str) -> bool:
        """Try to become the one process that solves ``fingerprint``.

        Returns ``True`` with the lockfile held (the caller must solve,
        :meth:`put`, then :meth:`_release_single_flight`); ``False``
        when another live process holds it.
        """
        lock = self._lock_path(fingerprint)
        try:
            fd = os.open(
                lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            if self._lock_owner_dead(lock):
                # A killed owner never publishes its entry; break the
                # lock and race for it again.
                try:
                    lock.unlink()
                except FileNotFoundError:
                    pass
                return self._acquire_single_flight(fingerprint)
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        return True

    def _release_single_flight(self, fingerprint: str) -> None:
        try:
            self._lock_path(fingerprint).unlink()
        except FileNotFoundError:  # pragma: no cover - belt and braces
            pass

    def design_for(
        self, scenario: Scenario
    ) -> tuple[ProgramDesign | MultiChannelDesign, bool]:
        """The scenario's design, solving (and caching) on a miss.

        Returns ``(design, cache_hit)``.  The fingerprint covers exactly
        the inputs the designer consumes, so a hit is always safe to
        inject into :class:`~repro.api.engine.BroadcastEngine`.

        With a disk tier, the miss path is single-flight *across
        processes*: the first process to take ``<fingerprint>.lock``
        solves and publishes the entry; every other process misses into
        a wait loop (counted once per episode in ``lock_waits``) and
        returns the winner's entry as a disk hit.  Every distinct
        design therefore solves exactly once per shared cache
        directory, no matter how many workers race it.
        """
        fingerprint = scenario.design_fingerprint()
        design = self.get(fingerprint)
        if design is not None:
            return design, True
        if self._directory is None:
            return self._solve_and_put(scenario, fingerprint), False
        deadline = time.monotonic() + self.LOCK_WAIT_TIMEOUT
        waited = False
        while True:
            if self._acquire_single_flight(fingerprint):
                try:
                    # The winner may have published between our miss
                    # and the lock: re-check before paying the solver.
                    design = self._read_disk(fingerprint)
                    if design is not None:
                        self._memory[fingerprint] = design
                        self.hits += 1
                        obs.inc(
                            "solve_cache.hits", stability="shape",
                            tier="disk",
                        )
                        return design, True
                    return (
                        self._solve_and_put(scenario, fingerprint),
                        False,
                    )
                finally:
                    self._release_single_flight(fingerprint)
            if not waited:
                waited = True
                self.lock_waits += 1
                obs.inc("solve_cache.lock_waits", stability="shape")
            if time.monotonic() >= deadline:
                # Safety valve: a live-but-wedged owner must not hang
                # the fleet forever.  Solve without the lock; the put
                # is content-addressed, so a duplicate write is benign.
                return self._solve_and_put(scenario, fingerprint), False
            time.sleep(self.LOCK_POLL_SECONDS)
            design = self._read_disk(fingerprint)
            if design is not None:
                self._memory[fingerprint] = design
                self.hits += 1
                obs.inc(
                    "solve_cache.hits", stability="shape", tier="disk"
                )
                return design, True

    def _solve_and_put(
        self, scenario: Scenario, fingerprint: str
    ) -> ProgramDesign | MultiChannelDesign:
        design = BroadcastEngine(scenario).design()
        self.solves += 1
        obs.inc("solve_cache.solves")
        self.put(fingerprint, design)
        return design

    def stats(self) -> dict[str, int]:
        """This instance's traffic counters as a plain dict.

        Keys: ``hits``, ``misses``, ``solves``, ``lock_waits``,
        ``entries``.  The online broadcast server embeds this in its
        re-solve provenance (so an as-run log can prove a warm start),
        and CI smoke steps assert on it (``solves == 0`` on a warm
        cache) instead of parsing bench output.  ``lock_waits`` counts
        single-flight wait episodes: misses that found another process
        already solving the same fingerprint.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "solves": self.solves,
            "lock_waits": self.lock_waits,
            "entries": len(self),
        }

    def snapshot(self) -> dict[str, int]:
        """The traffic counters alone, cheap enough to take per mutation.

        Unlike :meth:`stats` this never touches the disk tier (no
        ``entries`` glob), so the online server can bracket every
        re-solve with a snapshot/diff pair.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "solves": self.solves,
            "lock_waits": self.lock_waits,
        }

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Counter deltas since ``before`` (a :meth:`snapshot` result).

        The lifetime counters are monotonic, so the delta is exact even
        across :class:`~repro.server.server.BroadcastServer` epochs -
        this is what makes per-mutation cache accounting reset-safe.
        """
        current = self.snapshot()
        return {key: current[key] - before.get(key, 0) for key in current}

    def __len__(self) -> int:
        """Entries visible to this instance (memory tier plus disk)."""
        known = set(self._memory)
        if self._directory is not None:
            known.update(
                path.stem for path in self._directory.glob("*.pkl")
            )
        return len(known)

    def __repr__(self) -> str:
        where = (
            "memory" if self._directory is None else str(self._directory)
        )
        return (
            f"SolveCache({where}, entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, solves={self.solves})"
        )
