"""The content-addressed schedule solve-cache.

Designing a broadcast program - bandwidth planning plus pinwheel
scheduling plus verification - is the expensive head of every scenario
run, yet a sweep over fault or traffic knobs re-solves the *identical*
pinwheel instance for every cell.  :class:`SolveCache` memoizes solved
:class:`~repro.bdisk.builder.ProgramDesign` records under the scenario's
:meth:`~repro.api.Scenario.design_fingerprint` (a canonical SHA-256 of
the design-relevant inputs - see :mod:`repro.core.fingerprint`), so only
the first scenario per distinct instance pays the solver.

Two tiers:

* an in-process dict, always on - the serial orchestrator path needs
  nothing more;
* an optional *directory* tier with one pickle per fingerprint, written
  atomically (temp file + ``os.replace``) - this is what crosses
  process-pool boundaries and sweep invocations.  Entries are
  content-addressed, so concurrent writers racing on a cold cache are
  harmless: they write identical bytes and the last rename wins.

Unreadable or torn entries are treated as misses and rewritten.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.errors import SpecificationError
from repro.api.engine import BroadcastEngine
from repro.api.scenario import Scenario
from repro.bdisk.builder import ProgramDesign
from repro.bdisk.multichannel import MultiChannelDesign
from repro.obs import telemetry as obs


class SolveCache:
    """Memoized broadcast-program designs, keyed by content fingerprint.

    ``directory=None`` keeps the cache purely in-memory (one process);
    a directory adds the persistent, process-shared tier.  ``hits`` /
    ``misses`` / ``solves`` count this instance's traffic only.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._directory = None if directory is None else Path(directory)
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, ProgramDesign | MultiChannelDesign] = {}
        self.hits = 0
        self.misses = 0
        self.solves = 0

    @property
    def directory(self) -> Path | None:
        """The persistent tier's directory (``None`` when memory-only)."""
        return self._directory

    def _path(self, fingerprint: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{fingerprint}.pkl"

    def get(
        self, fingerprint: str
    ) -> ProgramDesign | MultiChannelDesign | None:
        """The cached design for ``fingerprint``, or ``None``."""
        tier = "memory"
        design = self._memory.get(fingerprint)
        if design is None and self._directory is not None:
            tier = "disk"
            try:
                with open(self._path(fingerprint), "rb") as handle:
                    design = pickle.load(handle)
            except (OSError, pickle.PickleError, EOFError, ValueError,
                    AttributeError):
                # Absent, torn, or stale-format entry: a miss either way.
                design = None
            else:
                self._memory[fingerprint] = design
        tel = obs.current()
        if design is None:
            self.misses += 1
            if tel is not None:
                tel.inc("solve_cache.misses", stability="shape")
        else:
            self.hits += 1
            if tel is not None:
                tel.inc("solve_cache.hits", stability="shape", tier=tier)
        return design

    def put(
        self, fingerprint: str, design: ProgramDesign | MultiChannelDesign
    ) -> None:
        """Store ``design`` under ``fingerprint`` (atomic on disk)."""
        if not isinstance(design, (ProgramDesign, MultiChannelDesign)):
            raise SpecificationError(
                f"SolveCache stores ProgramDesign or MultiChannelDesign "
                f"records, got {type(design).__name__}"
            )
        self._memory[fingerprint] = design
        if self._directory is None:
            return
        target = self._path(fingerprint)
        scratch = target.with_suffix(f".tmp-{os.getpid()}")
        with open(scratch, "wb") as handle:
            pickle.dump(design, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(scratch, target)

    def design_for(
        self, scenario: Scenario
    ) -> tuple[ProgramDesign | MultiChannelDesign, bool]:
        """The scenario's design, solving (and caching) on a miss.

        Returns ``(design, cache_hit)``.  The fingerprint covers exactly
        the inputs the designer consumes, so a hit is always safe to
        inject into :class:`~repro.api.engine.BroadcastEngine`.
        """
        fingerprint = scenario.design_fingerprint()
        design = self.get(fingerprint)
        if design is not None:
            return design, True
        design = BroadcastEngine(scenario).design()
        self.solves += 1
        obs.inc("solve_cache.solves")
        self.put(fingerprint, design)
        return design, False

    def stats(self) -> dict[str, int]:
        """This instance's traffic counters as a plain dict.

        Keys: ``hits``, ``misses``, ``solves``, ``entries``.  The online
        broadcast server embeds this in its re-solve provenance (so an
        as-run log can prove a warm start), and CI smoke steps assert on
        it (``solves == 0`` on a warm cache) instead of parsing bench
        output.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "solves": self.solves,
            "entries": len(self),
        }

    def snapshot(self) -> dict[str, int]:
        """The traffic counters alone, cheap enough to take per mutation.

        Unlike :meth:`stats` this never touches the disk tier (no
        ``entries`` glob), so the online server can bracket every
        re-solve with a snapshot/diff pair.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "solves": self.solves,
        }

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Counter deltas since ``before`` (a :meth:`snapshot` result).

        The lifetime counters are monotonic, so the delta is exact even
        across :class:`~repro.server.server.BroadcastServer` epochs -
        this is what makes per-mutation cache accounting reset-safe.
        """
        current = self.snapshot()
        return {key: current[key] - before.get(key, 0) for key in current}

    def __len__(self) -> int:
        """Entries visible to this instance (memory tier plus disk)."""
        known = set(self._memory)
        if self._directory is not None:
            known.update(
                path.stem for path in self._directory.glob("*.pkl")
            )
        return len(known)

    def __repr__(self) -> str:
        where = (
            "memory" if self._directory is None else str(self._directory)
        )
        return (
            f"SolveCache({where}, entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, solves={self.solves})"
        )
