"""Tidy aggregation of sweep rows.

A run store holds one deep JSON row per cell (the full
:meth:`~repro.api.engine.ScenarioResult.to_dict` record).  Analysis
wants the opposite shape: flat, *tidy* records - one dict per cell, one
column per axis value or headline metric - ready for a table in
EXPERIMENTS.md or a dataframe.  This module produces them:

* :func:`tidy_rows` - flatten rows into tidy records (axis columns plus
  design / simulation / traffic / delay metrics);
* :func:`marginals` - collapse a tidy table along one axis (mean over
  the other axes), the "delay vs. error count" view of Figure 7;
* :func:`render_table` - an aligned plain-text table of any record
  list.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SpecificationError

#: Metric columns in display order (tables show the ones present).
METRIC_COLUMNS = (
    "bandwidth",
    "density",
    "method",
    "bandwidth_overhead",
    "sim_miss_rate",
    "sim_p50",
    "sim_p95",
    "sim_p99",
    "sim_bounded",
    "traffic_miss_rate",
    "traffic_abort_rate",
    "traffic_deadline_miss",
    "traffic_consistency",
    "traffic_mean_age",
    "traffic_p50",
    "traffic_p95",
    "traffic_p99",
    "channels_k",
    "channel_util_max",
    "channel_switches",
    "quorum_ok_rate",
    "quorum_mean_latency",
    "worst_delay",
    "cache_hit",
    "elapsed",
)


def _necessary_bandwidth(scenario: Mapping[str, Any]) -> float | None:
    """The trivial lower bound ``sum (m_i + r_i) / T_i``, from a payload.

    ``None`` for generalized catalogues (latencies are already slots -
    there is no bandwidth to compare against).
    """
    files = scenario.get("files") or []
    if any("latency_vector" in entry for entry in files):
        return None
    redundancy = scenario.get("redundancy")
    mode = scenario.get("mode")

    def budget(entry: Mapping[str, Any]) -> int:
        if redundancy is not None and mode is not None:
            budgets = redundancy.get("budgets", {}).get(mode, {})
            return budgets.get(entry["name"], redundancy.get("default", 0))
        return entry.get("fault_budget", 0)

    try:
        return sum(
            (entry["blocks"] + budget(entry)) / entry["latency"]
            for entry in files
        )
    except (KeyError, TypeError, ZeroDivisionError):
        return None


def tidy_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """Flatten one run-store row into a tidy record."""
    record: dict[str, Any] = {"cell": row.get("index")}
    for field, value in row.get("overrides") or ():
        record[field] = value
    result = row.get("result") or {}
    stats = result.get("stats") or {}
    record["bandwidth"] = stats.get("bandwidth")
    record["density"] = stats.get("density")
    record["method"] = stats.get("method")
    necessary = _necessary_bandwidth(result.get("scenario") or {})
    bandwidth = stats.get("bandwidth")
    record["bandwidth_overhead"] = (
        (bandwidth - necessary) / necessary
        if bandwidth is not None and necessary
        else None
    )
    channels = stats.get("channels")
    if channels:
        record["channels_k"] = len(channels)
        utilizations = [
            entry.get("utilization")
            for entry in channels
            if entry.get("utilization") is not None
        ]
        if utilizations:
            record["channel_util_max"] = max(utilizations)
    simulation = result.get("simulation")
    if simulation is not None:
        latency = simulation.get("latency") or {}
        record["sim_miss_rate"] = simulation.get("deadline_miss_rate")
        record["sim_p50"] = latency.get("p50")
        record["sim_p95"] = latency.get("p95")
        record["sim_p99"] = latency.get("p99")
        record["sim_bounded"] = latency.get("bounded")
    traffic = result.get("traffic")
    if traffic is not None:
        latency = traffic.get("latency") or {}
        record["traffic_miss_rate"] = traffic.get("miss_rate")
        record["traffic_abort_rate"] = traffic.get("abort_rate")
        record["traffic_deadline_miss"] = traffic.get("deadline_miss_rate")
        record["traffic_p50"] = latency.get("p50")
        record["traffic_p95"] = latency.get("p95")
        record["traffic_p99"] = latency.get("p99")
        temporal = traffic.get("temporal")
        if temporal is not None:
            record["traffic_consistency"] = temporal.get(
                "consistency_rate"
            )
            record["traffic_mean_age"] = (temporal.get("age") or {}).get(
                "mean"
            )
        channel_block = traffic.get("channels")
        if channel_block is not None:
            record["channel_switches"] = channel_block.get("switches")
            quorum = channel_block.get("quorum")
            if quorum is not None:
                record["quorum_ok_rate"] = quorum.get("success_rate")
                record["quorum_mean_latency"] = (
                    quorum.get("latency") or {}
                ).get("mean")
    delay_table = result.get("delay_table") or []
    if delay_table:
        record["worst_delay"] = max(
            entry.get("delay", 0) for entry in delay_table
        )
    record["cache_hit"] = row.get("cache_hit")
    record["elapsed"] = row.get("elapsed")
    return record


def tidy_rows(rows: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Flatten run-store rows into tidy records, preserving order."""
    return [tidy_row(row) for row in rows]


def marginals(
    records: Sequence[Mapping[str, Any]],
    field: str,
    metrics: Sequence[str],
) -> list[dict[str, Any]]:
    """Collapse a tidy table along one axis.

    Groups ``records`` by their ``field`` value and reports the group
    size plus the mean of each requested metric (ignoring cells where
    the metric is absent, ``None``, or non-numeric - e.g. unbounded
    rows).  Output is sorted by the axis value; this is the per-axis
    view figures plot (delay vs. error count, miss rate vs. load).
    """
    if not metrics:
        raise SpecificationError("at least one metric is required")
    def sort_key(value: Any) -> tuple:
        # Numbers sort numerically, everything else lexically, None last.
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (0, value, "")
        if value is None:
            return (2, 0, "")
        return (1, 0, str(value))

    # Group under a canonical token so unhashable axis values (e.g. a
    # scheduler-policy list) group correctly too.
    groups: dict[str, tuple[Any, list[Mapping[str, Any]]]] = {}
    for record in records:
        value = record.get(field)
        token = json.dumps(value, sort_keys=True, default=str)
        groups.setdefault(token, (value, []))[1].append(record)
    out = []
    for value, members in sorted(
        groups.values(), key=lambda pair: sort_key(pair[0])
    ):
        summary: dict[str, Any] = {field: value, "cells": len(members)}
        for metric in metrics:
            numbers = [
                member[metric]
                for member in members
                if isinstance(member.get(metric), (int, float))
                and not isinstance(member.get(metric), bool)
            ]
            summary[f"mean_{metric}"] = (
                sum(numbers) / len(numbers) if numbers else None
            )
        out.append(summary)
    return out


class MarginalAccumulator:
    """Streaming per-axis marginals: :func:`marginals` one row at a time.

    The distributed coordinator folds every completed row in as it
    lands, so live progress can show "mean miss rate by fault
    probability so far" without re-reading the store - at 10^5 cells,
    re-running :func:`tidy_rows` + :func:`marginals` per update would
    be quadratic.  :meth:`summary` produces, per axis field, exactly
    the record list :func:`marginals` would (same grouping, same sort,
    same ``mean_*`` semantics - pinned by tests), because both reduce
    to the same (sum, count) pairs.
    """

    def __init__(
        self, fields: Sequence[str], metrics: Sequence[str]
    ) -> None:
        if not metrics:
            raise SpecificationError("at least one metric is required")
        self._fields = tuple(fields)
        self._metrics = tuple(metrics)
        self.rows = 0
        # field -> token -> (value, cells, {metric: (sum, count)})
        self._groups: dict[
            str, dict[str, tuple[Any, int, dict[str, tuple[float, int]]]]
        ] = {field: {} for field in fields}

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Fold one raw run-store row in (tidied internally)."""
        self.add_record(tidy_row(row))

    def add_record(self, record: Mapping[str, Any]) -> None:
        """Fold one already-tidy record in."""
        self.rows += 1
        for field in self._fields:
            value = record.get(field)
            token = json.dumps(value, sort_keys=True, default=str)
            groups = self._groups[field]
            stored = groups.get(token)
            if stored is None:
                stored = (value, 0, {})
            value, cells, sums = stored
            for metric in self._metrics:
                number = record.get(metric)
                if isinstance(number, (int, float)) and not isinstance(
                    number, bool
                ):
                    total, count = sums.get(metric, (0.0, 0))
                    sums[metric] = (total + number, count + 1)
            groups[token] = (value, cells + 1, sums)

    def summary(self) -> dict[str, list[dict[str, Any]]]:
        """Per-field marginal tables over everything folded in so far."""

        def sort_key(value: Any) -> tuple:
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                return (0, value, "")
            if value is None:
                return (2, 0, "")
            return (1, 0, str(value))

        out: dict[str, list[dict[str, Any]]] = {}
        for field, groups in self._groups.items():
            table = []
            for value, cells, sums in sorted(
                groups.values(), key=lambda item: sort_key(item[0])
            ):
                entry: dict[str, Any] = {field: value, "cells": cells}
                for metric in self._metrics:
                    total, count = sums.get(metric, (0.0, 0))
                    entry[f"mean_{metric}"] = (
                        total / count if count else None
                    )
                table.append(entry)
            out[field] = table
        return out


def _format(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_table(
    records: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """An aligned plain-text table of tidy records.

    ``columns=None`` uses the union of keys over *all* records in
    first-seen order (a metric only later cells populate - e.g.
    ``worst_delay`` when ``delay_errors`` is itself an axis starting at
    ``null`` - still gets its column), dropping columns no record
    populates.
    """
    if not records:
        return "(no rows)"
    if columns is None:
        seen: dict[str, None] = {}
        for record in records:
            for column in record:
                seen.setdefault(column)
        columns = [
            column
            for column in seen
            if any(record.get(column) is not None for record in records)
        ]
    header = list(columns)
    body = [
        [_format(record.get(column)) for column in columns]
        for record in records
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]
    lines = [
        " | ".join(title.rjust(w) for title, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    lines.extend(
        " | ".join(cell.rjust(w) for cell, w in zip(line, widths))
        for line in body
    )
    return "\n".join(lines)
