"""Dotted-field overrides over scenario payloads.

A sweep axis names any scenario field by its dotted JSON path -
``"faults.probability"``, ``"traffic.clients"``, ``"files.0.blocks"``,
``"scheduler_policy"`` - and the expander rewrites the base scenario's
dict form one override at a time.  Overrides go through
:meth:`repro.api.Scenario.from_dict` afterwards, so every expanded cell
is validated eagerly: a typo'd field or an inconsistent value fails at
expansion, before any work is dispatched.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.api.scenario import Scenario


def split_field(field: str) -> list[str]:
    """Split and validate a dotted field path."""
    if not isinstance(field, str) or not field:
        raise SpecificationError(
            f"sweep axis field must be a non-empty dotted path, got "
            f"{field!r}"
        )
    segments = field.split(".")
    if any(not segment for segment in segments):
        raise SpecificationError(
            f"sweep axis field {field!r} has an empty path segment"
        )
    return segments


def set_dotted(payload: dict[str, Any], field: str, value: Any) -> None:
    """Set ``field`` (a dotted path) to ``value`` inside ``payload``.

    Intermediate objects that are absent or ``null`` are created as
    empty dicts (so ``"traffic.clients"`` works on a base scenario
    without a traffic block - the remaining keys take their spec
    defaults).  Numeric segments index into lists (``"files.1.blocks"``)
    and must be in range; anything else along the path that is not a
    container is a :class:`SpecificationError`.
    """
    segments = split_field(field)
    container: Any = payload
    for depth, segment in enumerate(segments[:-1]):
        path = ".".join(segments[: depth + 1])
        if isinstance(container, list):
            container = _list_item(container, segment, path)
            continue
        if not isinstance(container, dict):
            raise SpecificationError(
                f"sweep field {field!r}: {path!r} is not an object "
                f"({type(container).__name__})"
            )
        nested = container.get(segment)
        if nested is None:
            nested = container[segment] = {}
        container = nested
    last = segments[-1]
    if isinstance(container, list):
        index = _list_index(container, last, field)
        container[index] = value
    elif isinstance(container, dict):
        container[last] = value
    else:
        raise SpecificationError(
            f"sweep field {field!r}: cannot set a key on "
            f"{type(container).__name__}"
        )


def _list_index(container: list, segment: str, path: str) -> int:
    if not segment.isdigit():
        raise SpecificationError(
            f"sweep field {path!r}: {segment!r} must be a list index"
        )
    index = int(segment)
    if index >= len(container):
        raise SpecificationError(
            f"sweep field {path!r}: index {index} out of range "
            f"(list has {len(container)} items)"
        )
    return index


def _list_item(container: list, segment: str, path: str) -> Any:
    return container[_list_index(container, segment, path)]


def apply_overrides(
    scenario: Scenario, overrides: Mapping[str, Any]
) -> Scenario:
    """A copy of ``scenario`` with every dotted override applied.

    The scenario round-trips through its dict form, so the result is
    fully re-validated; malformed cells raise
    :class:`~repro.errors.SpecificationError` here.
    """
    payload = scenario.to_dict()
    for field, value in overrides.items():
        set_dotted(payload, field, value)
    return Scenario.from_dict(payload)
