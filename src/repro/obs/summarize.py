"""Human-readable report over an exported telemetry directory.

``repro obs summarize PATH`` renders three sections: merged counters,
gauges, and histograms (with count/mean/max), then the span tree.  The
tree aggregates spans *by name path* - every ``sweep.cell`` span merges
into one node with its ``solve``/``simulate``/``store`` children nested
under it - so a 500-cell sweep reads as a five-line time breakdown, not
five hundred.  Spans whose parents fell out of the bounded ring (or ran
in a pool worker whose root was never exported) surface as roots.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.export import load_directory
from repro.obs.telemetry import Gauge, Histogram, Telemetry

__all__ = ["render_summary", "aggregate_span_tree"]


class _Node:
    __slots__ = ("name", "count", "wall", "cpu", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.children: dict[str, "_Node"] = {}


def aggregate_span_tree(tel: Telemetry) -> _Node:
    """Fold the span ring into a tree keyed by name path.

    Returns the synthetic root; its children are the top-level span
    names in first-seen order.
    """

    spans = list(tel.spans)
    by_id = {span.id: span for span in spans}
    root = _Node("")

    def node_for(span: Any) -> _Node:
        chain = []
        cursor = span
        seen = set()
        while cursor is not None and cursor.id not in seen:
            seen.add(cursor.id)
            chain.append(cursor.name)
            cursor = by_id.get(cursor.parent) if cursor.parent else None
        node = root
        for name in reversed(chain):
            node = node.children.setdefault(name, _Node(name))
        return node

    for span in spans:
        node = node_for(span)
        node.count += 1
        node.wall += span.wall
        node.cpu += span.cpu
    return root


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def render_summary(path: str | os.PathLike[str]) -> str:
    tel = load_directory(path)
    lines: list[str] = [f"telemetry summary: {os.fspath(path)}"]

    counters = []
    gauges = []
    histograms = []
    for name, labels, instrument in tel.instruments():
        if isinstance(instrument, Histogram):
            histograms.append((name, labels, instrument))
        elif isinstance(instrument, Gauge):
            gauges.append((name, labels, instrument))
        else:
            counters.append((name, labels, instrument))

    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(n + _labels_text(l)) for n, l, _ in counters)
        for name, labels, counter in counters:
            key = name + _labels_text(labels)
            lines.append(f"  {key:<{width}}  {counter.value:>12}  [{counter.stability}]")

    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(n + _labels_text(l)) for n, l, _ in gauges)
        for name, labels, cell in gauges:
            key = name + _labels_text(labels)
            lines.append(f"  {key:<{width}}  {cell.value:>12.3f}  [{cell.stability}]")

    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name, labels, hist in histograms:
            key = name + _labels_text(labels)
            unit = f" {hist.unit}" if hist.unit else ""
            lines.append(
                f"  {key}: count={hist.count} mean={hist.mean:.3f}"
                f" min={hist.vmin} max={hist.vmax}{unit}  [{hist.stability}]"
            )

    spans = list(tel.spans)
    lines.append("")
    if not spans:
        lines.append("spans: none recorded")
    else:
        dropped = f" ({tel.spans.dropped} dropped by ring bound)" if tel.spans.dropped else ""
        lines.append(f"spans: {len(spans)} recorded{dropped}")
        lines.append(f"  {'name':<40} {'count':>7} {'wall':>10} {'cpu':>10}")
        root = aggregate_span_tree(tel)

        def emit(node: _Node, depth: int) -> None:
            label = "  " * depth + node.name
            lines.append(
                f"  {label:<40} {node.count:>7} "
                f"{_format_seconds(node.wall):>10} {_format_seconds(node.cpu):>10}"
            )
            for child in node.children.values():
                emit(child, depth + 1)

        for child in root.children.values():
            emit(child, 1)
    return "\n".join(lines)
