"""Structured trace spans: nested wall/CPU timings with a bounded ring.

A :class:`Span` is one timed region of work ("solve", "sweep.cell",
"server.mutation") with free-form attributes.  Spans nest: entering a
span while another is open records the parent's id, so an exported trace
reconstructs the call tree without the exporter knowing anything about
the instrumented code.

Design constraints inherited from the telemetry contract:

* **Monotonic clocks only.**  Durations come from
  :func:`time.perf_counter` (wall) and :func:`time.process_time` (CPU);
  ``begin`` offsets are relative to the owning registry's epoch, never
  to the wall clock, so traces carry no ambient nondeterminism.
* **Bounded memory.**  Completed spans land in a ring
  (:class:`SpanRing`) with a fixed capacity; a runaway loop cannot OOM
  the process through its own instrumentation.  When the ring wraps, the
  *oldest* spans fall out - summaries treat orphaned children as roots.
* **Mergeable.**  Span ids are prefixed with a per-process origin token
  so rings merged across pool workers never collide.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["Span", "SpanRing", "DEFAULT_SPAN_CAPACITY"]

#: Default capacity of the in-memory span ring.  Generous enough for a
#: full sweep-cell trace, small enough to be irrelevant to RSS.
DEFAULT_SPAN_CAPACITY = 4096

_ORIGIN_SEQ = itertools.count()


def _next_origin() -> str:
    """A process-unique origin token for span ids.

    ``pid`` disambiguates pool workers; the per-process counter
    disambiguates multiple registries inside one process.
    """

    return f"{os.getpid():x}.{next(_ORIGIN_SEQ):x}"


class Span:
    """One timed region.  Created open; :meth:`finish` seals it."""

    __slots__ = (
        "id",
        "parent",
        "name",
        "attrs",
        "begin",
        "wall",
        "cpu",
        "_t0",
        "_c0",
    )

    def __init__(
        self,
        span_id: str,
        parent: str | None,
        name: str,
        attrs: dict[str, Any],
        epoch: float,
    ) -> None:
        self.id = span_id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self.begin = self._t0 - epoch
        self.wall = 0.0
        self.cpu = 0.0

    def finish(self) -> None:
        self.wall = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._c0

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "begin": self.begin,
            "wall": self.wall,
            "cpu": self.cpu,
        }
        if self.parent is not None:
            record["parent"] = self.parent
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        span = cls.__new__(cls)
        span.id = str(payload["id"])
        span.parent = payload.get("parent")
        span.name = str(payload["name"])
        span.attrs = dict(payload.get("attrs", {}))
        span.begin = float(payload.get("begin", 0.0))
        span.wall = float(payload.get("wall", 0.0))
        span.cpu = float(payload.get("cpu", 0.0))
        span._t0 = 0.0
        span._c0 = 0.0
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.id!r}, wall={self.wall:.6f}, "
            f"cpu={self.cpu:.6f}, parent={self.parent!r})"
        )


class SpanRing:
    """Bounded store of completed spans plus the open-span stack.

    The stack lives here (not on the registry) so nested ``span()``
    context managers resolve their parent in O(1) without the registry
    knowing about threading of spans at all.
    """

    __slots__ = ("origin", "capacity", "epoch", "_ring", "_stack", "_seq", "_dropped")

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        self.origin = _next_origin()
        self.capacity = int(capacity)
        self.epoch = time.perf_counter()
        self._ring: deque[Span] = deque(maxlen=self.capacity)
        self._stack: list[Span] = []
        self._seq = 0
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._ring)

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound (merge-aware)."""

        return self._dropped

    def open(self, name: str, attrs: dict[str, Any]) -> Span:
        self._seq += 1
        parent = self._stack[-1].id if self._stack else None
        span = Span(f"{self.origin}:{self._seq}", parent, name, attrs, self.epoch)
        self._stack.append(span)
        return span

    def close(self, span: Span) -> None:
        span.finish()
        # Tolerate out-of-order closes (generator-held context managers):
        # drop everything above the closing span instead of corrupting
        # the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._append(span)

    def record(
        self,
        name: str,
        wall: float,
        *,
        cpu: float = 0.0,
        parent: str | None = None,
        begin: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured span (e.g. queue wait)."""

        self._seq += 1
        span = Span.__new__(Span)
        span.id = f"{self.origin}:{self._seq}"
        span.parent = parent if parent is not None else (
            self._stack[-1].id if self._stack else None
        )
        span.name = name
        span.attrs = dict(attrs)
        span.begin = float(begin) if begin is not None else (
            time.perf_counter() - self.epoch - wall
        )
        span.wall = float(wall)
        span.cpu = float(cpu)
        span._t0 = 0.0
        span._c0 = 0.0
        self._append(span)
        return span

    def current_id(self) -> str | None:
        return self._stack[-1].id if self._stack else None

    def extend(self, spans: Iterable[Span | Mapping[str, Any]], dropped: int = 0) -> None:
        """Merge spans from another ring (or an exported payload)."""

        for item in spans:
            span = item if isinstance(item, Span) else Span.from_dict(item)
            self._append(span)
        self._dropped += int(dropped)

    def _append(self, span: Span) -> None:
        if len(self._ring) == self.capacity:
            self._dropped += 1
        self._ring.append(span)

    def to_list(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self._ring]
