"""Exporters: JSON blob, JSONL trace, and Prometheus textfile format.

One captured :class:`Telemetry` registry fans out to three shapes:

* :func:`write_json` / :func:`embed` - the full payload as one JSON
  document, either on disk or embedded under a ``"telemetry"`` key of a
  result record (the ``--json`` CLI path).
* :func:`write_trace_jsonl` - one completed span per line, loadable by
  any trace tooling that speaks JSONL.
* :func:`write_prometheus` - the textfile-collector format: counters as
  ``repro_<name>_total``, histograms as cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``.

:func:`export_directory` writes all three (``telemetry.json``,
``trace.jsonl``, ``metrics.prom``) under one directory - the layout the
``--telemetry PATH`` CLI flag produces and ``repro obs summarize``
consumes.  :func:`load_directory` is the inverse.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Mapping, TextIO

from repro.errors import SpecificationError
from repro.obs.telemetry import Telemetry

__all__ = [
    "embed",
    "write_json",
    "write_trace_jsonl",
    "write_prometheus",
    "prometheus_text",
    "export_directory",
    "load_directory",
    "TELEMETRY_JSON",
    "TRACE_JSONL",
    "METRICS_PROM",
]

TELEMETRY_JSON = "telemetry.json"
TRACE_JSONL = "trace.jsonl"
METRICS_PROM = "metrics.prom"


def embed(tel: Telemetry, record: dict[str, Any]) -> dict[str, Any]:
    """Attach the metric payload (no spans - those go to the trace file)
    to a result record, in place."""

    record["telemetry"] = tel.to_dict(spans=False)
    return record


def write_json(tel: Telemetry, stream: TextIO) -> None:
    json.dump(tel.to_dict(spans=False), stream, indent=2, sort_keys=True)
    stream.write("\n")


def write_trace_jsonl(tel: Telemetry, stream: TextIO) -> None:
    for span in tel.spans:
        stream.write(json.dumps(span.to_dict(), sort_keys=True))
        stream.write("\n")


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    metric = "".join(out)
    if not metric or metric[0].isdigit():
        metric = "_" + metric
    return "repro_" + metric


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str] | list[list[str]], extra: str = "") -> str:
    pairs = list(labels.items()) if isinstance(labels, Mapping) else [tuple(p) for p in labels]
    rendered = [f'{k}="{_escape_label(str(v))}"' for k, v in pairs]
    if extra:
        rendered.append(extra)
    return "{" + ",".join(rendered) + "}" if rendered else ""


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # guard against accidental bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def prometheus_text(tel: Telemetry) -> str:
    """Render the registry in Prometheus textfile-collector format."""

    payload = tel.to_dict(spans=False)
    lines: list[str] = []
    typed: set[str] = set()

    def declare(metric: str, kind: str) -> None:
        if metric not in typed:
            lines.append(f"# TYPE {metric} {kind}")
            typed.add(metric)

    for record in payload["metrics"]:
        base = _sanitize(record["name"])
        labels = record["labels"]
        kind = record["kind"]
        if kind == "counter":
            metric = base + "_total"
            declare(metric, "counter")
            lines.append(f"{metric}{_format_labels(labels)} {_format_value(record['value'])}")
        elif kind == "gauge":
            declare(base, "gauge")
            lines.append(f"{base}{_format_labels(labels)} {_format_value(record['value'])}")
        elif kind == "histogram":
            declare(base, "histogram")
            cumulative = 0
            for bound, n in zip(record["bounds"], record["counts"]):
                cumulative += n
                le = _format_labels(labels, f'le="{_format_value(bound)}"')
                lines.append(f"{base}_bucket{le} {cumulative}")
            cumulative += record["counts"][-1]
            le = _format_labels(labels, 'le="+Inf"')
            lines.append(f"{base}_bucket{le} {cumulative}")
            lines.append(f"{base}_sum{_format_labels(labels)} {_format_value(record['total'])}")
            lines.append(f"{base}_count{_format_labels(labels)} {record['count']}")
        else:  # pragma: no cover - to_dict only emits the three kinds
            raise SpecificationError(f"unknown instrument kind {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(tel: Telemetry, stream: TextIO) -> None:
    stream.write(prometheus_text(tel))


def export_directory(tel: Telemetry, path: str | os.PathLike[str]) -> dict[str, str]:
    """Write ``telemetry.json`` + ``trace.jsonl`` + ``metrics.prom``
    under ``path`` (created if missing).  Returns the file map."""

    os.makedirs(path, exist_ok=True)
    out = {
        "json": os.path.join(path, TELEMETRY_JSON),
        "trace": os.path.join(path, TRACE_JSONL),
        "prometheus": os.path.join(path, METRICS_PROM),
    }
    with open(out["json"], "w", encoding="utf-8") as stream:
        write_json(tel, stream)
    with open(out["trace"], "w", encoding="utf-8") as stream:
        write_trace_jsonl(tel, stream)
    with open(out["prometheus"], "w", encoding="utf-8") as stream:
        write_prometheus(tel, stream)
    return out


def load_directory(path: str | os.PathLike[str]) -> Telemetry:
    """Rebuild a registry from an exported directory (or a bare
    ``telemetry.json`` file path)."""

    if os.path.isfile(path):
        with open(path, encoding="utf-8") as stream:
            return Telemetry.from_dict(json.load(stream))
    json_path = os.path.join(path, TELEMETRY_JSON)
    if not os.path.isfile(json_path):
        raise SpecificationError(
            f"no {TELEMETRY_JSON} under {os.fspath(path)!r}; "
            "expected a directory written by --telemetry"
        )
    with open(json_path, encoding="utf-8") as stream:
        tel = Telemetry.from_dict(json.load(stream))
    trace_path = os.path.join(path, TRACE_JSONL)
    if os.path.isfile(trace_path):
        with open(trace_path, encoding="utf-8") as stream:
            spans = [json.loads(line) for line in stream if line.strip()]
        tel.spans.extend(spans)
    return tel
