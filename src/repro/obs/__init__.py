"""``repro.obs`` - dependency-free telemetry for the whole stack.

Counters, gauges, and fixed-bucket histograms that merge **exactly**
across shards and processes (the :class:`~repro.traffic.metrics.TrafficMetrics`
merge contract), structured trace spans with monotonic wall/CPU timing
and parent/child nesting, and exporters for JSON, JSONL traces, and the
Prometheus textfile format.

Nothing records unless a registry is active::

    from repro import obs

    with obs.capture() as tel:
        result = engine.run()
    print(tel.value("solve_cache.misses"))

Instrumented library code only ever calls :func:`obs.current` /
:func:`obs.span` / :func:`obs.inc`, which cost a single global read when
telemetry is off - the SoA hot path stays at its bench floor.  Telemetry
never touches an RNG and never alters event ordering: results are
bit-identical with telemetry on or off.
"""

from repro.obs.export import (
    embed,
    export_directory,
    load_directory,
    prometheus_text,
    write_json,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.spans import DEFAULT_SPAN_CAPACITY, Span, SpanRing
from repro.obs.summarize import aggregate_span_tree, render_summary
from repro.obs.telemetry import (
    DEFAULT_BOUNDS,
    STABILITIES,
    TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    activate,
    capture,
    current,
    deactivate,
    gauge,
    inc,
    observe,
    span,
)

__all__ = [
    "Telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanRing",
    "STABILITIES",
    "DEFAULT_BOUNDS",
    "TIME_BOUNDS",
    "DEFAULT_SPAN_CAPACITY",
    "current",
    "activate",
    "deactivate",
    "capture",
    "span",
    "inc",
    "observe",
    "gauge",
    "embed",
    "export_directory",
    "load_directory",
    "prometheus_text",
    "write_json",
    "write_prometheus",
    "write_trace_jsonl",
    "render_summary",
    "aggregate_span_tree",
]
