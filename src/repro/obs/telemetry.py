"""The telemetry registry: counters, gauges, and fixed-bucket histograms
that merge exactly across shards and processes.

The merge contract mirrors :meth:`TrafficMetrics.merged`: a serial run
and a sharded run over the same work produce *bit-identical* aggregates
for every deterministic instrument, because merging is pure integer /
elementwise addition over identical bucket layouts.  Instruments declare
a **stability class** so consumers can tell which aggregates carry that
guarantee:

``exact``
    Deterministic *and* shard-layout-invariant: serial == merged shards,
    always.  (Request counts, latency histograms, solver attempts.)
``shape``
    Deterministic for a fixed shard layout but dependent on it (per-shard
    retrieval memos, cohort wave sizes, fault-draw batching).
``volatile``
    Wall-clock or environment derived (span timings, rows/s, worker
    utilization).  Never compared across runs.

Activation is explicit and scoped: nothing is recorded unless a
:class:`Telemetry` instance is *active* (see :func:`capture`).  The
disabled path is a single module-global ``None`` check, so instrumented
hot loops cost nothing measurable when telemetry is off.  Telemetry
never touches an RNG and never reorders events - it only observes.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.errors import SpecificationError
from repro.obs.spans import DEFAULT_SPAN_CAPACITY, Span, SpanRing

__all__ = [
    "Telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "STABILITIES",
    "DEFAULT_BOUNDS",
    "TIME_BOUNDS",
    "current",
    "activate",
    "deactivate",
    "capture",
    "span",
    "inc",
    "observe",
    "gauge",
]

STABILITIES = ("exact", "shape", "volatile")

#: Power-of-two buckets: right for slot-valued latencies and batch sizes.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(float(1 << k) for k in range(21))

#: Log-ish buckets for wall/CPU seconds (100us .. 100s).
TIME_BOUNDS: tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _check_stability(stability: str) -> str:
    if stability not in STABILITIES:
        raise SpecificationError(
            f"unknown stability class {stability!r}; expected one of {STABILITIES}"
        )
    return stability


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic integer count.  Merge = sum."""

    __slots__ = ("value", "stability")
    kind = "counter"

    def __init__(self, stability: str = "exact") -> None:
        self.value = 0
        self.stability = stability

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-observed value.  Merge = max (documented, for utilization-style
    gauges where "the busiest shard" is the useful aggregate)."""

    __slots__ = ("value", "stability")
    kind = "gauge"

    def __init__(self, stability: str = "volatile") -> None:
        self.value = 0.0
        self.stability = stability

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact totals.

    ``counts[i]`` holds observations with ``value <= bounds[i]``;
    ``counts[-1]`` is the overflow bucket.  Because the bucket layout is
    fixed at first registration and merging is elementwise addition,
    sharded histograms merge bit-identically to a serial run.
    """

    __slots__ = ("bounds", "counts", "total", "count", "vmin", "vmax", "unit", "stability")
    kind = "histogram"

    def __init__(
        self,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
        unit: str = "",
        stability: str = "exact",
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise SpecificationError(
                f"histogram bounds must be strictly increasing, got {bounds!r}"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.unit = unit
        self.stability = stability

    def observe(self, value: float, n: int = 1) -> None:
        self.counts[bisect_left(self.bounds, value)] += n
        self.total += value * n
        self.count += n
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise SpecificationError(
                "cannot merge histograms with different bucket layouts: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count
        for value in (other.vmin, other.vmax):
            if value is None:
                continue
            if self.vmin is None or value < self.vmin:
                self.vmin = value
            if self.vmax is None or value > self.vmax:
                self.vmax = value


class _SpanContext:
    """Re-entrant-per-use context manager closing one span."""

    __slots__ = ("_ring", "span")

    def __init__(self, ring: SpanRing, span: Span) -> None:
        self._ring = ring
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc: Any) -> None:
        self._ring.close(self.span)


class _NullSpan:
    """Do-nothing span context used when telemetry is inactive."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """A registry of named, labelled instruments plus a span ring.

    Instruments are keyed by ``(name, sorted(labels))``.  The first
    registration fixes kind, stability, and (for histograms) the bucket
    layout; later lookups with conflicting declarations raise
    :class:`SpecificationError` rather than silently forking the
    instrument.
    """

    def __init__(self, *, span_capacity: int = DEFAULT_SPAN_CAPACITY) -> None:
        self._instruments: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self.spans = SpanRing(span_capacity)
        #: Payload dicts merged into this registry (for debugging fan-in).
        self.merged_payloads = 0

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str, *, stability: str = "exact", **labels: Any) -> Counter:
        return self._instrument(name, _label_key(labels), Counter, stability)

    def gauge_cell(self, name: str, *, stability: str = "volatile", **labels: Any) -> Gauge:
        return self._instrument(name, _label_key(labels), Gauge, stability)

    def histogram(
        self,
        name: str,
        *,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
        unit: str = "",
        stability: str = "exact",
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is None:
            found = Histogram(bounds, unit, _check_stability(stability))
            self._instruments[key] = found
        elif not isinstance(found, Histogram):
            raise SpecificationError(
                f"instrument {name!r} already registered as a {found.kind}"
            )
        elif found.bounds != tuple(float(b) for b in bounds):
            raise SpecificationError(
                f"histogram {name!r} already registered with different bounds"
            )
        return found

    def _instrument(self, name, labels, cls, stability):
        key = (name, labels)
        found = self._instruments.get(key)
        if found is None:
            found = cls(_check_stability(stability))
            self._instruments[key] = found
        elif not isinstance(found, cls):
            raise SpecificationError(
                f"instrument {name!r} already registered as a {found.kind}"
            )
        return found

    # -- recording ------------------------------------------------------------

    def inc(self, name: str, value: int = 1, *, stability: str = "exact", **labels: Any) -> None:
        self.counter(name, stability=stability, **labels).add(value)

    def gauge(self, name: str, value: float, *, stability: str = "volatile", **labels: Any) -> None:
        self.gauge_cell(name, stability=stability, **labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        n: int = 1,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
        unit: str = "",
        stability: str = "exact",
        **labels: Any,
    ) -> None:
        self.histogram(
            name, bounds=bounds, unit=unit, stability=stability, **labels
        ).observe(value, n)

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self.spans, self.spans.open(name, attrs))

    def record_span(self, name: str, wall: float, **kwargs: Any) -> Span:
        return self.spans.record(name, wall, **kwargs)

    # -- reading --------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> int | float | None:
        """Current value of a counter/gauge, or None if never recorded."""

        found = self._instruments.get((name, _label_key(labels)))
        return None if found is None or isinstance(found, Histogram) else found.value

    def get_histogram(self, name: str, **labels: Any) -> Histogram | None:
        found = self._instruments.get((name, _label_key(labels)))
        return found if isinstance(found, Histogram) else None

    def instruments(self) -> Iterator[tuple[str, LabelKey, Counter | Gauge | Histogram]]:
        for (name, labels), instrument in sorted(self._instruments.items()):
            yield name, labels, instrument

    # -- merge / serialization -------------------------------------------------

    def merge(self, other: "Telemetry | Mapping[str, Any]") -> None:
        """Fold another registry (or its :meth:`to_dict` payload) into
        this one, exactly: counters and histogram buckets add, gauges
        take the max, spans append into the ring."""

        if isinstance(other, Telemetry):
            other = other.to_dict()
        self.merge_dict(other)

    def merge_dict(self, payload: Mapping[str, Any]) -> None:
        for record in payload.get("metrics", ()):
            name = record["name"]
            labels = {k: v for k, v in record.get("labels", ())}
            kind = record["kind"]
            stability = record.get("stability", "exact")
            if kind == "counter":
                self.counter(name, stability=stability, **labels).add(int(record["value"]))
            elif kind == "gauge":
                cell = self.gauge_cell(name, stability=stability, **labels)
                cell.set(max(cell.value, float(record["value"])))
            elif kind == "histogram":
                incoming = Histogram(
                    tuple(record["bounds"]), record.get("unit", ""), stability
                )
                incoming.counts = [int(n) for n in record["counts"]]
                incoming.total = float(record["total"])
                incoming.count = int(record["count"])
                incoming.vmin = record.get("min")
                incoming.vmax = record.get("max")
                self.histogram(
                    name,
                    bounds=incoming.bounds,
                    unit=incoming.unit,
                    stability=stability,
                    **labels,
                ).merge(incoming)
            else:
                raise SpecificationError(f"unknown instrument kind {kind!r}")
        trace = payload.get("spans")
        if trace:
            self.spans.extend(trace, int(payload.get("spans_dropped", 0)))
        self.merged_payloads += 1

    def to_dict(
        self, *, spans: bool = True, stability: tuple[str, ...] | None = None
    ) -> dict[str, Any]:
        """JSON-ready payload.  ``stability`` filters the metric records
        (e.g. ``("exact",)`` for the shard-invariant view used by the
        determinism property tests)."""

        metrics: list[dict[str, Any]] = []
        for name, labels, instrument in self.instruments():
            if stability is not None and instrument.stability not in stability:
                continue
            record: dict[str, Any] = {
                "name": name,
                "labels": [list(pair) for pair in labels],
                "kind": instrument.kind,
                "stability": instrument.stability,
            }
            if isinstance(instrument, Histogram):
                record.update(
                    bounds=list(instrument.bounds),
                    counts=list(instrument.counts),
                    total=instrument.total,
                    count=instrument.count,
                    min=instrument.vmin,
                    max=instrument.vmax,
                    unit=instrument.unit,
                )
            else:
                record["value"] = instrument.value
            metrics.append(record)
        payload: dict[str, Any] = {"version": 1, "metrics": metrics}
        if spans:
            payload["spans"] = self.spans.to_list()
            payload["spans_dropped"] = self.spans.dropped
        return payload

    def deterministic_dict(self) -> dict[str, Any]:
        """The shard-layout-invariant subset: exact metrics, no spans."""

        return self.to_dict(spans=False, stability=("exact",))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Telemetry":
        tel = cls()
        tel.merge_dict(payload)
        tel.merged_payloads = 0
        return tel


# -- module-level activation ---------------------------------------------------
#
# Instrumented code asks ``current()`` (one global read + None check when
# disabled) or calls the module-level helpers below, which no-op when
# nothing is active.  Activation nests as a stack so a capture inside an
# outer capture records into the inner registry only.

_ACTIVE: list[Telemetry] = []


def current() -> Telemetry | None:
    """The innermost active registry, or None when telemetry is off."""

    return _ACTIVE[-1] if _ACTIVE else None


def activate(tel: Telemetry) -> Telemetry:
    _ACTIVE.append(tel)
    return tel


def deactivate() -> Telemetry:
    if not _ACTIVE:
        raise SpecificationError("no active telemetry to deactivate")
    return _ACTIVE.pop()


@contextmanager
def capture(tel: Telemetry | None = None) -> Iterator[Telemetry]:
    """Activate a registry for the duration of the block.

    ``with capture() as tel: ...`` is the canonical way to turn
    telemetry on around an API call; pool workers use it to collect a
    payload that the parent merges back.
    """

    active = activate(tel if tel is not None else Telemetry())
    try:
        yield active
    finally:
        deactivate()


def span(name: str, **attrs: Any) -> _SpanContext | _NullSpan:
    tel = current()
    return _NULL_SPAN if tel is None else tel.span(name, **attrs)


def inc(name: str, value: int = 1, *, stability: str = "exact", **labels: Any) -> None:
    tel = current()
    if tel is not None:
        tel.inc(name, value, stability=stability, **labels)


def observe(name: str, value: float, **kwargs: Any) -> None:
    tel = current()
    if tel is not None:
        tel.observe(name, value, **kwargs)


def gauge(name: str, value: float, *, stability: str = "volatile", **labels: Any) -> None:
    tel = current()
    if tel is not None:
        tel.gauge(name, value, stability=stability, **labels)
