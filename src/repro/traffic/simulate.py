"""The top-level traffic simulation: populations at scale.

:func:`simulate_traffic` runs a :class:`repro.traffic.spec.TrafficSpec`
population against a designed :class:`~repro.bdisk.program.BroadcastProgram`:

1. each client gets an independent seeded RNG substream, an arrival
   slot, and a session state machine;
2. sessions advance service-to-service - the retrieval oracle walks the
   program's occurrence index (:attr:`BroadcastProgram.index`) and, over
   the failure-free channel, memoizes one real retrieval per
   ``(file, phase)`` of the periodic program (every other request at the
   same phase is a shift);
3. metrics stream (P2 quantiles, reservoir, exact latency histogram) -
   nothing per-request is retained unless tracing is requested.

Because clients are derived from their index alone and fault decisions
are deterministic per ``(seed, slot)``, the population shards exactly:
``max_workers=N`` splits the index range across a process pool and
merges the per-shard accumulators, producing bit-identical counters,
histograms, and summaries regardless of worker count.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from math import lcm

from repro.errors import SimulationError, SpecificationError
from repro.bdisk.multichannel import ChannelSet
from repro.bdisk.program import BroadcastProgram
from repro.obs import telemetry as obs
from repro.rtdb.spec import TemporalSpec
from repro.rtdb.transactions import ReadTransaction
from repro.rtdb.updates import (
    UpdatingServer,
    retrieve_versioned,
    retrieve_versioned_quorum,
    versioned_horizon,
)
from repro.sim.cache import CachingClient, LruCache, PixCache
from repro.sim.client import default_horizon, retrieve
from repro.sim.faults import FaultModel, NoFaults
from repro.sim.metrics import LatencySummary
from repro.traffic.arrivals import (
    arrival_rng,
    arrival_slot,
    client_rng,
    popularity_cdf,
    popularity_weights,
)
from repro.traffic.clients import (
    ClientSession,
    RequestRecord,
    TransactionSession,
)
from repro.traffic.kernel import EventKernel
from repro.traffic.metrics import TrafficMetrics
from repro.traffic.spec import TrafficSpec

#: Shard-engine implementations ``simulate_traffic`` can run:
#: ``"object"`` is the per-client session/event-kernel engine (the
#: executable spec, no dependencies); ``"soa"`` is the vectorized
#: structure-of-arrays engine (:mod:`repro.traffic.engine_soa`, needs
#: numpy) - bit-identical results, order-of-magnitude faster.
ENGINES = ("object", "soa")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise SpecificationError(
            f"unknown traffic engine {engine!r} (choose from "
            f"{', '.join(ENGINES)})"
        )
    if engine == "soa":
        try:
            import numpy  # noqa: F401
        except ImportError as error:  # pragma: no cover - numpy present in CI
            raise SpecificationError(
                "the 'soa' traffic engine requires numpy, which is not "
                "installed; install numpy or use engine='object'"
            ) from error


def _record_shard_metrics(metrics: TrafficMetrics, engine: str) -> None:
    """Feed one finished shard accumulator into the active telemetry.

    Called exactly once per shard, *shard-side* (inside the worker's
    capture for pooled runs, under the caller's registry serially), so
    parent-side merges never double count.  Everything here derives from
    the exact :class:`TrafficMetrics` accumulator, which is invariant
    under shard layout - these are the ``exact``-stability instruments
    the serial==sharded property tests compare.
    """
    tel = obs.current()
    if tel is None:
        return
    tel.inc("traffic.requests", metrics.requests, engine=engine)
    tel.inc("traffic.completions", metrics.completions, engine=engine)
    tel.inc("traffic.aborts", metrics.aborts, engine=engine)
    tel.inc(
        "traffic.deadline_misses", metrics.deadline_misses, engine=engine
    )
    if metrics.channel_switches:
        tel.inc(
            "traffic.tuning.switches", metrics.channel_switches,
            engine=engine,
        )
    for outcome, count in sorted(metrics.quorum_reads.items()):
        tel.inc(
            "traffic.quorum.reads", count, engine=engine, outcome=outcome
        )
    if metrics.exact:
        hist = tel.histogram(
            "traffic.latency_slots", unit="slots", engine=engine
        )
        for value, count in sorted(metrics.counts.items()):
            hist.observe(value, count)


class _Retriever:
    """The occurrence-walking retrieval oracle sessions call.

    Returns ``(latency, finish_slot)``; ``latency`` is ``None`` on an
    abort, and ``finish_slot`` is the last slot listened to either way.
    Over the failure-free channel a retrieval's outcome depends on the
    start slot only through its phase (start mod data cycle), so heavy
    traffic costs one real retrieval per ``(file, phase)`` - the same
    amortization :func:`repro.sim.runner.simulate_requests` uses.
    Stochastic models key decisions on absolute slots, so every request
    is retrieved for real there (still occurrence-walking, with batched
    fault queries).  Cache-enabled sessions route their misses through
    :class:`~repro.sim.cache.CachingClient` instead - misses must update
    policy state and statistics, so they skip this memo and pay a real
    occurrence walk each.
    """

    __slots__ = ("_program", "_sizes", "_faults", "_max_slots", "_memo",
                 "_cycle", "_c_memo", "_c_walk")

    def __init__(
        self,
        program: BroadcastProgram,
        file_sizes: Mapping[str, int],
        faults: FaultModel,
        max_slots: int | None,
    ) -> None:
        self._program = program
        self._sizes = file_sizes
        self._faults = faults
        self._max_slots = max_slots
        self._cycle = program.data_cycle_length
        self._memo: dict[tuple[str, int], int | None] | None = (
            {} if isinstance(faults, NoFaults) else None
        )
        # Counter cells are resolved once here so the per-request cost
        # with telemetry on is one integer add - and one attribute check
        # when it is off.  Memo-vs-walk splits are per-shard state, hence
        # "shape" stability (deterministic, but layout-dependent).
        tel = obs.current()
        self._c_memo = self._c_walk = None
        if tel is not None:
            self._c_memo = tel.counter(
                "traffic.retrievals", stability="shape",
                oracle="plain", kind="memo",
            )
            self._c_walk = tel.counter(
                "traffic.retrievals", stability="shape",
                oracle="plain", kind="walk",
            )

    def horizon(self, file: str) -> int:
        """Slots a retrieval of ``file`` listens before giving up."""
        if self._max_slots is not None:
            return self._max_slots
        return default_horizon(self._program, self._sizes[file])

    def __call__(self, file: str, start: int) -> tuple[int | None, int]:
        memo = self._memo
        if memo is None:
            result = retrieve(
                self._program,
                file,
                self._sizes[file],
                start=start,
                faults=self._faults,
                need_distinct=True,
                max_slots=self._max_slots,
            )
            latency = result.latency
            if self._c_walk is not None:
                self._c_walk.add()
        else:
            key = (file, start % self._cycle)
            try:
                latency = memo[key]
            except KeyError:
                latency = memo[key] = retrieve(
                    self._program,
                    file,
                    self._sizes[file],
                    start=key[1],
                    need_distinct=True,
                    max_slots=self._max_slots,
                ).latency
                if self._c_walk is not None:
                    self._c_walk.add()
            else:
                if self._c_memo is not None:
                    self._c_memo.add()
        if latency is None:
            return None, start + self.horizon(file) - 1
        return latency, start + latency - 1


#: Ceiling on the joint (data cycle x update period) phase space a
#: fault-free versioned retrieval memo may key on.  The memo is lazy -
#: it grows one entry per distinct phase actually requested - so the cap
#: only guards the degenerate regime where the joint period is so large
#: that hits are hopeless and the dict would just mirror the request
#: stream.
_VERSION_MEMO_CAP = 1 << 20


class _VersionedRetriever:
    """The version-consistent retrieval oracle transaction sessions call.

    Returns ``(latency, finish_slot, age, torn_discards)`` per the
    :data:`repro.traffic.clients.VersionedRetriever` convention.  Over
    the failure-free channel an outcome depends on the start slot only
    through its phase modulo ``lcm(data cycle, update period)`` - the
    content table repeats with the cycle and the version clock with the
    period - so heavy traffic pays one real retrieval per ``(file,
    joint phase)`` when that joint period is modest
    (:data:`_VERSION_MEMO_CAP`).  Stochastic fault models key decisions
    on absolute slots, so every request there retrieves for real (still
    occurrence-walking, with batched fault queries).
    """

    __slots__ = (
        "_program", "_sizes", "_server", "_faults", "_max_slots",
        "_memo", "_joint", "_c_memo", "_c_walk",
    )

    def __init__(
        self,
        program: BroadcastProgram,
        file_sizes: Mapping[str, int],
        server: UpdatingServer,
        faults: FaultModel,
        max_slots: int | None,
    ) -> None:
        self._program = program
        self._sizes = file_sizes
        self._server = server
        self._faults = faults
        self._max_slots = max_slots
        cycle = program.data_cycle_length
        self._joint = {
            file: lcm(cycle, server.period(file)) for file in file_sizes
        }
        self._memo: dict[tuple[str, int], tuple] | None = (
            {} if isinstance(faults, NoFaults) else None
        )
        tel = obs.current()
        self._c_memo = self._c_walk = None
        if tel is not None:
            self._c_memo = tel.counter(
                "traffic.retrievals", stability="shape",
                oracle="versioned", kind="memo",
            )
            self._c_walk = tel.counter(
                "traffic.retrievals", stability="shape",
                oracle="versioned", kind="walk",
            )

    def horizon(self, file: str) -> int:
        """Slots a retrieval of ``file`` listens before giving up."""
        if self._max_slots is not None:
            return self._max_slots
        return versioned_horizon(
            self._program, self._sizes[file], self._server.period(file)
        )

    def _real(
        self, file: str, start: int
    ) -> tuple[int | None, int | None, int]:
        # The user's max_slots override passes through verbatim; None
        # lets retrieve_versioned derive its own default so the
        # MAX_DEFAULT_HORIZON budget guard stays in force (handing the
        # derived value over as an explicit horizon would launder it
        # into a "caller-chosen" one and silently walk a huge cycle).
        result = retrieve_versioned(
            self._program,
            self._server,
            file,
            self._sizes[file],
            start=start,
            faults=self._faults,
            max_slots=self._max_slots,
        )
        return result.latency, result.age_at_completion, result.torn_discards

    def __call__(
        self, file: str, start: int
    ) -> tuple[int | None, int, int | None, int]:
        memo = self._memo
        joint = self._joint[file]
        if memo is None or joint > _VERSION_MEMO_CAP:
            latency, age, torn = self._real(file, start)
            if self._c_walk is not None:
                self._c_walk.add()
        else:
            # Fault-free: latency, age, and torn discards are invariant
            # under shifting the start by the joint period (a multiple
            # of both the content cycle and the version period).
            key = (file, start % joint)
            try:
                latency, age, torn = memo[key]
            except KeyError:
                latency, age, torn = memo[key] = self._real(file, key[1])
                if self._c_walk is not None:
                    self._c_walk.add()
            else:
                if self._c_memo is not None:
                    self._c_memo.add()
        if latency is None:
            return None, start + self.horizon(file) - 1, age, torn
        return latency, start + latency - 1, age, torn


class _MultiOracle:
    """Shared multichannel retrieval machinery for one shard.

    Implements the deterministic channel-choice rule of
    :func:`repro.sim.client.choose_channel` with the fault-free probes
    memoized per ``(channel, file, listen mod channel cycle)`` - a
    probe's outcome over the clean channel depends on the listen slot
    only through its phase, so heavy traffic pays one real probe per
    phase per channel.  End-to-end outcomes are bit-identical to
    :func:`repro.sim.client.retrieve_multichannel` (pinned by
    ``tests/traffic/test_traffic_multichannel.py``).
    """

    __slots__ = ("channels", "faults", "_sizes", "_max_slots", "_cycles",
                 "_horizons", "_memo", "_c_memo", "_c_walk")

    def __init__(
        self,
        channels: ChannelSet,
        file_sizes: Mapping[str, int],
        faults: Sequence[FaultModel] | None,
        max_slots: int | None,
    ) -> None:
        self.channels = channels
        self.faults = faults
        self._sizes = file_sizes
        self._max_slots = max_slots
        self._cycles = tuple(
            program.data_cycle_length for program in channels.programs
        )
        self._horizons: dict[tuple[int, str], int] = {}
        # (channel, file, phase) -> (completed, latency-from-listen).
        self._memo: dict[tuple[int, str, int], tuple[bool, int]] = {}
        tel = obs.current()
        self._c_memo = self._c_walk = None
        if tel is not None:
            self._c_memo = tel.counter(
                "traffic.retrievals", stability="shape",
                oracle="multichannel", kind="memo",
            )
            self._c_walk = tel.counter(
                "traffic.retrievals", stability="shape",
                oracle="multichannel", kind="walk",
            )

    def horizon(self, channel: int, file: str) -> int:
        """Slots a retrieval on ``channel`` listens before giving up."""
        key = (channel, file)
        horizon = self._horizons.get(key)
        if horizon is None:
            horizon = self._horizons[key] = (
                self._max_slots
                if self._max_slots is not None
                else default_horizon(
                    self.channels.programs[channel], self._sizes[file]
                )
            )
        return horizon

    def _probe(
        self, channel: int, file: str, listen: int
    ) -> tuple[bool, int]:
        """``(completed, latency from listen)`` of the clean probe."""
        key = (channel, file, listen % self._cycles[channel])
        hit = self._memo.get(key)
        if hit is None:
            result = retrieve(
                self.channels.programs[channel],
                file,
                self._sizes[file],
                start=key[2],
                faults=None,
                need_distinct=True,
                max_slots=self.horizon(channel, file),
            )
            hit = self._memo[key] = (
                result.completed,
                result.latency if result.completed else 0,
            )
            if self._c_walk is not None:
                self._c_walk.add()
        elif self._c_memo is not None:
            self._c_memo.add()
        return hit

    def retrieve(
        self, file: str, start: int, tuned: int
    ) -> tuple[int | None, int, int]:
        """One multichannel retrieval: ``(latency, finish, channel)``.

        ``latency`` is ``None`` on an abort; ``finish`` is the last slot
        listened to either way (tuning cost included in both).
        """
        best: tuple[int, int, int] | None = None
        chosen: tuple[int, int, bool, int] | None = None
        for candidate in self.channels.channels_for(file):
            listen = self.channels.listen_start(start, tuned, candidate)
            completed, latency = self._probe(candidate, file, listen)
            busy = (
                listen + latency - 1
                if completed
                else listen + self.horizon(candidate, file) - 1
            )
            key = (0 if completed else 1, busy, candidate)
            if best is None or key < best:
                best = key
                chosen = (candidate, listen, completed, latency)
        assert chosen is not None  # channels_for never returns empty
        channel, listen, completed, latency = chosen
        horizon = self.horizon(channel, file)
        model = self.faults[channel] if self.faults is not None else None
        if model is None or isinstance(model, NoFaults):
            finish = (
                listen + latency - 1 if completed else listen + horizon - 1
            )
        else:
            result = retrieve(
                self.channels.programs[channel],
                file,
                self._sizes[file],
                start=listen,
                faults=model,
                need_distinct=True,
                max_slots=horizon,
            )
            completed = result.completed
            finish = (
                result.finish_slot
                if result.completed and result.finish_slot is not None
                else listen + horizon - 1
            )
        return (
            finish - start + 1 if completed else None,
            finish,
            channel,
        )


class _MultiRetriever:
    """Per-session adapter: the multichannel oracle as a ``Retriever``.

    Sessions share the oracle (and its probe memo) but each holds its
    own tuned-channel state - clients sign on tuned to channel 0, and
    the tuned channel persists across the session's requests.  Re-tunes
    are charged to the metrics as they happen.
    """

    __slots__ = ("_oracle", "_metrics", "_tuned")

    def __init__(self, oracle: _MultiOracle, metrics: TrafficMetrics) -> None:
        self._oracle = oracle
        self._metrics = metrics
        self._tuned = 0

    def __call__(self, file: str, start: int) -> tuple[int | None, int]:
        latency, finish, channel = self._oracle.retrieve(
            file, start, self._tuned
        )
        if channel != self._tuned:
            self._tuned = channel
            self._metrics.record_channel_switches(1)
        return latency, finish


class _QuorumRetriever:
    """Per-session adapter: quorum reads as a ``VersionedRetriever``.

    Each transaction item runs one r-of-k
    :func:`~repro.rtdb.updates.retrieve_versioned_quorum` assembly; the
    session's tuned channel carries over between items and requests
    (clients sign on tuned to channel 0).  Quorum outcomes and re-tunes
    feed the metrics here, so sessions stay protocol-agnostic.
    """

    __slots__ = (
        "_channels", "_sizes", "_server", "_faults", "_max_slots",
        "_metrics", "_tuned",
    )

    def __init__(
        self,
        channels: ChannelSet,
        file_sizes: Mapping[str, int],
        server: UpdatingServer,
        faults: Sequence[FaultModel] | None,
        max_slots: int | None,
        metrics: TrafficMetrics,
    ) -> None:
        self._channels = channels
        self._sizes = file_sizes
        self._server = server
        self._faults = faults
        self._max_slots = max_slots
        self._metrics = metrics
        self._tuned = 0

    def __call__(
        self, file: str, start: int
    ) -> tuple[int | None, int, int | None, int]:
        read = retrieve_versioned_quorum(
            self._channels,
            self._server,
            file,
            self._sizes[file],
            start=start,
            tuned=self._tuned,
            faults=self._faults,
            max_slots=self._max_slots,
        )
        if read.switches:
            self._metrics.record_channel_switches(read.switches)
        self._metrics.record_quorum(read.outcome, read.latency)
        self._tuned = read.tuned
        return (
            read.latency if read.completed else None,
            read.finish_slot,
            read.age_at_completion,
            read.torn_discards,
        )


def _channel_fault_models(
    faults: Any, count: int
) -> list[FaultModel] | None:
    """Fresh per-channel fault-model instances for a ``count``-set.

    ``None`` stays ``None`` (every channel clean).  A declarative spec
    with :meth:`~repro.api.scenario.FaultSpec.for_channel` derives one
    independent model per channel (stochastic channels get decorrelated
    seed substreams).  A sequence supplies per-channel entries verbatim
    (``None`` entries mean a clean channel).  A bare shared
    :class:`FaultModel` instance is rejected - one RNG stream cannot
    serve ``k`` channels without correlating their losses.
    """
    if faults is None:
        return None
    for_channel = getattr(faults, "for_channel", None)
    if callable(for_channel):
        return [
            _build_fault_model(for_channel(channel))
            for channel in range(count)
        ]
    if isinstance(faults, Sequence) and not isinstance(
        faults, (str, bytes)
    ):
        entries = list(faults)
        if len(entries) != count:
            raise SpecificationError(
                f"per-channel faults must have one entry per channel: "
                f"got {len(entries)} for {count} channel(s)"
            )
        return [_build_fault_model(entry) for entry in entries]
    raise SpecificationError(
        f"multi-channel traffic needs a FaultSpec (per-channel "
        f"derivation via for_channel), a per-channel sequence, or None; "
        f"got {type(faults).__name__}"
    )


def _validate_channels(channels: Any, spec: TrafficSpec) -> None:
    """Eager checks for a multi-channel traffic run."""
    if channels is None:
        return
    if not isinstance(channels, ChannelSet):
        raise SpecificationError(
            f"channels must be a ChannelSet, got "
            f"{type(channels).__name__}"
        )
    if spec.cache is not None:
        raise SpecificationError(
            "client caches are not supported over multi-channel sets "
            "(a cached copy would bypass the tuning model); remove the "
            "traffic cache from multi-channel scenarios"
        )


def _temporal_mix(
    temporal: TemporalSpec,
    catalogue: tuple[str, ...],
    deadlines: Mapping[str, int],
    weights: Sequence[float],
) -> tuple[list[ReadTransaction], list[float]]:
    """The weighted transaction mix a temporal population draws from.

    An explicit mix is used verbatim with its declared weights; without
    one, every catalogue file becomes a single-item transaction whose
    deadline is the file's design deadline, weighted by the traffic
    spec's popularity law - the versioned analogue of plain sessions.
    """
    if temporal.transactions:
        return (
            [txn.as_transaction() for txn in temporal.transactions],
            [txn.weight for txn in temporal.transactions],
        )
    return (
        [
            ReadTransaction(file, (file,), deadlines[file])
            for file in catalogue
        ],
        list(weights),
    )


def _validate_temporal(
    temporal: TemporalSpec,
    spec: TrafficSpec,
    catalogue: tuple[str, ...],
) -> None:
    items = {item.name for item in temporal.items}
    missing = set(catalogue) - items
    if missing:
        raise SimulationError(
            f"catalogue files {sorted(missing)} are not temporal items"
        )
    for txn in temporal.transactions:
        ghost = set(txn.items) - set(catalogue)
        if ghost:
            raise SimulationError(
                f"transaction {txn.name!r} reads items {sorted(ghost)} "
                f"outside the broadcast catalogue"
            )
    if spec.cache is not None:
        raise SpecificationError(
            "client caches do not apply to version-consistent reads "
            "(a cached copy would go stale); remove the traffic cache "
            "from temporal scenarios"
        )


def shard_bounds(clients: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` client ranges splitting a population.

    The canonical shard layout: ``shards`` is clamped to ``clients``
    (never an empty shard), ranges cover ``[0, clients)`` exactly, and
    the same layout drives both :func:`simulate_traffic`'s internal pool
    and external orchestrators that submit
    :func:`simulate_traffic_shard` calls to a shared pool.  Clients
    derive all behaviour from their index, so any layout merges to
    bit-identical results - this one is just the balanced default.
    """
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise SpecificationError(f"shard count must be >= 1: {shards!r}")
    if (
        not isinstance(clients, int)
        or isinstance(clients, bool)
        or clients < 1
    ):
        raise SpecificationError(
            f"client count must be a positive integer: {clients!r}"
        )
    shards = min(shards, clients)
    return [
        (clients * shard // shards, clients * (shard + 1) // shards)
        for shard in range(shards)
    ]


def _validate_population(
    program: BroadcastProgram | None,
    catalogue: tuple[str, ...],
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    channels: ChannelSet | None = None,
) -> None:
    if not catalogue:
        raise SpecificationError("traffic catalogue must not be empty")
    if len(set(catalogue)) != len(catalogue):
        raise SpecificationError("traffic catalogue has duplicate files")
    for file in catalogue:
        if channels is not None:
            if file not in channels.assignment:
                raise SimulationError(
                    f"file {file!r} is not broadcast on any channel"
                )
        elif file not in program.files:
            raise SimulationError(f"file {file!r} is not broadcast")
        if file not in file_sizes:
            raise SimulationError(f"no size known for file {file!r}")
        if file not in deadlines:
            raise SimulationError(f"no deadline known for file {file!r}")


def simulate_traffic_shard(
    program: BroadcastProgram | None,
    catalogue: Sequence[str],
    spec: TrafficSpec,
    *,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    faults: Any = None,
    temporal: TemporalSpec | None = None,
    channels: ChannelSet | None = None,
    lo: int,
    hi: int,
    engine: str = "object",
) -> TrafficMetrics:
    """Simulate clients ``[lo, hi)`` of a population - one pool task.

    The public face of the shard runner for *external* process pools: a
    sweep orchestrator interleaves these with other scenarios' work on
    one shared pool instead of letting every :func:`simulate_traffic`
    call spin up its own.  Merge the per-shard accumulators with
    :meth:`TrafficMetrics.merged` (seeded with ``spec.seed``) to get the
    exact whole-population metrics; the merge is independent of the
    shard layout *and* of the engine each shard ran.  Per-request
    tracing is a whole-run concern - use :func:`simulate_traffic` for
    it.
    """
    catalogue = tuple(catalogue)
    _check_engine(engine)
    _validate_channels(channels, spec)
    if channels is None and program is None:
        raise SpecificationError(
            "simulate_traffic_shard needs a program or a channel set"
        )
    _validate_population(program, catalogue, file_sizes, deadlines, channels)
    if temporal is not None:
        _validate_temporal(temporal, spec, catalogue)
    if not 0 <= lo < hi <= spec.clients:
        raise SpecificationError(
            f"shard [{lo}, {hi}) is not a sub-range of "
            f"[0, {spec.clients})"
        )
    sizes = {file: file_sizes[file] for file in catalogue}
    limits = {file: deadlines[file] for file in catalogue}
    if engine == "soa":
        from repro.traffic.engine_soa import simulate_shard_soa

        metrics, _ = simulate_shard_soa(
            program, catalogue, spec, sizes, limits, faults, temporal,
            lo, hi, False, channels=channels,
        )
        return metrics
    metrics, _ = _simulate_shard(
        program, catalogue, spec, sizes, limits, faults, temporal,
        lo, hi, False, channels=channels,
    )
    return metrics


def _pool_shard_task(
    engine: str,
    program: BroadcastProgram | None,
    catalogue: tuple[str, ...],
    spec: TrafficSpec,
    sizes: dict[str, int],
    limits: dict[str, int],
    faults: Any,
    temporal: TemporalSpec | None,
    lo: int,
    hi: int,
    trace: bool,
    telemetry: bool,
    channels: ChannelSet | None = None,
) -> tuple[TrafficMetrics, list[RequestRecord], dict[str, Any] | None]:
    """Pool task: one shard, optionally capturing worker telemetry.

    The third element is the worker's telemetry payload for the parent
    to merge (``None`` when telemetry is off) - the shard itself records
    into the capture via :func:`_record_shard_metrics` and the engine's
    own instruments.
    """
    if engine == "soa":
        from repro.traffic.engine_soa import simulate_shard_soa

        runner = simulate_shard_soa
    else:
        runner = _simulate_shard
    if not telemetry:
        metrics, records = runner(
            program, catalogue, spec, sizes, limits, faults, temporal,
            lo, hi, trace, channels=channels,
        )
        return metrics, records, None
    with obs.capture() as tel:
        with tel.span("traffic.shard", engine=engine, lo=lo, hi=hi):
            metrics, records = runner(
                program, catalogue, spec, sizes, limits, faults,
                temporal, lo, hi, trace, channels=channels,
            )
    return metrics, records, tel.to_dict()


def _build_fault_model(faults: Any) -> FaultModel:
    """A fresh fault-model instance from a spec, a model, or ``None``."""
    if faults is None:
        return NoFaults()
    build = getattr(faults, "build", None)
    if callable(build):  # a FaultSpec-like declarative object
        return build()
    if not callable(getattr(faults, "is_lost", None)):
        raise SpecificationError(
            f"faults must be a FaultModel, a FaultSpec, or None, got "
            f"{type(faults).__name__}: {faults!r}"
        )
    return faults


def _simulate_shard(
    program: BroadcastProgram | None,
    catalogue: tuple[str, ...],
    spec: TrafficSpec,
    file_sizes: dict[str, int],
    deadlines: dict[str, int],
    faults: Any,
    temporal: TemporalSpec | None,
    lo: int,
    hi: int,
    trace: bool,
    *,
    channels: ChannelSet | None = None,
) -> tuple[TrafficMetrics, list[RequestRecord]]:
    """Simulate clients ``[lo, hi)`` - one shard of the population.

    Module-level so process pools can pickle it.  Clients derive all
    behaviour from their index, so the shard layout cannot change any
    outcome.
    """
    if channels is not None:
        channel_faults = _channel_fault_models(faults, channels.count)
        fault_model: FaultModel | None = None
    else:
        channel_faults = None
        fault_model = _build_fault_model(faults)
    weights = popularity_weights(
        spec.popularity,
        len(catalogue),
        zipf_skew=spec.zipf_skew,
        hot_fraction=spec.hot_fraction,
        hot_weight=spec.hot_weight,
    )
    # The memoized running totals: computed once per distinct popularity
    # tuple and shared by every session in the shard.
    cum_weights = popularity_cdf(
        spec.popularity,
        len(catalogue),
        zipf_skew=spec.zipf_skew,
        hot_fraction=spec.hot_fraction,
        hot_weight=spec.hot_weight,
    )
    metrics = TrafficMetrics(seed=spec.seed)
    records: list[RequestRecord] | None = [] if trace else None

    if temporal is not None:
        versioned: Any
        server = temporal.server()
        if channels is not None:
            versioned = None  # per-session retrievers carry tuned state
        else:
            versioned = _VersionedRetriever(
                program,
                file_sizes,
                server,
                fault_model,
                spec.max_slots,
            )
        mix, mix_weights = _temporal_mix(
            temporal, catalogue, deadlines, weights
        )
        max_age = temporal.max_age_slots()
        kernel = EventKernel()
        for index in range(lo, hi):
            TransactionSession(
                index,
                client_rng(spec.seed, index),
                mix,
                mix_weights,
                max_age,
                requests=spec.requests_per_client,
                think_mean=spec.think_time,
                retriever=(
                    versioned
                    if channels is None
                    else _QuorumRetriever(
                        channels, file_sizes, server, channel_faults,
                        spec.max_slots, metrics,
                    )
                ),
                metrics=metrics,
                trace=records,
            ).begin(
                kernel,
                arrival_slot(
                    spec.arrival,
                    arrival_rng(spec.seed, index),
                    index,
                    spec.clients,
                    spec.duration,
                    bursts=spec.bursts,
                    burst_width=spec.burst_width,
                ),
            )
        kernel.run()
        _record_shard_metrics(metrics, "object")
        return metrics, records if records is not None else []

    oracle: _MultiOracle | None = None
    if channels is not None:
        oracle = _MultiOracle(
            channels, file_sizes, channel_faults, spec.max_slots
        )
        retriever = None
    else:
        retriever = _Retriever(
            program, file_sizes, fault_model, spec.max_slots
        )

    pix: PixCache | None = None
    if spec.cache == "pix":
        # PIX is stateless (probability over frequency), so one instance
        # serves every session in the shard.
        pix = PixCache.for_program(
            program,
            dict(zip(catalogue, weights)),
            file_sizes,
        )

    kernel = EventKernel()
    for index in range(lo, hi):
        rng = client_rng(spec.seed, index)
        arrival = arrival_slot(
            spec.arrival,
            arrival_rng(spec.seed, index),
            index,
            spec.clients,
            spec.duration,
            bursts=spec.bursts,
            burst_width=spec.burst_width,
        )
        cache: CachingClient | None = None
        if spec.cache is not None:
            cache = CachingClient(
                program,
                file_sizes,
                spec.cache_capacity,
                pix if pix is not None else LruCache(),
                faults=fault_model,
                max_slots=spec.max_slots,
            )
        ClientSession(
            index,
            rng,
            catalogue,
            None,
            deadlines,
            requests=spec.requests_per_client,
            think_mean=spec.think_time,
            retriever=(
                retriever
                if oracle is None
                else _MultiRetriever(oracle, metrics)
            ),
            metrics=metrics,
            cache=cache,
            trace=records,
            cum_weights=cum_weights,
        ).begin(kernel, arrival)
    kernel.run()
    _record_shard_metrics(metrics, "object")
    return metrics, records if records is not None else []


@dataclass(frozen=True)
class TrafficResult:
    """Everything one traffic run produced.

    ``metrics`` is the merged (exact) accumulator; ``trace`` is empty
    unless the run was traced.  ``elapsed`` is wall-clock seconds for
    the whole run including any process-pool overhead, which makes
    :attr:`requests_per_sec` the *sustained* simulated request rate.
    ``temporal`` records whether the population ran version-consistent
    transaction sessions - it keeps the freshness block in reports and
    records even when every read aborted (item_reads of zero must read
    as "nothing ever completed", not "not a temporal run").
    """

    spec: TrafficSpec
    metrics: TrafficMetrics
    elapsed: float
    workers: int
    temporal: bool = False
    trace: tuple[RequestRecord, ...] = field(default=())
    #: Whether the population retrieved over a multi-channel set -
    #: keeps the channel block in reports and records even when no
    #: client ever re-tuned.
    channels: bool = False

    @property
    def requests(self) -> int:
        return self.metrics.requests

    @property
    def completions(self) -> int:
        return self.metrics.completions

    @property
    def aborts(self) -> int:
        return self.metrics.aborts

    @property
    def deadline_misses(self) -> int:
        return self.metrics.deadline_misses

    @property
    def abort_rate(self) -> float:
        return self.metrics.abort_rate

    @property
    def miss_rate(self) -> float:
        return self.metrics.miss_rate

    @property
    def requests_per_sec(self) -> float:
        """Sustained simulated requests per wall-clock second."""
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def summary(self) -> LatencySummary:
        """The exact latency summary (mergeable across runs)."""
        return self.metrics.summary()

    def report(self) -> str:
        """A human-readable multi-line report (the CLI's output)."""
        m = self.metrics
        lines = [
            f"traffic   : {self.spec.describe()}",
            (
                f"served    : {self.requests} requests in "
                f"{self.elapsed:.2f}s wall "
                f"({self.requests_per_sec:,.0f} req/s sustained, "
                f"{self.workers} worker"
                f"{'s' if self.workers != 1 else ''})"
            ),
        ]
        if self.completions:
            lines.append(
                f"latency   : mean {m.mean_latency:.2f}, "
                f"p50 {m.quantile(0.50):.0f}, "
                f"p95 {m.quantile(0.95):.0f}, "
                f"p99 {m.quantile(0.99):.0f}, "
                f"worst {m.worst} slots"
            )
        lines.append(
            f"misses    : miss rate {self.miss_rate:.3f} "
            f"(deadline {self.deadline_misses}, aborts {self.aborts})"
        )
        if m.item_reads:
            lines.append(
                f"freshness : consistency {m.consistency_rate:.3f} "
                f"({m.stale_reads} stale of {m.item_reads} reads), "
                f"age mean {m.mean_age:.1f} "
                f"p95 {m.age_quantile(0.95):.0f} "
                f"worst {m.worst_age} slots, "
                f"torn {m.torn_discards}"
            )
        elif self.temporal:
            lines.append(
                f"freshness : no read ever completed "
                f"(torn {m.torn_discards})"
            )
        if self.channels:
            line = f"channels  : switches {m.channel_switches}"
            if m.quorum_total:
                line += (
                    f", quorum ok {m.quorum_ok}/{m.quorum_total} "
                    f"({m.quorum_success_rate:.3f})"
                )
                if m.quorum_ok:
                    line += (
                        f", quorum latency mean "
                        f"{m.mean_quorum_latency:.2f} "
                        f"p95 {m.quorum_quantile(0.95):.0f} "
                        f"worst {m.worst_quorum_latency} slots"
                    )
            lines.append(line)
        if self.spec.cache is not None:
            accesses = m.cache_hits + m.cache_misses
            ratio = m.cache_hits / accesses if accesses else 0.0
            lines.append(
                f"cache     : hits {m.cache_hits}, misses "
                f"{m.cache_misses}, evictions {m.cache_evictions}, "
                f"hit ratio {ratio:.3f}"
            )
        hot = sorted(
            m.requests_by_file.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
        lines.append(
            "top files : "
            + ", ".join(f"{name}={count}" for name, count in hot)
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able record (latency stats null when nothing completed)."""

        def finite(value: float) -> float | None:
            return value if math.isfinite(value) else None

        m = self.metrics
        latency = None
        if self.completions:
            latency = {
                "mean": finite(m.mean_latency),
                "p50": finite(m.quantile(0.50)),
                "p95": finite(m.quantile(0.95)),
                "p99": finite(m.quantile(0.99)),
                "worst": m.worst,
            }
        cache = None
        if self.spec.cache is not None:
            cache = {
                "hits": m.cache_hits,
                "misses": m.cache_misses,
                "evictions": m.cache_evictions,
            }
        temporal = None
        if self.temporal or m.item_reads:
            # An all-abort temporal run still reports its block: torn
            # discards are the diagnostic there, and consistency is
            # null ("undefined"), not 1.0, when nothing ever completed.
            temporal = {
                "item_reads": m.item_reads,
                "stale_reads": m.stale_reads,
                "consistency_rate": (
                    m.consistency_rate if m.item_reads else None
                ),
                "torn_discards": m.torn_discards,
                "age": (
                    {
                        "mean": finite(m.mean_age),
                        "p50": finite(m.age_quantile(0.50)),
                        "p95": finite(m.age_quantile(0.95)),
                        "p99": finite(m.age_quantile(0.99)),
                        "worst": m.worst_age,
                    }
                    if m.item_reads
                    else None
                ),
            }
        channels = None
        if self.channels:
            channels = {
                "switches": m.channel_switches,
                "quorum": (
                    {
                        "reads": dict(sorted(m.quorum_reads.items())),
                        "success_rate": m.quorum_success_rate,
                        "latency": (
                            {
                                "mean": finite(m.mean_quorum_latency),
                                "p50": finite(m.quorum_quantile(0.50)),
                                "p95": finite(m.quorum_quantile(0.95)),
                                "p99": finite(m.quorum_quantile(0.99)),
                                "worst": m.worst_quorum_latency,
                            }
                            if m.quorum_ok
                            else None
                        ),
                    }
                    if m.quorum_total
                    else None
                ),
            }
        return {
            "spec": self.spec.to_dict(),
            "requests": self.requests,
            "completions": self.completions,
            "aborts": self.aborts,
            "deadline_misses": self.deadline_misses,
            "abort_rate": self.abort_rate,
            "miss_rate": self.miss_rate,
            "deadline_miss_rate": m.deadline_miss_rate,
            "requests_per_sec": round(self.requests_per_sec, 1),
            "workers": self.workers,
            "latency": latency,
            "cache": cache,
            "temporal": temporal,
            "channels": channels,
            "requests_by_file": dict(
                sorted(m.requests_by_file.items())
            ),
        }


def simulate_traffic(
    program: BroadcastProgram | None,
    catalogue: Sequence[str],
    spec: TrafficSpec,
    *,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    faults: Any = None,
    temporal: TemporalSpec | None = None,
    channels: ChannelSet | None = None,
    max_workers: int | None = None,
    trace: bool = False,
    engine: str = "object",
) -> TrafficResult:
    """Run an open-loop client population against a broadcast program.

    Parameters
    ----------
    program:
        The server's broadcast program.
    catalogue:
        File names ordered hottest-first (popularity laws weight by
        position).
    spec:
        The population specification.
    file_sizes:
        Blocks needed per file (``m_i``).
    deadlines:
        Per-file deadline in slots (a completion later than this counts
        as a deadline miss).
    faults:
        Channel fault model: a :class:`~repro.sim.faults.FaultModel`
        instance, a declarative spec with a ``build()`` method (e.g.
        :class:`repro.api.FaultSpec`), or ``None`` for the failure-free
        channel.  Parallel shards each build their own instance -
        decisions are deterministic per ``(seed, slot)``, so all shards
        observe the same channel.
    temporal:
        Optional :class:`~repro.rtdb.TemporalSpec`.  When given, the
        population runs :class:`~repro.traffic.clients.TransactionSession`
        clients: requests draw read transactions from the spec's mix
        (or single-item reads without one), items are retrieved
        version-consistently against the spec's update clocks, and the
        metrics gain the staleness dimension (ages, consistency rate,
        torn discards).  Client caches are rejected here - a cached
        copy would go stale.
    channels:
        Optional :class:`~repro.bdisk.multichannel.ChannelSet`.  When
        given, ``program`` is ignored (pass ``None``) and every
        retrieval runs the multi-channel protocol: clients sign on
        tuned to channel 0, pick the earliest-finishing assigned
        channel per request (re-tunes cost
        :attr:`~repro.bdisk.multichannel.ChannelSet.tuning_cost`
        slots), and temporal populations assemble
        :attr:`~repro.bdisk.multichannel.ChannelSet.quorum`
        version-matching copies per item.  ``faults`` must then be a
        declarative spec (per-channel models derive via
        ``for_channel``), a per-channel sequence, or ``None`` - one
        shared model instance cannot serve ``k`` channels.  Client
        caches are rejected (a cached copy would bypass the tuning
        model).
    max_workers:
        ``None`` or ``1`` simulates in-process; a larger value shards
        the population across a process pool.  Results are bit-identical
        either way.
    trace:
        Retain one :class:`RequestRecord` per request (sorted by issue
        slot, then client).  Off by default - tracing defeats the
        constant-memory metrics path.
    engine:
        ``"object"`` (default) runs per-client session objects over the
        event kernel; ``"soa"`` runs the vectorized structure-of-arrays
        engine (:mod:`repro.traffic.engine_soa`, requires numpy).
        Metrics and traces are bit-identical between the two - the
        engine is purely a performance choice.  Pooled ``"soa"`` runs
        export the retrieval tables once into shared memory and workers
        attach them zero-copy instead of unpickling per-shard state.
    """
    catalogue = tuple(catalogue)
    _check_engine(engine)
    _validate_channels(channels, spec)
    if channels is None and program is None:
        raise SpecificationError(
            "simulate_traffic needs a program or a channel set"
        )
    _validate_population(program, catalogue, file_sizes, deadlines, channels)
    if temporal is not None:
        _validate_temporal(temporal, spec, catalogue)
    if max_workers is not None:
        if not isinstance(max_workers, int) or isinstance(max_workers, bool):
            raise SpecificationError(
                f"max_workers must be a positive integer, got "
                f"{type(max_workers).__name__}: {max_workers!r}"
            )
        if max_workers < 1:
            raise SpecificationError(
                f"max_workers must be >= 1: {max_workers}"
            )
    sizes = {file: file_sizes[file] for file in catalogue}
    limits = {file: deadlines[file] for file in catalogue}
    # Build the shared occurrence tables once, up front.
    if channels is not None:
        for channel_program in channels.programs:
            channel_program.index
    else:
        program.index

    workers = 1
    if max_workers is not None:
        workers = min(max_workers, spec.clients)
    tel = obs.current()
    begin = time.perf_counter()
    if workers == 1:
        if engine == "soa":
            from repro.traffic.engine_soa import simulate_shard_soa

            parts = [
                simulate_shard_soa(
                    program, catalogue, spec, sizes, limits, faults,
                    temporal, 0, spec.clients, trace, channels=channels,
                )
            ]
        else:
            parts = [
                _simulate_shard(
                    program, catalogue, spec, sizes, limits, faults,
                    temporal, 0, spec.clients, trace, channels=channels,
                )
            ]
    else:
        from concurrent.futures import ProcessPoolExecutor

        bounds = shard_bounds(spec.clients, workers)
        if (
            engine == "soa"
            and temporal is None
            and channels is not None
            and faults is None
        ):
            # Multichannel vectorized pool path: per-channel retrieval
            # tables packed into one shared-memory segment; workers
            # attach and rebuild the channel tables without the
            # programs themselves.  Faulty channels fall back to the
            # generic task below - they need the real programs.
            from repro.traffic.cohorts import MultiChannelTables
            from repro.traffic.engine_soa import _shard_task_shm_mc
            from repro.traffic.shm_index import export_multichannel_tables

            mc_tables = MultiChannelTables.build(
                channels, catalogue, sizes, spec.max_slots
            )
            shared = export_multichannel_tables(mc_tables)
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _shard_task_shm_mc,
                            shared.meta, catalogue, spec, sizes, limits,
                            lo, hi, trace,
                            telemetry=tel is not None,
                        )
                        for lo, hi in bounds
                    ]
                    pooled = [future.result() for future in futures]
            finally:
                shared.unlink()
        elif channels is not None:
            # Multichannel object engine, faulty channels, or temporal
            # quorum populations: the channel set pickles whole (its
            # programs drop their indexes; workers rebuild lazily).
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _pool_shard_task,
                        engine, None, catalogue, spec, sizes, limits,
                        faults, temporal, lo, hi, trace,
                        tel is not None, channels,
                    )
                    for lo, hi in bounds
                ]
                pooled = [future.result() for future in futures]
        elif engine == "soa" and temporal is None:
            # Vectorized pool path: build the retrieval tables once,
            # export them into one shared-memory segment, and hand
            # workers the tiny attach handle - no program pickle, no
            # per-worker index reconstruction.  The parent owns the
            # segment and destroys it once the pool has drained.
            from repro.traffic.cohorts import RetrievalTables
            from repro.traffic.engine_soa import _shard_task_shm
            from repro.traffic.shm_index import export_tables

            tables = RetrievalTables.build(
                program, catalogue, sizes, spec.max_slots
            )
            shared = export_tables(tables)
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _shard_task_shm,
                            shared.meta, catalogue, spec, sizes, limits,
                            faults, lo, hi, trace,
                            telemetry=tel is not None,
                        )
                        for lo, hi in bounds
                    ]
                    pooled = [future.result() for future in futures]
            finally:
                shared.unlink()
        else:
            # Temporal SoA populations retrieve through the versioned
            # scalar oracle, which needs the program itself; the
            # program pickles without its index (workers rebuild
            # lazily), so only the schedule crosses the pool.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _pool_shard_task,
                        engine, program, catalogue, spec, sizes, limits,
                        faults, temporal, lo, hi, trace,
                        tel is not None,
                    )
                    for lo, hi in bounds
                ]
                # Collected in submission order: shard position is
                # bound at submit time, so merge order is deterministic.
                pooled = [future.result() for future in futures]
        # Worker telemetry rides back on the shard results and merges
        # exactly, in the same deterministic submission order.
        parts = []
        for part_metrics, part_records, part_tel in pooled:
            if tel is not None and part_tel is not None:
                tel.merge_dict(part_tel)
            parts.append((part_metrics, part_records))
    metrics = TrafficMetrics.merged(
        [part_metrics for part_metrics, _ in parts], seed=spec.seed
    )
    elapsed = time.perf_counter() - begin
    if tel is not None:
        tel.record_span(
            "traffic.simulate", elapsed,
            engine=engine, clients=spec.clients, workers=workers,
        )
        if elapsed > 0:
            tel.gauge(
                "traffic.requests_per_sec",
                metrics.requests / elapsed,
                engine=engine,
            )
    records: tuple[RequestRecord, ...] = ()
    if trace:
        records = tuple(
            sorted(
                (record for _, shard_records in parts
                 for record in shard_records),
                key=lambda r: (r.issued, r.client),
            )
        )
    return TrafficResult(
        spec=spec,
        metrics=metrics,
        elapsed=elapsed,
        workers=workers,
        temporal=temporal is not None,
        trace=records,
        channels=channels is not None,
    )
