"""Counter-based per-client RNG substreams.

The traffic layer derives every client's behaviour from its index alone,
which is what makes population sharding exact.  The original derivation
seeded a Mersenne Twister per client from a string key - correct, but the
SHA-512 key expansion costs microseconds per client, which at a million
clients is more wall-clock than the whole simulation budget of the
vectorized engine.

:class:`Substream` replaces it with a *counter-based* generator built on
the splitmix64 finalizer: a stream is a base word derived from
``(seed, tag, index)``, and draw ``j`` is ``mix64(base + j * PHI)``.
Each draw is a pure function of ``(stream, position)``, which buys three
properties the engines rely on:

* **O(1) stream creation** - no state to expand, so spinning up a
  million client streams is a million additions;
* **random access** - the vectorized engine materializes draw matrices
  ``U[client, position]`` directly with numpy ``uint64`` arithmetic and
  gets bit-identical values to the scalar path (pinned by
  ``tests/traffic/test_substreams.py``);
* **shard invariance** - a client's stream depends only on the global
  seed and its index, never on which shard simulates it.

``random()`` follows CPython's recipe for 53-bit doubles (take the top
53 bits, scale by 2^-53), so draws are uniform on ``[0, 1)`` with the
same resolution as :class:`random.Random`.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Sequence

MASK64 = (1 << 64) - 1

#: The golden-ratio increment of splitmix64 (Steele, Lea & Flood 2014).
PHI = 0x9E3779B97F4A7C15
_M1 = 0xBF58476D1CE4E5B9
_M2 = 0x94D049BB133111EB

_INV53 = 2.0 ** -53

#: Domain tags keeping the per-purpose streams of one (seed, index)
#: disjoint (see :func:`repro.traffic.arrivals.arrival_rng` for why).
TAG_CLIENT = 1
TAG_ARRIVAL = 2


def mix64(z: int) -> int:
    """The splitmix64 finalizer: a 64-bit avalanche permutation."""
    z &= MASK64
    z = ((z ^ (z >> 30)) * _M1) & MASK64
    z = ((z ^ (z >> 27)) * _M2) & MASK64
    return z ^ (z >> 31)


def fold_seed(seed: int) -> int:
    """Fold an arbitrary Python int into one 64-bit word."""
    word = seed & MASK64
    rest = seed >> 64
    while rest not in (0, -1):
        word = mix64(word ^ (rest & MASK64))
        rest >>= 64
    return word


def stream_root(seed: int, tag: int) -> int:
    """The shared root word of one (seed, tag) family of streams."""
    return mix64(fold_seed(seed) ^ ((tag * _M2) & MASK64))


def stream_base(seed: int, tag: int, index: int) -> int:
    """The base word of stream ``index`` - O(1), no key expansion."""
    return mix64((stream_root(seed, tag) + ((index * PHI) & MASK64)) & MASK64)


class Substream:
    """One counter-based uniform stream (the per-client RNG).

    Implements the slice of the :class:`random.Random` API the traffic
    layer consumes - ``random()``, ``choices()``, ``getrandbits()`` -
    with every draw a pure function of ``(base, position)``.
    """

    __slots__ = ("_base", "_count")

    def __init__(self, base: int) -> None:
        self._base = base
        self._count = 0

    @property
    def base(self) -> int:
        """The stream's base word (its identity)."""
        return self._base

    @property
    def position(self) -> int:
        """Draws consumed so far."""
        return self._count

    def _next_word(self) -> int:
        self._count += 1
        return mix64((self._base + self._count * PHI) & MASK64)

    def random(self) -> float:
        """One uniform draw on ``[0, 1)`` (53-bit resolution)."""
        return (self._next_word() >> 11) * _INV53

    def getrandbits(self, k: int) -> int:
        """``k`` random bits assembled from 64-bit words."""
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        out = 0
        shift = 0
        while k > 0:
            take = min(k, 64)
            out |= (self._next_word() >> (64 - take)) << shift
            shift += take
            k -= take
        return out

    def choices(
        self,
        population: Sequence,
        weights: Sequence[float] | None = None,
        *,
        cum_weights: Sequence[float] | None = None,
        k: int = 1,
    ) -> list:
        """Weighted draws with replacement (the ``random.choices`` slice
        :func:`repro.sim.workload.sample_accesses` uses).

        Bit-identical to CPython's implementation given the same uniform
        stream: one ``random()`` per draw, positioned by bisecting the
        running totals.
        """
        n = len(population)
        if cum_weights is None:
            if weights is None:
                return [
                    population[int(self.random() * n)] for _ in range(k)
                ]
            cum_weights = list(accumulate(weights))
        elif weights is not None:
            raise TypeError(
                "cannot specify both weights and cumulative weights"
            )
        if len(cum_weights) != n:
            raise ValueError(
                "the number of weights does not match the population"
            )
        total = cum_weights[-1] + 0.0
        if total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        hi = n - 1
        return [
            population[bisect_right(cum_weights, self.random() * total, 0, hi)]
            for _ in range(k)
        ]

    def __repr__(self) -> str:
        return f"Substream(base={self._base:#018x}, position={self._count})"


def uniform_matrix(seed: int, tag: int, lo: int, hi: int, draws: int):
    """Draw matrix ``U[i - lo, j]`` = draw ``j + 1`` of stream ``i``.

    The vectorized mirror of :class:`Substream`: entry ``[i - lo, j]``
    equals what ``Substream(stream_base(seed, tag, i))`` returns on its
    ``(j + 1)``-th ``random()`` call, bit for bit.  Requires numpy (the
    scalar path never does).
    """
    import numpy as np

    root = np.uint64(stream_root(seed, tag))
    idx = np.arange(lo, hi, dtype=np.uint64)
    bases = _mix64_np(root + idx * np.uint64(PHI))
    if draws == 0:
        return np.empty((hi - lo, 0), dtype=np.float64)
    j = (np.arange(1, draws + 1, dtype=np.uint64)) * np.uint64(PHI)
    words = _mix64_np(bases[:, None] + j[None, :])
    return (words >> np.uint64(11)).astype(np.float64) * _INV53


def stream_bases(seed: int, tag: int, lo: int, hi: int):
    """Vectorized :func:`stream_base` over ``[lo, hi)`` (numpy uint64)."""
    import numpy as np

    root = np.uint64(stream_root(seed, tag))
    idx = np.arange(lo, hi, dtype=np.uint64)
    return _mix64_np(root + idx * np.uint64(PHI))


def _mix64_np(z):
    """The splitmix64 finalizer over a numpy ``uint64`` array."""
    import numpy as np

    z = (z ^ (z >> np.uint64(30))) * np.uint64(_M1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_M2)
    return z ^ (z >> np.uint64(31))
