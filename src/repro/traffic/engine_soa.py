"""The vectorized structure-of-arrays traffic engine.

:func:`simulate_shard_soa` is a drop-in replacement for the object
engine's shard runner (``repro.traffic.simulate._simulate_shard``):
same inputs, same :class:`~repro.traffic.metrics.TrafficMetrics` out,
bit-identical - but client state lives in flat numpy arrays (next-event
slot, remaining requests, per-client cache rows) instead of one session
object per client, and whole *cohorts* advance per batch instead of one
heap event per client:

* uniforms come pre-drawn from the counter-based substreams
  (:func:`repro.traffic.substreams.uniform_matrix`) - request ``r`` of
  client ``i`` reads a fixed matrix cell, exactly the draw the scalar
  session would have made;
* fault-free retrievals gather from the precomputed per-``(file,
  phase)`` tables (:class:`~repro.traffic.cohorts.RetrievalTables`);
* faulty retrievals batch the fault decisions: one
  ``lost_in`` call per wave over the *union* of candidate occurrence
  slots, then a short scalar walk per member over the pre-decided
  outcomes (:class:`_FaultResolver`);
* client caches (LRU / PIX) are rows of a matrix - victims come from a
  vectorized argmin over composite keys that reproduce the scalar
  policies' ``min(resident, key=...)`` orders exactly;
* metrics accumulate as numpy counters and per-wave histogram merges,
  finalized through :meth:`TrafficMetrics.from_totals` - exact mode is
  order-independent, which is what makes any-order batch accumulation
  legal.

Temporal (version-consistent) populations batch the per-request draws
and cohort bookkeeping but retrieve items through the scalar
``_VersionedRetriever`` - transactions are short sequential item chains
whose cost is dominated by the memoized retrieval, not the loop.

The equivalence is pinned by ``tests/traffic/test_engine_soa.py``:
per-shard metrics equal the object engine's field for field across
arrival x popularity x cache x fault-model grids.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.bdisk.multichannel import ChannelSet
from repro.bdisk.program import BroadcastProgram
from repro.obs import telemetry as obs
from repro.rtdb.spec import TemporalSpec
from repro.sim.client import retrieve
from repro.sim.faults import FaultModel, NoFaults, lost_in
from repro.traffic.arrivals import popularity_cdf, popularity_weights
from repro.traffic.clients import RequestRecord
from repro.traffic.cohorts import (
    MultiChannelTables,
    RetrievalTables,
    ThinkSampler,
    arrival_vector,
    cohort_waves,
    file_draw,
)
from repro.traffic.metrics import TrafficMetrics
from repro.traffic.spec import TrafficSpec
from repro.traffic.substreams import TAG_CLIENT, uniform_matrix

#: Default cohort window (slots).  Correctness never depends on the
#: window - clients are independent and the accumulators are
#: order-independent - so the default is "everything", which maximizes
#: batch width; tests shrink it to exercise the wave machinery.
_DEFAULT_WINDOW = 1 << 61

#: Uniform draws budgeted per client block (bounds peak memory).
_BLOCK_BUDGET = 1 << 22
_BLOCK_MIN = 4096
_BLOCK_MAX = 1 << 20
#: Faulty channels bound the per-wave ``lost_in`` union (and the
#: resolver's candidate matrices) with a smaller block.
_BLOCK_FAULTY = 1 << 16

#: Candidate occurrences materialized per member per resolver round.
_FAULT_CHUNK = 64


def _block_size(clients: int, per_client: int, faulty: bool) -> int:
    """Clients per processing block, sized to the draw budget."""
    block = max(
        1,
        min(
            clients,
            _BLOCK_MAX,
            max(_BLOCK_MIN, _BLOCK_BUDGET // max(1, per_client)),
        ),
    )
    if faulty:
        block = min(block, _BLOCK_FAULTY)
    return block


def _lexical_rank(catalogue: Sequence[str]) -> np.ndarray:
    """``rank[fid]`` = position of the file's name in sorted order."""
    order = sorted(range(len(catalogue)), key=lambda i: catalogue[i])
    rank = np.empty(len(catalogue), dtype=np.int64)
    for position, fid in enumerate(order):
        rank[fid] = position
    return rank


def _pix_rank(
    catalogue: Sequence[str],
    weights: Sequence[float],
    tables: RetrievalTables,
) -> np.ndarray:
    """``rank[fid]`` = the file's position in PIX eviction order.

    Reproduces ``PixCache.for_program`` + ``PixCache.victim`` exactly:
    frequency is ``schedule total / max(1, size) / period`` (that float
    expression order), the score is ``probability / frequency``, and
    ties break on the name.  The score order is static, so the whole
    policy collapses to one precomputed rank per file.
    """
    n = len(catalogue)
    totals = tables.sched_total.tolist()
    sizes = tables.m_needed.tolist()
    scores = [
        weights[i] / (totals[i] / max(1, sizes[i]) / tables.period)
        for i in range(n)
    ]
    order = sorted(range(n), key=lambda i: (scores[i], catalogue[i]))
    rank = np.empty(n, dtype=np.int64)
    for position, fid in enumerate(order):
        rank[fid] = position
    return rank


class _FaultResolver:
    """Batched retrievals over a stochastic channel.

    Per wave: materialize the next ``_FAULT_CHUNK`` candidate
    occurrences for every unresolved member (broadcasting over the
    tables' flat occurrence arrays), decide the *union* of their slots
    in one ``lost_in`` call, then walk each member's pre-decided row
    scalar-side collecting distinct blocks - exactly the occurrence
    walk :func:`repro.sim.client.retrieve` performs, with the fault
    queries hoisted out of the per-client loop.  Decisions are
    deterministic per ``(seed, slot)``, so query batching cannot change
    an outcome.
    """

    __slots__ = ("_tables", "_model")

    def __init__(self, tables: RetrievalTables, model: FaultModel) -> None:
        self._tables = tables
        self._model = model

    def resolve(
        self, file_ids: np.ndarray, starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(latency, finish)`` per request; latency ``-1`` on abort."""
        t = self._tables
        cycle = t.cycle
        m = len(file_ids)
        horizons = t.horizons[file_ids]
        end = starts + horizons
        latency = np.full(m, -1, dtype=np.int64)
        finish = starts + horizons - 1  # the abort default
        need = np.maximum(1, t.m_needed[file_ids])
        count = t.counts[file_ids]
        offset = t.occ_offsets[file_ids]

        # Occurrence pointer: candidate k of member i is global
        # occurrence g[i] + k counted from the base of the start's
        # cycle copy (divmod recovers cycle copy + index within).
        quotient, phase = np.divmod(starts, cycle)
        base = quotient * cycle
        g = np.empty(m, dtype=np.int64)
        for fid in np.unique(file_ids):
            rows = file_ids == fid
            lo, hi = t.occ_offsets[fid], t.occ_offsets[fid + 1]
            g[rows] = np.searchsorted(
                t.occ_slots[lo:hi], phase[rows], side="left"
            )

        seen: list[set[int]] = [set() for _ in range(m)]
        steps = np.arange(_FAULT_CHUNK, dtype=np.int64)
        unresolved = np.arange(m, dtype=np.int64)
        while unresolved.size:
            idx = unresolved
            candidates = g[idx][:, None] + steps[None, :]
            copies, within = np.divmod(candidates, count[idx][:, None])
            flat = offset[idx][:, None] + within
            slots = base[idx][:, None] + copies * cycle + t.occ_slots[flat]
            blocks = t.occ_blocks[flat]
            valid = slots < end[idx][:, None]
            lost = np.zeros_like(valid)
            queried = slots[valid]
            if queried.size:
                unique = np.unique(queried)
                decisions = np.asarray(
                    lost_in(self._model, unique.tolist()), dtype=bool
                )
                lost[valid] = decisions[np.searchsorted(unique, queried)]
            still: list[int] = []
            for row in range(len(idx)):
                member = int(idx[row])
                collected = seen[member]
                needed = int(need[member])
                valid_row = valid[row].tolist()
                lost_row = lost[row].tolist()
                block_row = blocks[row].tolist()
                slot_row = slots[row].tolist()
                done = False
                for k in range(_FAULT_CHUNK):
                    if not valid_row[k]:
                        done = True  # horizon exhausted: abort defaults
                        break
                    if lost_row[k]:
                        continue
                    block = block_row[k]
                    if block not in collected:
                        collected.add(block)
                        if len(collected) >= needed:
                            finish[member] = slot_row[k]
                            latency[member] = (
                                slot_row[k] - int(starts[member]) + 1
                            )
                            done = True
                            break
                if not done:
                    g[member] += _FAULT_CHUNK
                    still.append(member)
            unresolved = np.asarray(still, dtype=np.int64)
        return latency, finish


class _VectorCache:
    """Per-client file caches as matrix rows.

    ``resident[i, c]`` holds a file id (or ``-1``); ``last_use[i, c]``
    the LRU clock.  Victim selection reproduces the scalar policies'
    ``min(resident, key=...)`` exactly: LRU's key ``(last_use, name)``
    becomes ``last_use * n + name_rank`` (a strictly order-preserving
    collapse - ``name_rank < n``), PIX's static ``(score, name)`` order
    is the precomputed ``victim_rank``.  As in the scalar
    ``CachingClient``: the policy sees the access *before* the hit
    check, only completed retrievals insert, and eviction happens only
    on insertion into a full row.
    """

    __slots__ = (
        "resident", "last_use", "lru", "victim_rank", "n_files",
        "hits", "misses", "evictions",
    )

    def __init__(
        self,
        clients: int,
        capacity: int,
        lru: bool,
        victim_rank: np.ndarray,
        n_files: int,
    ) -> None:
        self.resident = np.full((clients, capacity), -1, dtype=np.int64)
        self.last_use = (
            np.zeros((clients, capacity), dtype=np.int64) if lru else None
        )
        self.lru = lru
        self.victim_rank = victim_rank
        self.n_files = n_files
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(
        self,
        members: np.ndarray,
        file_ids: np.ndarray,
        now: np.ndarray,
        resolve: Callable[[np.ndarray, np.ndarray], tuple],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(hit, latency, finish)`` per member; hits cost zero slots."""
        rows = self.resident[members]
        matches = rows == file_ids[:, None]
        hit = matches.any(axis=1)
        if self.lru and hit.any():
            # on_access for hits: stamp the hit slot's clock.  Misses
            # stamp at insertion (same slot, same clock value); a miss
            # that never completes leaves no resident entry, and the
            # scalar policy's phantom last-use entry for it can never
            # be consulted - victims come from resident files only.
            slot = matches.argmax(axis=1)
            self.last_use[members[hit], slot[hit]] = now[hit]
        n_hits = int(np.count_nonzero(hit))
        self.hits += n_hits
        miss = ~hit
        latency = np.zeros(len(members), dtype=np.int64)
        finish = now.copy()
        if n_hits < len(members):
            self.misses += len(members) - n_hits
            miss_files = file_ids[miss]
            miss_now = now[miss]
            miss_latency, miss_finish = resolve(miss_files, miss_now)
            latency[miss] = miss_latency
            finish[miss] = miss_finish
            completed = miss_latency >= 0
            if completed.any():
                self._insert(
                    members[miss][completed],
                    miss_files[completed],
                    miss_now[completed],
                )
        return hit, latency, finish

    def _insert(
        self, members: np.ndarray, file_ids: np.ndarray, now: np.ndarray
    ) -> None:
        rows = self.resident[members]
        occupied = rows >= 0
        full = occupied.all(axis=1)
        # First empty slot where there is one...
        slot = np.where(full, 0, (~occupied).argmax(axis=1))
        if full.any():
            # ...victim slot (policy-order argmin) where there is not.
            full_members = members[full]
            full_rows = rows[full]
            if self.lru:
                key = (
                    self.last_use[full_members] * self.n_files
                    + self.victim_rank[full_rows]
                )
            else:
                key = self.victim_rank[full_rows]
            slot[full] = key.argmin(axis=1)
            self.evictions += int(np.count_nonzero(full))
        self.resident[members, slot] = file_ids
        if self.lru:
            self.last_use[members, slot] = now


class _ShardAccumulator:
    """Order-independent numpy-side metric totals for one shard."""

    __slots__ = (
        "requests", "completions", "aborts", "deadline_misses",
        "latency_sum", "worst", "counts", "req_by_file", "hit_by_file",
    )

    def __init__(self, n_files: int) -> None:
        self.requests = 0
        self.completions = 0
        self.aborts = 0
        self.deadline_misses = 0
        self.latency_sum = 0
        self.worst = 0
        self.counts: dict[int, int] = {}
        self.req_by_file = np.zeros(n_files, dtype=np.int64)
        self.hit_by_file = np.zeros(n_files, dtype=np.int64)

    def record_wave(
        self,
        file_ids: np.ndarray,
        latency: np.ndarray,
        deadline_by_file: np.ndarray,
    ) -> None:
        n = len(file_ids)
        self.requests += n
        self.req_by_file += np.bincount(
            file_ids, minlength=len(self.req_by_file)
        )
        completed = latency >= 0
        n_completed = int(np.count_nonzero(completed))
        self.completions += n_completed
        self.aborts += n - n_completed
        if not n_completed:
            return
        files = file_ids[completed]
        values = latency[completed]
        self.hit_by_file += np.bincount(
            files, minlength=len(self.hit_by_file)
        )
        self.latency_sum += int(values.sum())
        worst = int(values.max())
        if worst > self.worst:
            self.worst = worst
        self.deadline_misses += int(
            np.count_nonzero(values > deadline_by_file[files])
        )
        counts = self.counts
        unique, tally = np.unique(values, return_counts=True)
        for value, n_value in zip(unique.tolist(), tally.tolist()):
            counts[value] = counts.get(value, 0) + n_value

    def finalize(
        self,
        spec: TrafficSpec,
        catalogue: Sequence[str],
        cache_hits: int,
        cache_misses: int,
        cache_evictions: int,
    ) -> TrafficMetrics:
        req = self.req_by_file.tolist()
        hit = self.hit_by_file.tolist()
        return TrafficMetrics.from_totals(
            seed=spec.seed,
            requests=self.requests,
            completions=self.completions,
            aborts=self.aborts,
            deadline_misses=self.deadline_misses,
            latency_sum=self.latency_sum,
            worst=self.worst,
            counts=self.counts,
            requests_by_file={
                catalogue[i]: n for i, n in enumerate(req) if n
            },
            hits_by_file={
                catalogue[i]: n for i, n in enumerate(hit) if n
            },
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            cache_evictions=cache_evictions,
        )


def simulate_shard_soa(
    program: BroadcastProgram | None,
    catalogue: Sequence[str],
    spec: TrafficSpec,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    faults: Any,
    temporal: TemporalSpec | None,
    lo: int,
    hi: int,
    trace: bool,
    *,
    tables: RetrievalTables | None = None,
    cohort_window: int | None = None,
    channels: ChannelSet | None = None,
    mc_tables: MultiChannelTables | None = None,
) -> tuple[TrafficMetrics, list[RequestRecord]]:
    """Simulate clients ``[lo, hi)`` with the vectorized engine.

    Same contract as the object engine's shard runner; ``tables`` lets
    pool workers pass in shared-memory retrieval tables (``program``
    may then be ``None`` for non-temporal populations), and
    ``cohort_window`` overrides the batching window (tests narrow it to
    exercise wave boundaries - outcomes never depend on it).

    ``channels`` switches the shard to the multi-channel retrieval
    protocol (``program`` is then ignored); ``mc_tables`` optionally
    supplies prebuilt (possibly shared-memory) per-channel tables - a
    fault-free non-temporal shard can run from the tables alone with
    ``channels=None``.
    """
    from repro.traffic.simulate import (
        _build_fault_model,
        _channel_fault_models,
    )

    catalogue = tuple(catalogue)
    if channels is not None or mc_tables is not None:
        count = channels.count if channels is not None else mc_tables.count
        channel_faults = _channel_fault_models(faults, count)
        if temporal is not None:
            if channels is None:
                raise ValueError(
                    "temporal multichannel shards need the channel set "
                    "itself, not just tables"
                )
            return _simulate_temporal_shard(
                None, catalogue, spec, file_sizes, deadlines, None,
                temporal, lo, hi, trace, cohort_window,
                channels=channels, channel_faults=channel_faults,
            )
        return _simulate_multichannel_shard(
            channels, mc_tables, catalogue, spec, file_sizes, deadlines,
            channel_faults, lo, hi, trace, cohort_window,
        )
    fault_model = _build_fault_model(faults)
    if temporal is not None:
        return _simulate_temporal_shard(
            program, catalogue, spec, file_sizes, deadlines, fault_model,
            temporal, lo, hi, trace, cohort_window,
        )
    if tables is None:
        if program is None:
            raise ValueError(
                "simulate_shard_soa needs a program or prebuilt tables"
            )
        tables = RetrievalTables.build(
            program, catalogue, file_sizes, spec.max_slots
        )

    fault_free = isinstance(fault_model, NoFaults)
    resolver = (
        None if fault_free else _FaultResolver(tables, fault_model)
    )
    # Counter cells resolved once per shard; the per-WAVE (never
    # per-request) telemetry cost is a None check when disabled, so the
    # vectorized hot path keeps its bench floor.  Wave composition
    # depends on the shard layout, hence "shape" stability.
    tel = obs.current()
    c_waves = c_lut = c_walker = h_cohort = None
    if tel is not None:
        c_waves = tel.counter("soa.waves", stability="shape")
        h_cohort = tel.histogram("soa.cohort_size", stability="shape")
        c_lut = tel.counter(
            "traffic.retrievals", stability="shape",
            oracle="soa", kind="lut",
        )
        c_walker = tel.counter(
            "traffic.retrievals", stability="shape",
            oracle="soa", kind="walker",
        )
    cdf = popularity_cdf(
        spec.popularity,
        len(catalogue),
        zipf_skew=spec.zipf_skew,
        hot_fraction=spec.hot_fraction,
        hot_weight=spec.hot_weight,
    )
    cum_weights = np.asarray(cdf, dtype=np.float64)
    total_weight = cdf[-1] + 0.0
    deadline_by_file = np.asarray(
        [deadlines[file] for file in catalogue], dtype=np.int64
    )
    think = ThinkSampler(spec.think_time) if spec.think_time > 0 else None
    window = cohort_window if cohort_window is not None else _DEFAULT_WINDOW

    victim_rank: np.ndarray | None = None
    lru = True
    if spec.cache == "pix":
        lru = False
        weights = popularity_weights(
            spec.popularity,
            len(catalogue),
            zipf_skew=spec.zipf_skew,
            hot_fraction=spec.hot_fraction,
            hot_weight=spec.hot_weight,
        )
        victim_rank = _pix_rank(catalogue, weights, tables)
    elif spec.cache is not None:
        victim_rank = _lexical_rank(catalogue)

    def resolve(
        file_ids: np.ndarray, starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if resolver is None:
            if c_lut is not None:
                c_lut.add(len(file_ids))
            return tables.lookup(file_ids, starts)
        if c_walker is not None:
            c_walker.add(len(file_ids))
        return resolver.resolve(file_ids, starts)

    requests = spec.requests_per_client
    stride = 2 if spec.think_time > 0 else 1
    per_client = requests * stride + 2 * (
        spec.cache_capacity if spec.cache is not None else 0
    )
    block = _block_size(hi - lo, per_client, not fault_free)

    accumulator = _ShardAccumulator(len(catalogue))
    cache_hits = cache_misses = cache_evictions = 0
    trace_waves: list[tuple] | None = [] if trace else None

    for block_lo in range(lo, hi, block):
        block_hi = min(hi, block_lo + block)
        n = block_hi - block_lo
        draws = uniform_matrix(
            spec.seed, TAG_CLIENT, block_lo, block_hi, requests * stride
        )
        next_slot = arrival_vector(spec, block_lo, block_hi)
        left = np.full(n, requests, dtype=np.int64)
        cache: _VectorCache | None = None
        if spec.cache is not None:
            cache = _VectorCache(
                n, spec.cache_capacity, lru, victim_rank, len(catalogue)
            )
        for members in cohort_waves(next_slot, left, window):
            if c_waves is not None:
                c_waves.add()
                h_cohort.observe(len(members))
            now = next_slot[members]
            position = (requests - left[members]) * stride
            file_ids = file_draw(
                cum_weights, total_weight, draws[members, position]
            )
            if cache is None:
                latency, finish = resolve(file_ids, now)
                hit = None
            else:
                hit, latency, finish = cache.access(
                    members, file_ids, now, resolve
                )
            accumulator.record_wave(file_ids, latency, deadline_by_file)
            if trace_waves is not None:
                trace_waves.append(
                    (members + block_lo, file_ids, now, latency, hit)
                )
            left[members] -= 1
            upcoming = finish + 1
            if think is not None:
                upcoming = upcoming + think.sample(
                    draws[members, position + 1]
                )
            next_slot[members] = upcoming
        if cache is not None:
            cache_hits += cache.hits
            cache_misses += cache.misses
            cache_evictions += cache.evictions

    metrics = accumulator.finalize(
        spec, catalogue, cache_hits, cache_misses, cache_evictions
    )
    if tel is not None:
        from repro.traffic.simulate import _record_shard_metrics

        _record_shard_metrics(metrics, "soa")
    records: list[RequestRecord] = []
    if trace_waves is not None:
        for clients, file_ids, issued, latency, hit in trace_waves:
            hit_list = (
                hit.tolist() if hit is not None else [False] * len(clients)
            )
            for c, f, s, l, h in zip(
                clients.tolist(), file_ids.tolist(), issued.tolist(),
                latency.tolist(), hit_list,
            ):
                records.append(
                    RequestRecord(
                        client=c,
                        file=catalogue[f],
                        issued=s,
                        latency=None if l < 0 else l,
                        deadline=int(deadline_by_file[f]),
                        cache_hit=bool(h),
                    )
                )
    return metrics, records


def _simulate_temporal_shard(
    program: BroadcastProgram | None,
    catalogue: tuple[str, ...],
    spec: TrafficSpec,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    fault_model: FaultModel | None,
    temporal: TemporalSpec,
    lo: int,
    hi: int,
    trace: bool,
    cohort_window: int | None,
    *,
    channels: ChannelSet | None = None,
    channel_faults: Sequence[FaultModel] | None = None,
) -> tuple[TrafficMetrics, list[RequestRecord]]:
    """The temporal population under cohort batching.

    Draws and cohort bookkeeping are vectorized; item retrievals go
    through the scalar memoized ``_VersionedRetriever`` (a transaction
    is a short sequential chain - each item's start depends on the
    previous finish - so there is nothing to batch inside it).  Metrics
    feed a real :class:`TrafficMetrics` in wave order, which is legal
    because exact mode is order-independent.

    With ``channels`` each client gets its own quorum retriever (tuned
    state persists across that client's transactions), mirroring the
    object engine's per-session retrievers exactly.
    """
    from repro.traffic.simulate import (
        _QuorumRetriever,
        _temporal_mix,
        _VersionedRetriever,
    )

    weights = popularity_weights(
        spec.popularity,
        len(catalogue),
        zipf_skew=spec.zipf_skew,
        hot_fraction=spec.hot_fraction,
        hot_weight=spec.hot_weight,
    )
    mix, mix_weights = _temporal_mix(temporal, catalogue, deadlines, weights)
    cdf = list(accumulate(mix_weights))
    cum_weights = np.asarray(cdf, dtype=np.float64)
    total_weight = cdf[-1] + 0.0
    server = temporal.server()
    versioned = (
        None
        if channels is not None
        else _VersionedRetriever(
            program, file_sizes, server, fault_model, spec.max_slots
        )
    )
    max_age = temporal.max_age_slots()
    metrics = TrafficMetrics(seed=spec.seed)
    records: list[RequestRecord] | None = [] if trace else None
    think = ThinkSampler(spec.think_time) if spec.think_time > 0 else None
    window = cohort_window if cohort_window is not None else _DEFAULT_WINDOW
    requests = spec.requests_per_client
    stride = 2 if spec.think_time > 0 else 1
    block = _block_size(hi - lo, requests * stride, False)

    for block_lo in range(lo, hi, block):
        block_hi = min(hi, block_lo + block)
        n = block_hi - block_lo
        draws = uniform_matrix(
            spec.seed, TAG_CLIENT, block_lo, block_hi, requests * stride
        )
        next_slot = arrival_vector(spec, block_lo, block_hi)
        left = np.full(n, requests, dtype=np.int64)
        retrievers: dict[int, Any] = {}
        for members in cohort_waves(next_slot, left, window):
            now = next_slot[members]
            position = (requests - left[members]) * stride
            picks = file_draw(
                cum_weights, total_weight, draws[members, position]
            )
            thinks = (
                think.sample(draws[members, position + 1])
                if think is not None
                else None
            )
            for row, member in enumerate(members.tolist()):
                start = int(now[row])
                txn = mix[picks[row]]
                clock = start
                finish = start
                aborted = False
                if channels is not None:
                    reader = retrievers.get(member)
                    if reader is None:
                        reader = retrievers[member] = _QuorumRetriever(
                            channels, file_sizes, server, channel_faults,
                            spec.max_slots, metrics,
                        )
                else:
                    reader = versioned
                for item in txn.items:
                    latency, finish, age, torn = reader(item, clock)
                    metrics.record_versioned_read(
                        age,
                        age is not None and age <= max_age[item],
                        torn,
                    )
                    if latency is None:
                        aborted = True
                        break
                    clock = finish + 1
                response = None if aborted else finish - start + 1
                metrics.record(txn.name, response, txn.deadline_slots)
                if records is not None:
                    records.append(
                        RequestRecord(
                            client=block_lo + member,
                            file=txn.name,
                            issued=start,
                            latency=response,
                            deadline=txn.deadline_slots,
                            cache_hit=False,
                        )
                    )
                next_slot[member] = finish + 1 + (
                    int(thinks[row]) if thinks is not None else 0
                )
            left[members] -= 1
    if obs.current() is not None:
        from repro.traffic.simulate import _record_shard_metrics

        _record_shard_metrics(metrics, "soa")
    return metrics, records if records is not None else []


def _simulate_multichannel_shard(
    channels: ChannelSet | None,
    mc_tables: MultiChannelTables | None,
    catalogue: tuple[str, ...],
    spec: TrafficSpec,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    channel_faults: Sequence[FaultModel] | None,
    lo: int,
    hi: int,
    trace: bool,
    cohort_window: int | None,
) -> tuple[TrafficMetrics, list[RequestRecord]]:
    """The multi-channel population under cohort batching.

    Draws and cohort bookkeeping are vectorized; the channel choice is
    a short scalar walk per member against the per-channel tables - a
    request's candidate set depends on the client's current tuned
    channel, which the previous request just moved, so the choice
    cannot batch across members of a wave without changing outcomes.
    Fault-free outcomes come straight from the chosen channel's table;
    faulty channels re-walk the chosen channel's real program (faults
    never steer the choice itself, exactly as in
    :func:`repro.sim.client.retrieve_multichannel`).  Metrics feed a
    real :class:`TrafficMetrics` in wave order (exact mode is
    order-independent), so shards merge bit-identically with the object
    engine's.
    """
    if mc_tables is None:
        mc_tables = MultiChannelTables.build(
            channels, catalogue, file_sizes, spec.max_slots
        )
    faulty = channel_faults is not None and any(
        not isinstance(model, NoFaults) for model in channel_faults
    )
    if faulty and channels is None:
        raise ValueError(
            "faulty multichannel shards need the channel set itself, "
            "not just tables"
        )

    tel = obs.current()
    c_waves = h_cohort = c_mc = None
    if tel is not None:
        c_waves = tel.counter("soa.waves", stability="shape")
        h_cohort = tel.histogram("soa.cohort_size", stability="shape")
        c_mc = tel.counter(
            "traffic.retrievals", stability="shape",
            oracle="soa", kind="multichannel",
        )
    cdf = popularity_cdf(
        spec.popularity,
        len(catalogue),
        zipf_skew=spec.zipf_skew,
        hot_fraction=spec.hot_fraction,
        hot_weight=spec.hot_weight,
    )
    cum_weights = np.asarray(cdf, dtype=np.float64)
    total_weight = cdf[-1] + 0.0
    metrics = TrafficMetrics(seed=spec.seed)
    records: list[RequestRecord] | None = [] if trace else None
    think = ThinkSampler(spec.think_time) if spec.think_time > 0 else None
    window = cohort_window if cohort_window is not None else _DEFAULT_WINDOW
    requests = spec.requests_per_client
    stride = 2 if spec.think_time > 0 else 1
    block = _block_size(hi - lo, requests * stride, faulty)

    for block_lo in range(lo, hi, block):
        block_hi = min(hi, block_lo + block)
        n = block_hi - block_lo
        draws = uniform_matrix(
            spec.seed, TAG_CLIENT, block_lo, block_hi, requests * stride
        )
        next_slot = arrival_vector(spec, block_lo, block_hi)
        left = np.full(n, requests, dtype=np.int64)
        tuned = np.zeros(n, dtype=np.int64)  # clients sign on tuned to 0
        for members in cohort_waves(next_slot, left, window):
            if c_waves is not None:
                c_waves.add()
                h_cohort.observe(len(members))
                c_mc.add(len(members))
            now = next_slot[members]
            position = (requests - left[members]) * stride
            file_ids = file_draw(
                cum_weights, total_weight, draws[members, position]
            )
            thinks = (
                think.sample(draws[members, position + 1])
                if think is not None
                else None
            )
            for row, member in enumerate(members.tolist()):
                start = int(now[row])
                fid = int(file_ids[row])
                channel, listen, latency, finish = mc_tables.choose(
                    fid, start, int(tuned[member])
                )
                completed = latency >= 0
                if channel_faults is not None:
                    model = channel_faults[channel]
                    if not isinstance(model, NoFaults):
                        horizon = mc_tables.horizon(channel, fid)
                        file = catalogue[fid]
                        result = retrieve(
                            channels.programs[channel],
                            file,
                            file_sizes[file],
                            start=listen,
                            faults=model,
                            need_distinct=True,
                            max_slots=horizon,
                        )
                        completed = result.completed
                        finish = (
                            result.finish_slot
                            if result.completed
                            and result.finish_slot is not None
                            else listen + horizon - 1
                        )
                if channel != tuned[member]:
                    tuned[member] = channel
                    metrics.record_channel_switches(1)
                response = finish - start + 1 if completed else None
                file = catalogue[fid]
                metrics.record(file, response, deadlines[file])
                if records is not None:
                    records.append(
                        RequestRecord(
                            client=block_lo + member,
                            file=file,
                            issued=start,
                            latency=response,
                            deadline=deadlines[file],
                            cache_hit=False,
                        )
                    )
                next_slot[member] = finish + 1 + (
                    int(thinks[row]) if thinks is not None else 0
                )
            left[members] -= 1
    if tel is not None:
        from repro.traffic.simulate import _record_shard_metrics

        _record_shard_metrics(metrics, "soa")
    return metrics, records if records is not None else []


def _shard_task_shm_mc(
    meta: Mapping[str, Any],
    catalogue: Sequence[str],
    spec: TrafficSpec,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    lo: int,
    hi: int,
    trace: bool,
    *,
    telemetry: bool = False,
) -> tuple[TrafficMetrics, list[RequestRecord], dict[str, Any] | None]:
    """Pool-worker entry for fault-free multichannel shards.

    Same contract as :func:`_shard_task_shm`, but the segment holds one
    set of retrieval tables per channel plus the candidates map - the
    worker rebuilds the whole channel-choice machinery from the mapping
    and never sees a program.  Faulty or temporal multichannel shards
    go through the generic pickling task instead (they need the real
    programs or the channel set).
    """
    from repro.traffic.shm_index import attach_multichannel_tables

    tables, shared = attach_multichannel_tables(meta)
    try:
        if not telemetry:
            metrics, records = simulate_shard_soa(
                None, catalogue, spec, file_sizes, deadlines, None,
                None, lo, hi, trace, mc_tables=tables,
            )
            return metrics, records, None
        with obs.capture() as tel:
            with tel.span("traffic.shard", engine="soa", lo=lo, hi=hi):
                metrics, records = simulate_shard_soa(
                    None, catalogue, spec, file_sizes, deadlines, None,
                    None, lo, hi, trace, mc_tables=tables,
                )
        return metrics, records, tel.to_dict()
    finally:
        shared.close()


def _shard_task_shm(
    meta: Mapping[str, Any],
    catalogue: Sequence[str],
    spec: TrafficSpec,
    file_sizes: Mapping[str, int],
    deadlines: Mapping[str, int],
    faults: Any,
    lo: int,
    hi: int,
    trace: bool,
    *,
    telemetry: bool = False,
) -> tuple[TrafficMetrics, list[RequestRecord], dict[str, Any] | None]:
    """Pool-worker entry: attach the parent's shared-memory tables.

    The worker maps the parent's segment, runs its shard against
    zero-copy views, and unmaps - no program pickle crosses the pool
    and no worker ever reconstructs a ``ProgramIndex``.  With
    ``telemetry`` the worker captures its own registry and ships the
    payload back as the third element (``None`` otherwise).
    """
    from repro.traffic.shm_index import attach_tables

    tables, shared = attach_tables(meta)
    try:
        if not telemetry:
            metrics, records = simulate_shard_soa(
                None, catalogue, spec, file_sizes, deadlines, faults,
                None, lo, hi, trace, tables=tables,
            )
            return metrics, records, None
        with obs.capture() as tel:
            with tel.span("traffic.shard", engine="soa", lo=lo, hi=hi):
                metrics, records = simulate_shard_soa(
                    None, catalogue, spec, file_sizes, deadlines, faults,
                    None, lo, hi, trace, tables=tables,
                )
        return metrics, records, tel.to_dict()
    finally:
        shared.close()
