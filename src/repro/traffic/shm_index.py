"""Shared-memory export of the program's retrieval tables.

A pooled traffic run used to pickle the whole
:class:`~repro.bdisk.program.BroadcastProgram` - occurrence index
included - into every shard task, paying serialization and a per-worker
index rebuild.  The vectorized engine's tables
(:class:`~repro.traffic.cohorts.RetrievalTables`) are flat ``int64``
arrays, so they can instead live in one
:mod:`multiprocessing.shared_memory` segment: the parent packs them
once, workers *attach* and wrap zero-copy numpy views, and nobody ever
re-pickles or reconstructs the index
(``tests/traffic/test_shm_index.py`` counts constructions to prove it).

Lifecycle (the create / attach / unlink contract):

1. the parent calls :meth:`SharedTables.create` before submitting shard
   tasks and passes ``shared.meta`` (a small picklable dict) to each;
2. each worker calls :func:`attach_tables` on the meta, uses the
   returned tables, then :meth:`SharedTables.close` - unmapping its
   view, never destroying the segment;
3. the parent calls :meth:`SharedTables.unlink` (in a ``finally``) once
   the pool has drained, destroying the segment exactly once.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.traffic.cohorts import MultiChannelTables, RetrievalTables


def _create_segment(size: int):
    """A fresh tracked segment (owner side).

    The owner keeps the default tracker registration: it is leak
    insurance (the tracker reclaims the segment if the parent dies
    before its ``finally`` runs), and ``SharedMemory.unlink`` withdraws
    that one registration on the normal path, so the books balance.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=size)


def _attach_segment(name: str):
    """Map an existing segment (worker side) - *without* tracking it.

    An attach must never register with the resource tracker: the
    tracker would unlink the owner's segment on the attacher's behalf,
    and under the ``fork`` start method every worker shares the
    parent's tracker process, whose store is a name-keyed *set* -
    concurrent register/unregister pairs for one name interleave into
    spurious KeyErrors.  Python 3.13 has ``track=False`` for exactly
    this; pre-3.13 interpreters register unconditionally inside
    ``SharedMemory.__init__``, so the registration is suppressed by
    stubbing ``resource_tracker.register`` for the duration of the
    (synchronous) constructor call.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13 interpreters: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *_args, **_kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedTables:
    """One shared-memory segment holding a set of named numpy arrays.

    ``meta`` is the picklable handle workers receive: the segment name
    plus, per array, ``(byte offset, dtype, shape)``.  The instance
    keeps the segment mapped while any of its views are alive - hold it
    as long as the arrays are in use.
    """

    __slots__ = ("meta", "_segment", "_owner")

    def __init__(self, meta: dict[str, Any], segment, owner: bool) -> None:
        self.meta = meta
        self._segment = segment
        self._owner = owner

    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], *, extra: Mapping[str, Any] = ()
    ) -> "SharedTables":
        """Pack ``arrays`` into a fresh segment (parent side).

        ``extra`` carries small picklable scalars (cycle lengths and the
        like) through ``meta`` untouched.
        """
        layout: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        offset = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            layout[name] = (offset, array.dtype.str, array.shape)
            offset += array.nbytes
        segment = _create_segment(max(1, offset))
        for name, array in arrays.items():
            start, _, _ = layout[name]
            array = np.ascontiguousarray(array)
            view = np.ndarray(
                array.shape, dtype=array.dtype,
                buffer=segment.buf, offset=start,
            )
            view[...] = array
        meta = {
            "segment": segment.name,
            "layout": layout,
            "extra": dict(extra),
        }
        return cls(meta, segment, owner=True)

    @classmethod
    def attach(cls, meta: Mapping[str, Any]) -> "SharedTables":
        """Map an existing segment (worker side)."""
        return cls(dict(meta), _attach_segment(meta["segment"]), owner=False)

    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy views of every packed array.

        The views alias the mapping; they die with :meth:`close`.
        """
        if self._segment is None:
            raise SimulationError("shared tables are closed")
        out: dict[str, np.ndarray] = {}
        for name, (offset, dtype, shape) in self.meta["layout"].items():
            out[name] = np.ndarray(
                shape, dtype=np.dtype(dtype),
                buffer=self._segment.buf, offset=offset,
            )
        return out

    @property
    def extra(self) -> dict[str, Any]:
        """The scalar side-channel packed at create time."""
        return dict(self.meta["extra"])

    def close(self) -> None:
        """Unmap this process's view (idempotent; never destroys)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def unlink(self) -> None:
        """Destroy the segment (owner side; closes first, idempotent)."""
        segment = self._segment
        self.close()
        if self._owner and segment is not None:
            segment.unlink()
            self._owner = False

    def __enter__(self) -> "SharedTables":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()

    def __repr__(self) -> str:
        state = "closed" if self._segment is None else "open"
        return (
            f"SharedTables(segment={self.meta['segment']!r}, "
            f"arrays={len(self.meta['layout'])}, {state})"
        )


def export_tables(tables: RetrievalTables) -> SharedTables:
    """Pack retrieval tables into shared memory (parent side)."""
    return SharedTables.create(
        tables.array_fields(),
        extra={"cycle": tables.cycle, "period": tables.period},
    )


def attach_tables(
    meta: Mapping[str, Any],
) -> tuple[RetrievalTables, SharedTables]:
    """Map a parent's export (worker side).

    Returns the rehydrated tables plus the handle keeping the mapping
    alive - ``close()`` it when the shard is done.
    """
    shared = SharedTables.attach(meta)
    extra = shared.extra
    tables = RetrievalTables.from_arrays(
        extra["cycle"], extra["period"], shared.arrays()
    )
    return tables, shared


def export_multichannel_tables(tables: MultiChannelTables) -> SharedTables:
    """Pack per-channel retrieval tables into one segment (parent side).

    Each channel's arrays are packed under a ``c<channel>.`` name prefix
    (channel indexes never prefix each other: ``"c10."`` does not start
    with ``"c1."``); the candidates map, tuning cost, and per-channel
    cycles/periods ride in ``extra``, so the worker rebuilds the whole
    :class:`~repro.traffic.cohorts.MultiChannelTables` from the segment
    alone - no programs cross the pool.
    """
    arrays: dict[str, np.ndarray] = {}
    for channel, channel_tables in enumerate(tables.tables):
        for name, array in channel_tables.array_fields().items():
            arrays[f"c{channel}.{name}"] = array
    return SharedTables.create(
        arrays,
        extra={
            "channels": tables.count,
            "tuning_cost": tables.tuning_cost,
            "candidates": [list(c) for c in tables.candidates],
            "cycles": [t.cycle for t in tables.tables],
            "periods": [t.period for t in tables.tables],
        },
    )


def attach_multichannel_tables(
    meta: Mapping[str, Any],
) -> tuple[MultiChannelTables, SharedTables]:
    """Map a parent's multichannel export (worker side).

    Same contract as :func:`attach_tables`: the returned handle keeps
    the zero-copy views alive - ``close()`` it when the shard is done.
    """
    shared = SharedTables.attach(meta)
    extra = shared.extra
    arrays = shared.arrays()
    per_channel = []
    for channel in range(extra["channels"]):
        prefix = f"c{channel}."
        per_channel.append(
            RetrievalTables.from_arrays(
                extra["cycles"][channel],
                extra["periods"][channel],
                {
                    name[len(prefix):]: array
                    for name, array in arrays.items()
                    if name.startswith(prefix)
                },
            )
        )
    tables = MultiChannelTables(
        per_channel, extra["candidates"], extra["tuning_cost"]
    )
    return tables, shared
