"""Client-session state machines for the traffic simulator.

A session models one mobile client's visit to the broadcast channel: it
arrives (open-loop, per the arrival process), issues a bounded number of
requests - file drawn from the popularity law, deadline taken from the
catalogue - and leaves.  Between requests the client *thinks* for an
exponentially distributed number of slots.

Two invariants match the paper's receiver model:

* **single receiver** - a client tunes to one retrieval at a time; the
  next request is issued strictly after the previous retrieval finished
  (or its horizon expired) plus the think time.  The session enforces
  this structurally (requests chain through the event kernel) and
  defends it with a busy-until check.
* **service-to-service progress** - a session never inspects individual
  slots; the retrieval outcome (finish slot, latency) is computed by the
  occurrence-walking retriever the simulator passes in, so a request
  costs O(occurrences touched), not O(slots waited).

Sessions optionally front their retrievals with a
:class:`repro.sim.cache.CachingClient` (LRU or PIX replacement): a hit
answers in zero slots, a miss pays the broadcast latency and inserts.

Temporal (rtdb) workloads run :class:`TransactionSession` instead: each
request draws a *read transaction* from a weighted mix, fetches its
items sequentially with version-consistent retrievals, and feeds the
per-item staleness dimension (age, freshness, torn discards) into the
metrics alongside the usual transaction-level latency and deadline
accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import accumulate
from typing import Callable, Mapping, Sequence

from repro.errors import SimulationError
from repro.rtdb.transactions import ReadTransaction
from repro.sim.cache import CachingClient
from repro.sim.workload import sample_accesses
from repro.traffic.arrivals import think_slots
from repro.traffic.kernel import EventKernel
from repro.traffic.metrics import TrafficMetrics

#: A retrieval oracle: ``(file, start) -> (latency, finish_slot)``.
#: ``latency`` is ``None`` when the retrieval aborted (horizon
#: exhausted); ``finish_slot`` is the last slot the client listened to
#: either way, so the session knows when its receiver frees up.
Retriever = Callable[[str, int], tuple[int | None, int]]

#: A version-consistent retrieval oracle:
#: ``(file, start) -> (latency, finish_slot, age, torn_discards)``.
#: ``latency``/``finish_slot`` follow the :data:`Retriever` convention;
#: ``age`` is the completed value's age in slots (``None`` on abort);
#: ``torn_discards`` counts blocks discarded to mid-retrieval updates.
VersionedRetriever = Callable[
    [str, int], tuple[int | None, int, int | None, int]
]


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One request's trace entry (collected only when tracing)."""

    client: int
    file: str
    issued: int
    latency: int | None
    deadline: int
    cache_hit: bool

    @property
    def completed(self) -> bool:
        return self.latency is not None

    @property
    def met_deadline(self) -> bool:
        return self.latency is not None and self.latency <= self.deadline


class ClientSession:
    """One open-loop client session driven by the event kernel."""

    __slots__ = (
        "index",
        "_rng",
        "_catalogue",
        "_cum_weights",
        "_deadlines",
        "_remaining",
        "_think_mean",
        "_retriever",
        "_cache",
        "_metrics",
        "_trace",
        "_busy_until",
    )

    def __init__(
        self,
        index: int,
        rng: random.Random,
        catalogue: Sequence[str],
        weights: Sequence[float] | None,
        deadlines: dict[str, int],
        *,
        requests: int,
        think_mean: int,
        retriever: Retriever,
        metrics: TrafficMetrics,
        cache: CachingClient | None = None,
        trace: list[RequestRecord] | None = None,
        cum_weights: Sequence[float] | None = None,
    ) -> None:
        if (weights is None) == (cum_weights is None):
            raise SimulationError(
                "exactly one of weights and cum_weights is required"
            )
        self.index = index
        self._rng = rng
        self._catalogue = catalogue
        # Running totals once per population (the memoized CDF the
        # simulator passes via ``cum_weights``), or once per session from
        # raw weights: draws via cum_weights are bit-identical to
        # raw-weight draws either way.
        self._cum_weights = (
            cum_weights if cum_weights is not None else list(accumulate(weights))
        )
        self._deadlines = deadlines
        self._remaining = requests
        self._think_mean = think_mean
        self._retriever = retriever
        self._cache = cache
        self._metrics = metrics
        self._trace = trace
        self._busy_until = -1

    @property
    def cache(self) -> CachingClient | None:
        """The session's cache, when caching is enabled."""
        return self._cache

    def begin(self, kernel: EventKernel, arrival: int) -> None:
        """Schedule the session's first request at its arrival slot."""
        kernel.schedule(arrival, self.issue)

    def issue(self, kernel: EventKernel) -> None:
        """Issue one request at ``kernel.now`` and chain the next one."""
        now = kernel.now
        if now <= self._busy_until:
            raise SimulationError(
                f"client {self.index}: request at slot {now} while the "
                f"receiver is busy until slot {self._busy_until} "
                f"(single-receiver constraint violated)"
            )
        file = self._catalogue[
            sample_accesses(
                self._rng, None, 1, cum_weights=self._cum_weights
            )[0]
        ]
        cache_hit = False
        if self._cache is not None:
            result = self._cache.access(file, now)
            if result is None:  # cache hit: answered locally, zero slots
                cache_hit = True
                latency: int | None = 0
                finish = now
            else:
                latency = result.latency
                finish = (
                    result.finish_slot
                    if result.finish_slot is not None
                    else now + self._cache.horizon(file) - 1
                )
        else:
            latency, finish = self._retriever(file, now)
        self._busy_until = finish

        deadline = self._deadlines[file]
        self._metrics.record(file, latency, deadline)
        if self._trace is not None:
            self._trace.append(
                RequestRecord(
                    client=self.index,
                    file=file,
                    issued=now,
                    latency=latency,
                    deadline=deadline,
                    cache_hit=cache_hit,
                )
            )

        self._remaining -= 1
        if self._remaining > 0:
            think = think_slots(self._rng, self._think_mean)
            kernel.schedule(finish + 1 + think, self.issue)
        elif self._cache is not None:
            stats = self._cache.stats
            self._metrics.record_cache(
                stats.hits, stats.misses, stats.evictions
            )

    def __repr__(self) -> str:
        return (
            f"ClientSession(index={self.index}, "
            f"remaining={self._remaining})"
        )


class TransactionSession:
    """One open-loop client issuing read transactions over versioned items.

    The temporal counterpart of :class:`ClientSession`: each request
    draws one :class:`~repro.rtdb.transactions.ReadTransaction` from the
    weighted mix and fetches its items *sequentially* (single receiver)
    with the version-consistent retriever.  Per item the session records
    the completed value's age against the item's freshness bound
    (``max_age_slots``); per transaction it records the end-to-end
    response time against the transaction's deadline.  An item retrieval
    that exhausts its horizon aborts the whole transaction (the
    remaining items are not attempted - their deadline is already
    unmeetable and the receiver has burnt the horizon listening).

    Behaviour is derived from the client index alone (RNG substream,
    one mix draw + one think draw per request), so populations shard
    exactly like plain sessions.
    """

    __slots__ = (
        "index",
        "_rng",
        "_mix",
        "_cum_weights",
        "_max_age",
        "_remaining",
        "_think_mean",
        "_retriever",
        "_metrics",
        "_trace",
        "_busy_until",
    )

    def __init__(
        self,
        index: int,
        rng: random.Random,
        mix: Sequence[ReadTransaction],
        weights: Sequence[float],
        max_age_slots: Mapping[str, int],
        *,
        requests: int,
        think_mean: int,
        retriever: VersionedRetriever,
        metrics: TrafficMetrics,
        trace: list[RequestRecord] | None = None,
    ) -> None:
        if len(mix) != len(weights):
            raise SimulationError(
                f"transaction mix has {len(mix)} entries but "
                f"{len(weights)} weights"
            )
        if not mix:
            raise SimulationError("transaction mix must not be empty")
        self.index = index
        self._rng = rng
        self._mix = list(mix)
        self._cum_weights = list(accumulate(weights))
        self._max_age = max_age_slots
        self._remaining = requests
        self._think_mean = think_mean
        self._retriever = retriever
        self._metrics = metrics
        self._trace = trace
        self._busy_until = -1

    def begin(self, kernel: EventKernel, arrival: int) -> None:
        """Schedule the session's first transaction at its arrival slot."""
        kernel.schedule(arrival, self.issue)

    def issue(self, kernel: EventKernel) -> None:
        """Issue one transaction at ``kernel.now`` and chain the next."""
        now = kernel.now
        if now <= self._busy_until:
            raise SimulationError(
                f"client {self.index}: transaction at slot {now} while "
                f"the receiver is busy until slot {self._busy_until} "
                f"(single-receiver constraint violated)"
            )
        txn = self._mix[
            sample_accesses(
                self._rng, None, 1, cum_weights=self._cum_weights
            )[0]
        ]
        clock = now
        finish = now
        aborted = False
        for item in txn.items:
            latency, finish, age, torn = self._retriever(item, clock)
            self._metrics.record_versioned_read(
                age,
                age is not None and age <= self._max_age[item],
                torn,
            )
            if latency is None:
                aborted = True
                break
            clock = finish + 1
        self._busy_until = finish

        response = None if aborted else finish - now + 1
        self._metrics.record(txn.name, response, txn.deadline_slots)
        if self._trace is not None:
            self._trace.append(
                RequestRecord(
                    client=self.index,
                    file=txn.name,
                    issued=now,
                    latency=response,
                    deadline=txn.deadline_slots,
                    cache_hit=False,
                )
            )

        self._remaining -= 1
        if self._remaining > 0:
            think = think_slots(self._rng, self._think_mean)
            kernel.schedule(finish + 1 + think, self.issue)

    def __repr__(self) -> str:
        return (
            f"TransactionSession(index={self.index}, "
            f"remaining={self._remaining})"
        )
