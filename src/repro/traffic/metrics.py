"""Streaming metrics for traffic runs.

A population run produces millions of latencies; holding them all to
sort at the end would defeat the point of a streaming simulator.  This
module keeps everything online:

* :class:`P2Quantile` - the Jain & Chlamtac P-square estimator: one
  quantile tracked in O(1) memory (five markers), updated per
  observation;
* :class:`ReservoirSample` - a seeded fixed-size uniform sample of the
  stream, for tail inspection and debugging;
* :class:`TrafficMetrics` - the per-shard accumulator: request /
  completion / abort / deadline-miss counters, running mean and worst
  latency, live P2 quantiles, a reservoir, per-file hit counts
  (aggregate per disk via :meth:`TrafficMetrics.hits_by`), and - for
  version-consistent (temporal) workloads - staleness tracking: per-item
  read ages, consistency rate, and torn-read discards, kept as an exact
  age histogram so shard merging stays exact.

By default the accumulator keeps the exact integer-latency histogram -
latencies are slot counts, so the histogram is bounded by the retrieval
horizon rather than by the request count - which is what makes shard
merging *exact*: :meth:`TrafficMetrics.merged` sums histograms and
recomputes quantiles from the merged counts
(:meth:`repro.sim.metrics.LatencySummary.merge` works the same way);
the estimators stay idle.  Pass ``exact_counts=False`` for strictly
constant memory: the P2 estimators and the reservoir then consume the
stream and summaries are approximate (and not exactly mergeable).
"""

from __future__ import annotations

import math
import random
from bisect import insort
from typing import Iterable, Mapping, Sequence

from repro.errors import SimulationError, SpecificationError
from repro.sim.metrics import (
    LatencySummary,
    _percentile_from_counts,
    _summary_from_counts,
)


class P2Quantile:
    """One streaming quantile via the P-square algorithm.

    Five markers track the running quantile without storing the sample;
    memory is O(1) and each observation costs O(1).  Estimates converge
    on the exact quantile for stationary streams (tested against the
    exact histogram in ``tests/traffic/test_metrics.py``).
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_rate", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise SpecificationError(f"quantile must be in (0, 1): {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
        self._desired = [0.0, 2 * q, 4 * q, 2 + 2 * q, 4.0]
        self._rate = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self._count = 0

    def add(self, value: float) -> None:
        """Feed one observation."""
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            insort(heights, value)
            return
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and heights[cell + 1] <= value:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1
        desired = self._desired
        for i in range(5):
            desired[i] += self._rate[i]
        for i in (1, 2, 3):
            gap = desired[i] - positions[i]
            ahead = positions[i + 1] - positions[i]
            behind = positions[i - 1] - positions[i]
            if (gap >= 1 and ahead > 1) or (gap <= -1 and behind < -1):
                step = 1 if gap > 0 else -1
                candidate = heights[i] + step / (
                    positions[i + 1] - positions[i - 1]
                ) * (
                    (positions[i] - positions[i - 1] + step)
                    * (heights[i + 1] - heights[i])
                    / (positions[i + 1] - positions[i])
                    + (positions[i + 1] - positions[i] - step)
                    * (heights[i] - heights[i - 1])
                    / (positions[i] - positions[i - 1])
                )
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:  # parabolic prediction left the bracket: go linear
                    heights[i] = heights[i] + step * (
                        heights[i + step] - heights[i]
                    ) / (positions[i + step] - positions[i])
                positions[i] += step

    @property
    def count(self) -> int:
        """Observations fed so far."""
        return self._count

    def value(self) -> float:
        """The current estimate (``nan`` before any observation).

        Until the five markers initialize (``count <= 5``) the sorted
        sample is still complete, so the returned value is the *exact*
        nearest-rank quantile, not an estimate - the guard that keeps
        short streams from reading marker garbage.
        """
        if self._count == 0:
            return math.nan
        if self._count <= 5:
            rank = max(1, math.ceil(self.q * self._count))
            return self._heights[rank - 1]
        return self._heights[2]

    def __repr__(self) -> str:
        return f"P2Quantile(q={self.q}, n={self._count})"


class ReservoirSample:
    """A seeded uniform fixed-size sample of a stream."""

    __slots__ = ("capacity", "_rng", "_sample", "_seen")

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity < 1:
            raise SpecificationError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._rng = random.Random(f"{seed}:reservoir")
        self._sample: list[float] = []
        self._seen = 0

    @property
    def seen(self) -> int:
        """Stream length so far."""
        return self._seen

    @property
    def sample(self) -> tuple[float, ...]:
        """The current sample (unordered)."""
        return tuple(self._sample)

    def add(self, value: float) -> None:
        """Feed one observation (algorithm R)."""
        self._seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._sample[slot] = value

    @classmethod
    def from_counts(
        cls,
        counts: Mapping[int, int] | Iterable[tuple[int, int]],
        capacity: int,
        *,
        seed: int = 0,
    ) -> "ReservoirSample":
        """An exact uniform sample (without replacement) of a histogram.

        Used when merging shards: per-shard reservoirs cannot be merged
        into a uniform sample directly, but the merged exact histogram
        can be resampled - the result is distributed identically to a
        reservoir fed the whole merged stream, and is deterministic in
        the seed alone (independent of the shard layout).
        """
        pairs = sorted(
            counts.items() if isinstance(counts, Mapping) else counts
        )
        total = sum(count for _, count in pairs)
        reservoir = cls(capacity, seed=seed)
        reservoir._seen = total
        if total <= capacity:
            reservoir._sample = [
                float(value) for value, count in pairs for _ in range(count)
            ]
            return reservoir
        ranks = sorted(reservoir._rng.sample(range(total), capacity))
        sample: list[float] = []
        cumulative = 0
        index = 0
        for value, count in pairs:
            cumulative += count
            while index < capacity and ranks[index] < cumulative:
                sample.append(float(value))
                index += 1
        reservoir._sample = sample
        return reservoir

    def __repr__(self) -> str:
        return (
            f"ReservoirSample(capacity={self.capacity}, seen={self._seen})"
        )


#: Quantiles every accumulator tracks live.
TRACKED_QUANTILES = (0.50, 0.95, 0.99)


class TrafficMetrics:
    """Streaming accumulator for one traffic shard (or a merged run)."""

    def __init__(
        self,
        *,
        exact_counts: bool = True,
        reservoir_capacity: int = 512,
        seed: int = 0,
    ) -> None:
        self.requests = 0
        self.completions = 0
        self.aborts = 0
        self.deadline_misses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.latency_sum = 0
        self.worst = 0
        self.requests_by_file: dict[str, int] = {}
        self.hits_by_file: dict[str, int] = {}
        self.item_reads = 0
        self.stale_reads = 0
        self.torn_discards = 0
        self.age_sum = 0
        self.worst_age = 0
        self.channel_switches = 0
        self.quorum_reads: dict[str, int] = {}
        self.quorum_latency_sum = 0
        self.worst_quorum_latency = 0
        self.reservoir = ReservoirSample(reservoir_capacity, seed=seed)
        self._counts: dict[int, int] | None = {} if exact_counts else None
        self._ages: dict[int, int] | None = {} if exact_counts else None
        self._quorum_counts: dict[int, int] | None = (
            {} if exact_counts else None
        )
        self._estimators = {q: P2Quantile(q) for q in TRACKED_QUANTILES}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self, file: str, latency: int | None, deadline: int | None
    ) -> None:
        """Record one finished request.

        ``latency is None`` means the retrieval never completed within
        its horizon (an *abort*); a completion past ``deadline`` is a
        deadline miss.  Cache hits are completions with latency 0.
        """
        self.requests += 1
        self.requests_by_file[file] = self.requests_by_file.get(file, 0) + 1
        if latency is None:
            self.aborts += 1
            return
        self.completions += 1
        self.hits_by_file[file] = self.hits_by_file.get(file, 0) + 1
        self.latency_sum += latency
        if latency > self.worst:
            self.worst = latency
        if deadline is not None and latency > deadline:
            self.deadline_misses += 1
        if self._counts is not None:
            # Exact mode: the histogram answers every quantile query and
            # merged() resamples the reservoir from it, so feeding the
            # P2/reservoir estimators per completion would be pure
            # overhead on the hot path.
            self._counts[latency] = self._counts.get(latency, 0) + 1
        else:
            for estimator in self._estimators.values():
                estimator.add(latency)
            self.reservoir.add(latency)

    def record_cache(self, hits: int, misses: int, evictions: int) -> None:
        """Fold in one session's cache statistics."""
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_evictions += evictions

    def record_versioned_read(
        self, age: int | None, fresh: bool, torn: int
    ) -> None:
        """Record one version-consistent item read.

        ``age`` is the value's age at completion in slots (``None`` for
        a read that never completed - only its torn discards count);
        ``fresh`` is whether that age satisfied the item's temporal
        constraint; ``torn`` is how many blocks the read threw away to
        mid-retrieval version updates.  Transaction-level latency /
        deadline accounting goes through :meth:`record` as usual - this
        method carries the per-item freshness dimension.
        """
        self.torn_discards += torn
        if age is None:
            return
        self.item_reads += 1
        if not fresh:
            self.stale_reads += 1
        self.age_sum += age
        if age > self.worst_age:
            self.worst_age = age
        if self._ages is not None:
            self._ages[age] = self._ages.get(age, 0) + 1

    def record_channel_switches(self, switches: int) -> None:
        """Fold in re-tunes performed by one retrieval (0 is free)."""
        self.channel_switches += switches

    def record_quorum(self, outcome: str, latency: int | None) -> None:
        """Record one r-of-k quorum read.

        ``outcome`` is ``"ok"`` / ``"mismatch"`` / ``"incomplete"`` (see
        :class:`repro.rtdb.updates.QuorumRead`); ``latency`` is the
        assembly latency in slots for ``"ok"`` reads (None otherwise).
        Exact-mergeable: outcomes are counters, latencies an exact
        integer histogram.
        """
        self.quorum_reads[outcome] = self.quorum_reads.get(outcome, 0) + 1
        if latency is None:
            return
        self.quorum_latency_sum += latency
        if latency > self.worst_quorum_latency:
            self.worst_quorum_latency = latency
        if self._quorum_counts is not None:
            self._quorum_counts[latency] = (
                self._quorum_counts.get(latency, 0) + 1
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def quorum_total(self) -> int:
        """Quorum reads recorded, over all outcomes."""
        return sum(self.quorum_reads.values())

    @property
    def quorum_ok(self) -> int:
        """Quorum reads that assembled a consistent version."""
        return self.quorum_reads.get("ok", 0)

    @property
    def quorum_success_rate(self) -> float:
        """Fraction of quorum reads that assembled (1.0 with none)."""
        total = self.quorum_total
        return self.quorum_ok / total if total else 1.0

    @property
    def mean_quorum_latency(self) -> float:
        """Mean assembly latency of successful quorum reads, in slots."""
        ok = self.quorum_ok
        return self.quorum_latency_sum / ok if ok else 0.0

    @property
    def quorum_counts(self) -> dict[int, int]:
        """The exact quorum-latency histogram (requires ``exact_counts``)."""
        if self._quorum_counts is None:
            raise SimulationError(
                "this accumulator was built with exact_counts=False"
            )
        return dict(self._quorum_counts)

    def quorum_quantile(self, q: float) -> float:
        """The ``q``-quantile of quorum assembly latencies (exact mode)."""
        if self._quorum_counts is None:
            raise SimulationError(
                "this accumulator was built with exact_counts=False"
            )
        if not self.quorum_ok:
            return math.nan
        if not 0.0 < q < 1.0:
            raise SpecificationError(f"quantile must be in (0, 1): {q}")
        return float(
            _percentile_from_counts(
                sorted(self._quorum_counts.items()), self.quorum_ok, q
            )
        )

    @property
    def mean_latency(self) -> float:
        """Mean completed-retrieval latency in slots."""
        return (
            self.latency_sum / self.completions if self.completions else 0.0
        )

    @property
    def abort_rate(self) -> float:
        """Fraction of requests that never completed."""
        return self.aborts / self.requests if self.requests else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of requests aborted or completed past deadline."""
        if not self.requests:
            return 0.0
        return (self.aborts + self.deadline_misses) / self.requests

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of requests that completed past their deadline."""
        return self.deadline_misses / self.requests if self.requests else 0.0

    @property
    def consistency_rate(self) -> float:
        """Fraction of completed item reads that were temporally fresh.

        1.0 with no versioned reads recorded (nothing violated a
        constraint); the denominator is *completed* reads - aborted
        retrievals count against :attr:`abort_rate`, not staleness.
        """
        if not self.item_reads:
            return 1.0
        return (self.item_reads - self.stale_reads) / self.item_reads

    @property
    def mean_age(self) -> float:
        """Mean age at completion of versioned item reads, in slots."""
        return self.age_sum / self.item_reads if self.item_reads else 0.0

    @property
    def ages(self) -> dict[int, int]:
        """The exact age histogram (requires ``exact_counts``)."""
        if self._ages is None:
            raise SimulationError(
                "this accumulator was built with exact_counts=False"
            )
        return dict(self._ages)

    def age_quantile(self, q: float) -> float:
        """The ``q``-quantile of completed read ages (exact mode only)."""
        if self._ages is None:
            raise SimulationError(
                "this accumulator was built with exact_counts=False"
            )
        if not self.item_reads:
            return math.nan
        if not 0.0 < q < 1.0:
            raise SpecificationError(f"quantile must be in (0, 1): {q}")
        return float(
            _percentile_from_counts(
                sorted(self._ages.items()), self.item_reads, q
            )
        )

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of completed latencies.

        Exact (nearest rank over the histogram) when exact counts are
        kept; the live P2 estimate otherwise.
        """
        if self._counts is None:
            return self.estimated_quantile(q)
        if not self.completions:
            return math.nan
        if not 0.0 < q < 1.0:
            raise SpecificationError(f"quantile must be in (0, 1): {q}")
        return float(
            _percentile_from_counts(
                sorted(self._counts.items()), self.completions, q
            )
        )

    def estimated_quantile(self, q: float) -> float:
        """The streaming P2 estimate for one of the tracked quantiles.

        Estimators are fed only in constant-memory mode
        (``exact_counts=False``); in exact mode use :meth:`quantile`,
        which answers from the histogram.

        The P-square markers need five observations to initialize;
        below that :meth:`P2Quantile.value` answers with the exact
        nearest-rank quantile of its (complete) sorted sample - never
        estimator garbage - and ``nan`` with no completions at all.
        Short sweep cells therefore read exact sample statistics
        (pinned by ``tests/traffic/test_traffic_metrics.py``).
        """
        estimator = self._estimators.get(q)
        if estimator is None:
            raise SimulationError(
                f"quantile {q} is not tracked (tracked: "
                f"{TRACKED_QUANTILES})"
            )
        return estimator.value()

    @property
    def counts(self) -> dict[int, int]:
        """The exact latency histogram (requires ``exact_counts``)."""
        if self._counts is None:
            raise SimulationError(
                "this accumulator was built with exact_counts=False"
            )
        return dict(self._counts)

    @property
    def exact(self) -> bool:
        """Whether the exact latency histogram is kept."""
        return self._counts is not None

    def hits_by(self, groups: Mapping[str, str]) -> dict[str, int]:
        """Completed retrievals aggregated by group (e.g. per disk).

        ``groups`` maps file names to group labels; files missing from
        the mapping aggregate under ``"?"``.
        """
        out: dict[str, int] = {}
        for file, hits in self.hits_by_file.items():
            label = groups.get(file, "?")
            out[label] = out.get(label, 0) + hits
        return out

    def summary(self) -> LatencySummary:
        """A :class:`LatencySummary` of the run so far.

        ``misses`` counts aborts plus deadline misses.  With exact
        counts the percentiles are exact and the summary carries its
        histogram (so :meth:`LatencySummary.merge` works on it); without,
        they are the P2 estimates and the histogram is absent.
        """
        if not self.requests:
            raise SimulationError("no requests recorded")
        misses = self.aborts + self.deadline_misses
        if self._counts is not None:
            return _summary_from_counts(
                sorted(
                    (float(value), count)
                    for value, count in self._counts.items()
                ),
                self.requests,
                misses,
                None,
            )
        if not self.completions:
            return _summary_from_counts((), self.requests, misses, None)
        return LatencySummary(
            count=self.requests,
            mean=self.mean_latency,
            p50=self.estimated_quantile(0.50),
            p95=self.estimated_quantile(0.95),
            p99=self.estimated_quantile(0.99),
            worst=float(self.worst),
            misses=misses,
        )

    # ------------------------------------------------------------------
    # Batch construction
    # ------------------------------------------------------------------

    @classmethod
    def from_totals(
        cls,
        *,
        seed: int = 0,
        requests: int = 0,
        completions: int = 0,
        aborts: int = 0,
        deadline_misses: int = 0,
        latency_sum: int = 0,
        worst: int = 0,
        counts: Mapping[int, int] | None = None,
        requests_by_file: Mapping[str, int] | None = None,
        hits_by_file: Mapping[str, int] | None = None,
        cache_hits: int = 0,
        cache_misses: int = 0,
        cache_evictions: int = 0,
        channel_switches: int = 0,
        quorum_reads: Mapping[str, int] | None = None,
        quorum_latency_sum: int = 0,
        worst_quorum_latency: int = 0,
        quorum_counts: Mapping[int, int] | None = None,
        reservoir_capacity: int = 512,
    ) -> "TrafficMetrics":
        """An exact accumulator assembled from batch totals.

        The vectorized engine's finalizer: it accumulates counters and
        histograms in numpy batches and builds the accumulator in one
        step.  The result is indistinguishable from feeding the same
        observations through :meth:`record` one at a time in any order -
        exact mode is order-independent, and the estimators and the
        reservoir stay unfed exactly as per-request exact recording
        leaves them (merging resamples the reservoir from the
        histogram).
        """
        out = cls(
            exact_counts=True,
            reservoir_capacity=reservoir_capacity,
            seed=seed,
        )
        out.requests = requests
        out.completions = completions
        out.aborts = aborts
        out.deadline_misses = deadline_misses
        out.latency_sum = latency_sum
        out.worst = worst
        out.cache_hits = cache_hits
        out.cache_misses = cache_misses
        out.cache_evictions = cache_evictions
        out.requests_by_file = dict(requests_by_file or {})
        out.hits_by_file = dict(hits_by_file or {})
        out._counts = dict(counts or {})
        out.channel_switches = channel_switches
        out.quorum_reads = dict(quorum_reads or {})
        out.quorum_latency_sum = quorum_latency_sum
        out.worst_quorum_latency = worst_quorum_latency
        out._quorum_counts = dict(quorum_counts or {})
        return out

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    @classmethod
    def merged(
        cls,
        parts: Sequence["TrafficMetrics"],
        *,
        reservoir_capacity: int | None = None,
        seed: int = 0,
    ) -> "TrafficMetrics":
        """Aggregate per-shard accumulators exactly.

        Counters and histograms sum; quantiles of the result come from
        the merged histogram (exact); the reservoir is resampled from
        the merged histogram, so the merged accumulator is a pure
        function of the union of observations - independent of how the
        population was sharded.  Every part must keep exact counts.
        """
        if not parts:
            raise SimulationError("cannot merge zero accumulators")
        for part in parts:
            if part._counts is None:
                raise SimulationError(
                    "cannot merge accumulators built with "
                    "exact_counts=False"
                )
        capacity = (
            reservoir_capacity
            if reservoir_capacity is not None
            else max(part.reservoir.capacity for part in parts)
        )
        out = cls(exact_counts=True, reservoir_capacity=capacity, seed=seed)
        counts: dict[int, int] = {}
        ages: dict[int, int] = {}
        quorum_counts: dict[int, int] = {}
        for part in parts:
            out.requests += part.requests
            out.completions += part.completions
            out.aborts += part.aborts
            out.deadline_misses += part.deadline_misses
            out.cache_hits += part.cache_hits
            out.cache_misses += part.cache_misses
            out.cache_evictions += part.cache_evictions
            out.latency_sum += part.latency_sum
            out.worst = max(out.worst, part.worst)
            out.item_reads += part.item_reads
            out.stale_reads += part.stale_reads
            out.torn_discards += part.torn_discards
            out.age_sum += part.age_sum
            out.worst_age = max(out.worst_age, part.worst_age)
            out.channel_switches += part.channel_switches
            out.quorum_latency_sum += part.quorum_latency_sum
            out.worst_quorum_latency = max(
                out.worst_quorum_latency, part.worst_quorum_latency
            )
            for outcome, n in part.quorum_reads.items():
                out.quorum_reads[outcome] = (
                    out.quorum_reads.get(outcome, 0) + n
                )
            if part._quorum_counts is not None:
                for value, n in part._quorum_counts.items():
                    quorum_counts[value] = quorum_counts.get(value, 0) + n
            for file, n in part.requests_by_file.items():
                out.requests_by_file[file] = (
                    out.requests_by_file.get(file, 0) + n
                )
            for file, n in part.hits_by_file.items():
                out.hits_by_file[file] = out.hits_by_file.get(file, 0) + n
            assert part._counts is not None
            for value, n in part._counts.items():
                counts[value] = counts.get(value, 0) + n
            if part._ages is not None:
                for value, n in part._ages.items():
                    ages[value] = ages.get(value, 0) + n
        out._counts = counts
        out._ages = ages
        out._quorum_counts = quorum_counts
        # The reservoir is resampled from the merged histogram; the live
        # P2 estimators stay unfed (the stream was consumed shard-side)
        # and quantile() answers exactly from the histogram instead.
        out.reservoir = ReservoirSample.from_counts(
            counts, capacity, seed=seed
        )
        return out

    def __repr__(self) -> str:
        return (
            f"TrafficMetrics(requests={self.requests}, "
            f"completions={self.completions}, aborts={self.aborts}, "
            f"deadline_misses={self.deadline_misses})"
        )
