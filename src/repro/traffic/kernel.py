"""The discrete-event simulation kernel.

A traffic run is a population of independent client sessions sharing one
broadcast channel.  Nothing forces the simulator to visit every slot:
all state changes happen at *events* (a session issuing a request, a
retrieval finishing, a think-time expiring), and retrieval outcomes are
computed analytically by jumping service-to-service along the program's
occurrence index.  The kernel therefore reduces to the classic
event-heap loop: a priority queue of ``(slot, action)`` pairs keyed on
absolute broadcast slots, popped in slot order.

Determinism: events at the same slot run in scheduling order (a
monotonic sequence number breaks heap ties), so a run is a pure function
of its seeds regardless of how sessions interleave.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.errors import SimulationError

#: An event action; receives the kernel so it can schedule follow-ups.
Action = Callable[["EventKernel"], None]


class EventKernel:
    """A slot-keyed event heap driving the traffic simulation.

    Usage::

        kernel = EventKernel()
        kernel.schedule(arrival_slot, session.issue)
        kernel.run()          # drains the heap in slot order

    Actions are callables taking the kernel; they may schedule further
    events at any slot >= ``now`` (scheduling into the past is a logic
    error and raises :class:`SimulationError`, which is also a
    ``ValueError``).

    :meth:`schedule` returns an event id that :meth:`cancel` accepts, so
    a long-running driver (the online broadcast server) can retract a
    provisional completion event when a splice changes its outcome.
    Cancellation is lazy - the heap entry is skipped when it surfaces -
    so cancelling is O(1) and the heap never needs re-ordering.
    """

    __slots__ = (
        "_heap",
        "_sequence",
        "_now",
        "_processed",
        "_running",
        "_live",
        "_cancelled",
    )

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Action]] = []
        self._sequence = 0
        self._now = 0
        self._processed = 0
        self._running = False
        self._live: set[int] = set()
        self._cancelled: set[int] = set()

    @property
    def now(self) -> int:
        """The current slot: the event being (or last) processed, or the
        ``until`` bound of the latest :meth:`run` when that is later."""
        return self._now

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events scheduled but not yet executed or cancelled."""
        return len(self._live)

    def schedule(self, slot: int, action: Action) -> int:
        """Enqueue ``action`` to run at ``slot``; return its event id.

        Same-slot events run in the order they were scheduled.  The
        returned id can be passed to :meth:`cancel` while the event is
        still pending.
        """
        if slot < self._now:
            raise SimulationError(
                f"cannot schedule an event at slot {slot}: the kernel is "
                f"already at slot {self._now}"
            )
        event_id = self._sequence
        heappush(self._heap, (slot, event_id, action))
        self._sequence += 1
        self._live.add(event_id)
        return event_id

    def cancel(self, event_id: int) -> bool:
        """Retract a pending event; return whether anything was cancelled.

        ``True`` means the event existed and had not yet run; it will be
        silently skipped when its heap entry surfaces.  ``False`` means
        the id was unknown, already executed, or already cancelled -
        cancellation is idempotent, never an error.
        """
        if event_id not in self._live:
            return False
        self._live.discard(event_id)
        self._cancelled.add(event_id)
        return True

    def peek(self) -> int | None:
        """The slot of the next live event, or ``None`` when drained.

        Discards cancelled entries that have bubbled to the top, so the
        answer always refers to an event that will actually run.
        """
        heap = self._heap
        while heap and heap[0][1] in self._cancelled:
            self._cancelled.discard(heappop(heap)[1])
        return heap[0][0] if heap else None

    def run(self, *, until: int | None = None) -> int:
        """Pop and execute events in slot order; return how many ran.

        ``until`` stops the loop before the first event strictly beyond
        that slot (the event stays queued); ``None`` drains the heap.

        A bounded run always returns with ``now == max(now, until)``,
        even when the heap drains early: the kernel has observed every
        slot up to ``until``, so a later :meth:`schedule` into that range
        would be an event in the past and is rejected.
        """
        if self._running:
            raise SimulationError("kernel is already running")
        self._running = True
        ran = 0
        try:
            heap = self._heap
            while heap:
                slot, seq, _ = heap[0]
                if seq in self._cancelled:
                    heappop(heap)
                    self._cancelled.discard(seq)
                    continue
                if until is not None and slot > until:
                    break
                slot, seq, action = heappop(heap)
                self._live.discard(seq)
                self._now = slot
                action(self)
                ran += 1
                self._processed += 1
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return ran

    def __repr__(self) -> str:
        return (
            f"EventKernel(now={self._now}, pending={self.pending}, "
            f"processed={self._processed})"
        )
