"""Cohort batching and retrieval tables for the vectorized engine.

The structure-of-arrays engine (:mod:`repro.traffic.engine_soa`) never
visits one client at a time: it advances whole *cohorts* - every client
whose next event lands inside the current slot window - per numpy batch.
This module provides the batching primitives and the precomputed
retrieval tables the engine resolves requests against:

* :func:`cohort_waves` - the wave iterator over the population's
  next-event array;
* :class:`RetrievalTables` - the per-``(file, phase)`` fault-free
  retrieval lookup derived from :class:`~repro.bdisk.program_index.ProgramIndex`:
  flat occurrence arrays plus, per occurrence, the slot at which a
  retrieval starting there collects its ``m``-th distinct block.  The
  flat layout is what the shared-memory export
  (:mod:`repro.traffic.shm_index`) maps into pool workers;
* vectorized mirrors of the scalar arrival / popularity / think-time
  draws, bit-identical to :mod:`repro.traffic.arrivals` by construction
  (same uniforms, same float expressions).

Everything here requires numpy; the scalar engine never imports this
module.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.client import default_horizon
from repro.traffic.arrivals import think_quantiles
from repro.traffic.spec import TrafficSpec
from repro.traffic.substreams import TAG_ARRIVAL, uniform_matrix

#: Ceiling (in entries) on the dense ``(file, phase) -> latency`` table;
#: programs with a bigger ``files x data-cycle`` product fall back to
#: per-file searchsorted lookups, which are O(log occurrences) instead
#: of O(1) but never materialize the product.
DENSE_LUT_CAP = 1 << 22


class RetrievalTables:
    """Fault-free retrieval outcomes for every ``(file, phase)``.

    Flat numpy arrays over a catalogue of ``n`` files (ids are catalogue
    positions):

    ``occ_offsets``
        ``(n + 1,)`` - slices of the concatenated occurrence arrays.
    ``occ_slots`` / ``occ_blocks``
        concatenated per-file occurrence slot / block-index arrays (one
        data cycle, slot-sorted - exactly ``ProgramIndex``'s tables).
    ``finish_rel``
        aligned with ``occ_slots``: for occurrence ``j`` of a file, the
        slot (relative to that occurrence's cycle base) at which a
        retrieval beginning at occurrence ``j`` collects its ``m``-th
        distinct block; ``-1`` when the file's occurrence set never
        yields ``m`` distinct blocks.
    ``horizons`` / ``m_needed`` / ``counts``
        per-file listening horizon, blocks required, occurrences per
        data cycle.
    ``sched_total`` + ``period``
        the schedule-level quantities PIX frequencies derive from.

    The tables are a pure function of ``(program, catalogue, sizes,
    max_slots)`` and are position-addressed, so they can be exported as
    one flat shared-memory block and attached zero-copy by pool workers
    (:mod:`repro.traffic.shm_index`).
    """

    __slots__ = (
        "cycle", "period", "occ_offsets", "occ_slots", "occ_blocks",
        "finish_rel", "horizons", "m_needed", "counts", "sched_total",
        "dense",
    )

    def __init__(
        self,
        *,
        cycle: int,
        period: int,
        occ_offsets: np.ndarray,
        occ_slots: np.ndarray,
        occ_blocks: np.ndarray,
        finish_rel: np.ndarray,
        horizons: np.ndarray,
        m_needed: np.ndarray,
        counts: np.ndarray,
        sched_total: np.ndarray,
        dense: np.ndarray | None = None,
    ) -> None:
        self.cycle = int(cycle)
        self.period = int(period)
        self.occ_offsets = occ_offsets
        self.occ_slots = occ_slots
        self.occ_blocks = occ_blocks
        self.finish_rel = finish_rel
        self.horizons = horizons
        self.m_needed = m_needed
        self.counts = counts
        self.sched_total = sched_total
        self.dense = dense
        if dense is None and self.n_files * self.cycle <= DENSE_LUT_CAP:
            self.dense = self._build_dense()

    @property
    def n_files(self) -> int:
        return len(self.horizons)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        program: BroadcastProgram,
        catalogue: Sequence[str],
        file_sizes: Mapping[str, int],
        max_slots: int | None,
    ) -> "RetrievalTables":
        """Derive the tables from a program's occurrence index."""
        index = program.index
        cycle = index.data_cycle_length
        offsets = [0]
        all_slots: list[int] = []
        all_blocks: list[int] = []
        finish: list[int] = []
        horizons: list[int] = []
        m_needed: list[int] = []
        counts: list[int] = []
        sched_total: list[int] = []
        for file in catalogue:
            slots = index.occurrence_slots(file)
            blocks = index.occurrence_blocks(file)
            size = file_sizes[file]
            all_slots.extend(slots)
            all_blocks.extend(blocks)
            offsets.append(len(all_slots))
            finish.extend(_finish_per_occurrence(slots, blocks, size, cycle))
            horizons.append(
                max_slots
                if max_slots is not None
                else default_horizon(program, size)
            )
            m_needed.append(size)
            counts.append(len(slots))
            sched_total.append(program.schedule.total(file))
        return cls(
            cycle=cycle,
            period=program.broadcast_period,
            occ_offsets=np.asarray(offsets, dtype=np.int64),
            occ_slots=np.asarray(all_slots, dtype=np.int64),
            occ_blocks=np.asarray(all_blocks, dtype=np.int64),
            finish_rel=np.asarray(finish, dtype=np.int64),
            horizons=np.asarray(horizons, dtype=np.int64),
            m_needed=np.asarray(m_needed, dtype=np.int64),
            counts=np.asarray(counts, dtype=np.int64),
            sched_total=np.asarray(sched_total, dtype=np.int64),
        )

    def _build_dense(self) -> np.ndarray:
        """The O(1) gather form: ``dense[file, phase] -> latency``
        (``-1`` for an abort), horizon already applied."""
        phases = np.arange(self.cycle, dtype=np.int64)
        dense = np.empty((self.n_files, self.cycle), dtype=np.int64)
        for fid in range(self.n_files):
            dense[fid] = self._latency_for_file(fid, phases)
        return dense

    def _latency_for_file(
        self, fid: int, phases: np.ndarray
    ) -> np.ndarray:
        """Fault-free latency per phase for one file (``-1`` = abort)."""
        lo, hi = self.occ_offsets[fid], self.occ_offsets[fid + 1]
        slots = self.occ_slots[lo:hi]
        finish = self.finish_rel[lo:hi]
        j = np.searchsorted(slots, phases, side="left")
        wrapped = j == len(slots)
        j = np.where(wrapped, 0, j)
        extra = np.where(wrapped, self.cycle, 0)
        fin = finish[j]
        latency = extra + fin - phases + 1
        abort = (fin < 0) | (latency > self.horizons[fid])
        return np.where(abort, -1, latency)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(
        self, file_ids: np.ndarray, starts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fault-free outcomes for a batch of ``(file, start)`` requests.

        Returns ``(latency, finish)``: ``latency`` is ``-1`` on an abort
        (horizon exhausted); ``finish`` is the last slot listened to
        either way - ``start + latency - 1`` on completion, ``start +
        horizon - 1`` on an abort.  Bit-identical to
        :func:`repro.sim.client.retrieve` over the fault-free channel
        (pinned by ``tests/traffic/test_engine_soa.py``).
        """
        phases = starts % self.cycle
        if self.dense is not None:
            latency = self.dense[file_ids, phases]
        else:
            latency = np.empty(len(file_ids), dtype=np.int64)
            for fid in np.unique(file_ids):
                member = file_ids == fid
                latency[member] = self._latency_for_file(
                    int(fid), phases[member]
                )
        aborted = latency < 0
        finish = np.where(
            aborted,
            starts + self.horizons[file_ids] - 1,
            starts + latency - 1,
        )
        return latency, finish

    def lookup_one(self, fid: int, start: int) -> tuple[int, int]:
        """Scalar :meth:`lookup`: one ``(latency, finish)`` outcome.

        The multichannel walk probes one ``(channel, file, listen)``
        triple at a time - the channel choice depends on the previous
        request's finish, so requests cannot batch across the choice.
        Same contract as :meth:`lookup` (``latency == -1`` on abort,
        ``finish`` the last slot listened to either way).
        """
        phase = int(start) % self.cycle
        if self.dense is not None:
            latency = int(self.dense[fid, phase])
        else:
            latency = int(
                self._latency_for_file(
                    fid, np.asarray([phase], dtype=np.int64)
                )[0]
            )
        if latency < 0:
            return -1, int(start) + int(self.horizons[fid]) - 1
        return latency, int(start) + latency - 1

    def array_fields(self) -> dict[str, np.ndarray]:
        """The flat arrays, by name (the shared-memory export set)."""
        fields = {
            "occ_offsets": self.occ_offsets,
            "occ_slots": self.occ_slots,
            "occ_blocks": self.occ_blocks,
            "finish_rel": self.finish_rel,
            "horizons": self.horizons,
            "m_needed": self.m_needed,
            "counts": self.counts,
            "sched_total": self.sched_total,
        }
        if self.dense is not None:
            fields["dense"] = self.dense
        return fields

    @classmethod
    def from_arrays(
        cls, cycle: int, period: int, arrays: Mapping[str, np.ndarray]
    ) -> "RetrievalTables":
        """Rehydrate from :meth:`array_fields` output (shm attach side)."""
        return cls(
            cycle=cycle,
            period=period,
            dense=arrays.get("dense"),
            **{
                name: arrays[name]
                for name in (
                    "occ_offsets", "occ_slots", "occ_blocks", "finish_rel",
                    "horizons", "m_needed", "counts", "sched_total",
                )
            },
        )


class MultiChannelTables:
    """Per-channel retrieval tables plus the channel-choice machinery.

    One :class:`RetrievalTables` per channel, each built over the
    *channel-local* catalogue (the files that channel carries, in global
    catalogue order), with a ``(channels, files)`` local-id map joining
    global file ids to per-channel table rows (``-1`` where a channel
    does not carry the file).  :meth:`choose` replicates the
    deterministic channel-choice rule of
    :func:`repro.sim.client.choose_channel` from the fault-free tables,
    so the vectorized engine's multichannel walk is bit-identical to the
    object engine's memoized oracle.

    Like :class:`RetrievalTables`, the whole structure is a pure
    function of ``(channel_set, catalogue, sizes, max_slots)`` and
    flattens to named arrays plus a small metadata dict, so pool workers
    can attach it from shared memory without the programs themselves
    (:func:`repro.traffic.shm_index.export_multichannel_tables`).
    """

    __slots__ = ("tables", "candidates", "tuning_cost", "local_ids")

    def __init__(
        self,
        tables: Sequence[RetrievalTables],
        candidates: Sequence[Sequence[int]],
        tuning_cost: int,
    ) -> None:
        self.tables = tuple(tables)
        self.candidates = tuple(
            tuple(int(c) for c in channels) for channels in candidates
        )
        self.tuning_cost = int(tuning_cost)
        # Channel-local catalogues preserve global order, so local ids
        # are the running rank of each file among a channel's carries.
        local_ids = np.full(
            (len(self.tables), len(self.candidates)), -1, dtype=np.int64
        )
        next_local = [0] * len(self.tables)
        for fid, channels in enumerate(self.candidates):
            for channel in channels:
                local_ids[channel, fid] = next_local[channel]
                next_local[channel] += 1
        self.local_ids = local_ids

    @property
    def count(self) -> int:
        return len(self.tables)

    @classmethod
    def build(
        cls,
        channel_set,  # ChannelSet (kept untyped: bdisk must not need numpy)
        catalogue: Sequence[str],
        file_sizes: Mapping[str, int],
        max_slots: int | None,
    ) -> "MultiChannelTables":
        """Derive per-channel tables from a channel set's programs."""
        candidates = [
            channel_set.channels_for(file) for file in catalogue
        ]
        tables = []
        for channel, program in enumerate(channel_set.programs):
            local = [
                file
                for file, channels in zip(catalogue, candidates)
                if channel in channels
            ]
            tables.append(
                RetrievalTables.build(program, local, file_sizes, max_slots)
            )
        return cls(tables, candidates, channel_set.tuning_cost)

    def horizon(self, channel: int, fid: int) -> int:
        """Listening horizon of global file ``fid`` on ``channel``."""
        return int(
            self.tables[channel].horizons[self.local_ids[channel, fid]]
        )

    def probe(self, channel: int, fid: int, listen: int) -> tuple[int, int]:
        """Fault-free ``(latency, finish)`` of one channel-local probe."""
        return self.tables[channel].lookup_one(
            int(self.local_ids[channel, fid]), listen
        )

    def choose(
        self, fid: int, start: int, tuned: int
    ) -> tuple[int, int, int, int]:
        """The channel-choice rule: ``(channel, listen, latency, finish)``.

        Fault-free probes only (faults never steer tuning); ``latency``
        is ``-1`` when even the best channel aborts.  Ties break on
        ``(aborted, busy-until, channel index)`` exactly like
        :func:`repro.sim.client.choose_channel`.
        """
        best: tuple[int, int, int] | None = None
        chosen: tuple[int, int, int, int] | None = None
        for candidate in self.candidates[fid]:
            listen = (
                start + self.tuning_cost if candidate != tuned else start
            )
            latency, finish = self.probe(candidate, fid, listen)
            key = (0 if latency >= 0 else 1, finish, candidate)
            if best is None or key < best:
                best = key
                chosen = (candidate, listen, latency, finish)
        assert chosen is not None  # every file is carried somewhere
        return chosen


def _finish_per_occurrence(
    slots: Sequence[int],
    blocks: Sequence[int],
    m_needed: int,
    cycle: int,
) -> list[int]:
    """Per occurrence ``j``: the slot (relative to occurrence ``j``'s
    cycle base) of the occurrence that completes a retrieval starting at
    ``j`` - the m-th distinct block - or ``-1`` when unreachable.

    Two-pointer sweep over the cyclically doubled occurrence list: the
    minimal completing occurrence is monotone in the start, so the whole
    table costs O(occurrences).
    """
    count = len(slots)
    need = max(1, m_needed)  # a 0-block file completes at the 1st block
    if count == 0 or len(set(blocks)) < need:
        return [-1] * count

    def occurrence(e: int) -> tuple[int, int]:
        quotient, remainder = divmod(e, count)
        return slots[remainder] + quotient * cycle, blocks[remainder]

    finish: list[int] = []
    in_window: dict[int, int] = {}
    e = 0
    for j in range(count):
        while len(in_window) < need:
            block = occurrence(e)[1]
            in_window[block] = in_window.get(block, 0) + 1
            e += 1
        finish.append(occurrence(e - 1)[0])
        block = occurrence(j)[1]
        in_window[block] -= 1
        if not in_window[block]:
            del in_window[block]
    return finish


def cohort_waves(
    next_slot: np.ndarray,
    remaining: np.ndarray,
    window: int,
) -> Iterator[np.ndarray]:
    """Yield cohorts: index arrays of clients whose next event lies in
    the current slot window.

    The caller owns ``next_slot`` and ``remaining`` and mutates them
    between waves (advancing served clients, decrementing their request
    budgets); the iterator re-reads them each round.  A window is
    drained before moving on: clients whose follow-up events land inside
    the same window are served again before the window advances to the
    earliest pending event.  Event *order inside a wave is irrelevant*
    because clients are independent and the metrics accumulators are
    order-independent - that is the whole trick.
    """
    if window < 1:
        raise SpecificationError(f"cohort window must be >= 1: {window}")
    while True:
        alive = remaining > 0
        if not alive.any():
            return
        window_end = next_slot[alive].min() + window
        while True:
            members = np.nonzero(alive & (next_slot < window_end))[0]
            if members.size == 0:
                break  # window drained: jump to the next pending event
            yield members
            alive = remaining > 0
            if not alive.any():
                return


# ----------------------------------------------------------------------
# Vectorized mirrors of the scalar per-client draws
# ----------------------------------------------------------------------


def arrival_vector(spec: TrafficSpec, lo: int, hi: int) -> np.ndarray:
    """Arrival slots of clients ``[lo, hi)`` - the vectorized
    :func:`repro.traffic.arrivals.arrival_slot`, bit-identical by
    construction (same uniforms, same float expressions)."""
    indices = np.arange(lo, hi, dtype=np.int64)
    if spec.arrival == "deterministic":
        return indices * spec.duration // spec.clients
    if spec.arrival == "poisson":
        u = uniform_matrix(spec.seed, TAG_ARRIVAL, lo, hi, 1)[:, 0]
        return (u * spec.duration).astype(np.int64)
    u = uniform_matrix(spec.seed, TAG_ARRIVAL, lo, hi, 2)
    burst = np.minimum(
        spec.bursts - 1, (u[:, 0] * spec.bursts).astype(np.int64)
    )
    centre = (burst + 0.5) * spec.duration / spec.bursts
    offset = (u[:, 1] - 0.5) * spec.burst_width
    raw = (centre + offset).astype(np.int64)  # trunc toward zero = int()
    return np.minimum(spec.duration - 1, np.maximum(0, raw))


def file_draw(
    cum_weights: np.ndarray, total: float, u: np.ndarray
) -> np.ndarray:
    """Popularity picks from uniforms - the vectorized
    ``choices(cum_weights=...)`` draw (bisect on the running totals)."""
    picks = np.searchsorted(cum_weights, u * total, side="right")
    return np.minimum(picks, len(cum_weights) - 1)


class ThinkSampler:
    """Vectorized think-time draws matching
    :func:`repro.traffic.arrivals.think_slots` bit-for-bit."""

    __slots__ = ("_mean", "_table")

    def __init__(self, mean: int) -> None:
        if mean < 0:
            raise SpecificationError(
                f"mean think time must be >= 0: {mean}"
            )
        self._mean = mean
        self._table = (
            None if mean == 0 else think_quantiles(mean)
        )
        if self._table is not None:
            self._table = np.asarray(self._table, dtype=np.float64)

    def sample(self, u: np.ndarray) -> np.ndarray:
        """Think times for a batch of uniforms."""
        if self._mean == 0:
            return np.zeros(len(u), dtype=np.int64)
        if self._table is None:
            # Huge means fall back to the closed form; evaluated with
            # math.log exactly like the scalar path (numpy's log can
            # differ in the last ulp, which would break bit-identity).
            import math

            return np.asarray(
                [int(-self._mean * math.log(1.0 - x)) for x in u],
                dtype=np.int64,
            )
        return np.searchsorted(self._table, u, side="right").astype(
            np.int64
        )
