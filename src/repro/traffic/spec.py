"""The declarative traffic specification.

:class:`TrafficSpec` is to the traffic subsystem what
:class:`repro.api.FaultSpec` is to the channel: one immutable,
JSON-round-trippable object naming the whole open-loop population - how
many clients, over how many slots, arriving how, asking for what, and
behaving how once connected.  ``repro.api.Scenario`` embeds one under
its ``"traffic"`` key; the CLI's ``repro traffic`` subcommand overrides
its headline fields from flags.

Validation is eager (construction raises
:class:`repro.errors.SpecificationError` on any inconsistent value) and
serialization emits only the parameters the chosen kinds actually use,
matching the ``FaultSpec`` idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.traffic.arrivals import ARRIVAL_KINDS, POPULARITY_KINDS

#: Cache policies a session population can run in front of retrievals.
CACHE_KINDS = ("lru", "pix")


def _check_int(value: Any, what: str, *, minimum: int | None = None) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be an integer, got {type(value).__name__}: "
            f"{value!r}"
        )
    if minimum is not None and value < minimum:
        raise SpecificationError(f"{what} must be >= {minimum}: {value}")


def _check_number(value: Any, what: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be a number, got {type(value).__name__}: "
            f"{value!r}"
        )


@dataclass(frozen=True)
class TrafficSpec:
    """An open-loop client population over a broadcast channel.

    Attributes
    ----------
    clients:
        Session count arriving over the run.
    duration:
        Arrival horizon in slots (sessions arrive in ``[0, duration)``;
        their retrievals may drain beyond it).
    arrival:
        ``"poisson"``, ``"deterministic"``, or ``"bursty"`` (see
        :mod:`repro.traffic.arrivals`).
    popularity:
        ``"uniform"``, ``"zipf"``, or ``"hotcold"`` file choice over the
        hottest-first catalogue.
    zipf_skew:
        Skew for ``"zipf"`` popularity.
    hot_fraction / hot_weight:
        Hot-set shape for ``"hotcold"`` popularity.
    bursts / burst_width:
        Flash-crowd shape for ``"bursty"`` arrivals.
    requests_per_client:
        Requests each session issues before leaving.
    think_time:
        Mean think time between a session's requests (slots,
        exponentially distributed; 0 = back-to-back).
    cache:
        ``None`` (no client cache), ``"lru"``, or ``"pix"``.
    cache_capacity:
        Client cache capacity in files (when caching).
    max_slots:
        Per-retrieval listening horizon override (default: the
        retriever's ``(m + 2)`` data cycles).
    seed:
        Master seed; every client derives an independent substream.
    """

    clients: int = 100
    duration: int = 1000
    arrival: str = "poisson"
    popularity: str = "zipf"
    zipf_skew: float = 1.0
    hot_fraction: float = 0.1
    hot_weight: float = 0.9
    bursts: int = 8
    burst_width: int = 64
    requests_per_client: int = 1
    think_time: int = 0
    cache: str | None = None
    cache_capacity: int = 4
    max_slots: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        _check_int(self.clients, "traffic clients", minimum=1)
        _check_int(self.duration, "traffic duration", minimum=1)
        if self.arrival not in ARRIVAL_KINDS:
            raise SpecificationError(
                f"unknown arrival kind {self.arrival!r} "
                f"(expected one of {ARRIVAL_KINDS})"
            )
        if self.popularity not in POPULARITY_KINDS:
            raise SpecificationError(
                f"unknown popularity kind {self.popularity!r} "
                f"(expected one of {POPULARITY_KINDS})"
            )
        _check_number(self.zipf_skew, "traffic zipf_skew")
        if self.zipf_skew < 0:
            raise SpecificationError(
                f"traffic zipf_skew must be >= 0: {self.zipf_skew}"
            )
        _check_number(self.hot_fraction, "traffic hot_fraction")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise SpecificationError(
                f"traffic hot_fraction must be in (0, 1]: "
                f"{self.hot_fraction}"
            )
        _check_number(self.hot_weight, "traffic hot_weight")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise SpecificationError(
                f"traffic hot_weight must be in [0, 1]: {self.hot_weight}"
            )
        _check_int(self.bursts, "traffic bursts", minimum=1)
        _check_int(self.burst_width, "traffic burst_width", minimum=1)
        _check_int(
            self.requests_per_client,
            "traffic requests_per_client",
            minimum=1,
        )
        _check_int(self.think_time, "traffic think_time", minimum=0)
        if self.cache is not None and self.cache not in CACHE_KINDS:
            raise SpecificationError(
                f"unknown cache kind {self.cache!r} "
                f"(expected one of {CACHE_KINDS} or null)"
            )
        _check_int(self.cache_capacity, "traffic cache_capacity", minimum=1)
        if self.max_slots is not None:
            _check_int(self.max_slots, "traffic max_slots", minimum=1)
        _check_int(self.seed, "traffic seed")

    @property
    def total_requests(self) -> int:
        """Requests the whole population will issue."""
        return self.clients * self.requests_per_client

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict carrying only the active kinds' parameters."""
        payload: dict[str, Any] = {
            "clients": self.clients,
            "duration": self.duration,
            "arrival": self.arrival,
            "popularity": self.popularity,
            "requests_per_client": self.requests_per_client,
            "think_time": self.think_time,
            "seed": self.seed,
        }
        if self.popularity == "zipf":
            payload["zipf_skew"] = self.zipf_skew
        elif self.popularity == "hotcold":
            payload["hot_fraction"] = self.hot_fraction
            payload["hot_weight"] = self.hot_weight
        if self.arrival == "bursty":
            payload["bursts"] = self.bursts
            payload["burst_width"] = self.burst_width
        if self.cache is not None:
            payload["cache"] = self.cache
            payload["cache_capacity"] = self.cache_capacity
        if self.max_slots is not None:
            payload["max_slots"] = self.max_slots
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TrafficSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        if not isinstance(payload, Mapping):
            raise SpecificationError(
                f"traffic spec must be an object, got "
                f"{type(payload).__name__}: {payload!r}"
            )
        allowed = {
            "clients", "duration", "arrival", "popularity", "zipf_skew",
            "hot_fraction", "hot_weight", "bursts", "burst_width",
            "requests_per_client", "think_time", "cache",
            "cache_capacity", "max_slots", "seed",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise SpecificationError(
                f"traffic spec: unknown keys {sorted(unknown)} "
                f"(allowed: {sorted(allowed)})"
            )
        return cls(**payload)

    def describe(self) -> str:
        """A one-line human summary (used by reports and the CLI)."""
        popularity = {
            "uniform": "uniform",
            "zipf": f"zipf(skew={self.zipf_skew})",
            "hotcold": (
                f"hotcold({self.hot_fraction:.0%} hot draws "
                f"{self.hot_weight:.0%})"
            ),
        }[self.popularity]
        arrival = self.arrival
        if self.arrival == "bursty":
            arrival = (
                f"bursty({self.bursts} bursts, width {self.burst_width})"
            )
        parts = [
            f"{self.clients} clients over {self.duration} slots",
            f"{arrival} arrivals",
            f"{popularity} popularity",
            f"{self.requests_per_client} requests/client",
        ]
        if self.think_time:
            parts.append(f"think {self.think_time}")
        if self.cache is not None:
            parts.append(
                f"{self.cache} cache x{self.cache_capacity}"
            )
        return ", ".join(parts)
