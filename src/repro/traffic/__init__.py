"""Open-loop traffic simulation: client populations at scale.

Where :mod:`repro.sim.runner` replays a fixed, closed list of requests,
this subpackage models *sustained load*: populations of client sessions
arriving over time, each a small state machine issuing requests against
the shared broadcast channel.  The pieces:

* :mod:`repro.traffic.kernel` - the discrete-event kernel: an event
  heap keyed on broadcast slots;
* :mod:`repro.traffic.arrivals` - arrival processes (Poisson,
  deterministic, bursty) and popularity laws (uniform, Zipf, hot/cold)
  over per-client seeded RNG substreams;
* :mod:`repro.traffic.clients` - session state machines with
  think-time, optional client caching, and the single-receiver
  constraint;
* :mod:`repro.traffic.metrics` - streaming metrics: P2 quantile
  estimators, seeded reservoir sampling, exact latency histograms, and
  exact shard merging;
* :mod:`repro.traffic.spec` - the declarative, JSON-round-trippable
  :class:`TrafficSpec` that :class:`repro.api.Scenario` embeds;
* :mod:`repro.traffic.simulate` - :func:`simulate_traffic`: advance
  every session service-to-service via the program's occurrence index,
  sharding the population across processes for multi-core runs.

Quickstart::

    from repro.traffic import TrafficSpec, simulate_traffic

    result = simulate_traffic(
        program,
        catalogue=["hot", "warm", "cold"],
        spec=TrafficSpec(clients=10_000, duration=100_000),
        file_sizes={"hot": 2, "warm": 3, "cold": 5},
        deadlines={"hot": 20, "warm": 40, "cold": 80},
        max_workers=8,
    )
    print(result.report())
"""

from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    POPULARITY_KINDS,
    arrival_rng,
    arrival_slot,
    client_rng,
    popularity_weights,
    think_slots,
)
from repro.traffic.clients import (
    ClientSession,
    RequestRecord,
    TransactionSession,
)
from repro.traffic.kernel import EventKernel
from repro.traffic.metrics import (
    P2Quantile,
    ReservoirSample,
    TrafficMetrics,
)
from repro.traffic.spec import CACHE_KINDS, TrafficSpec
from repro.traffic.simulate import (
    ENGINES,
    TrafficResult,
    shard_bounds,
    simulate_traffic,
    simulate_traffic_shard,
)

__all__ = [
    "ARRIVAL_KINDS",
    "CACHE_KINDS",
    "ENGINES",
    "POPULARITY_KINDS",
    "ClientSession",
    "EventKernel",
    "P2Quantile",
    "RequestRecord",
    "ReservoirSample",
    "TrafficMetrics",
    "TrafficResult",
    "TrafficSpec",
    "TransactionSession",
    "arrival_rng",
    "arrival_slot",
    "client_rng",
    "popularity_weights",
    "shard_bounds",
    "simulate_traffic",
    "simulate_traffic_shard",
    "think_slots",
]
