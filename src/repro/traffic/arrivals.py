"""Arrival processes and popularity laws for open-loop populations.

An open-loop traffic run is parameterized by *when* sessions arrive and
*what* they ask for.  Both are derived per client index from an
independent seeded RNG stream (``client_rng``), which is what makes
population sharding exact: a client behaves identically whichever shard
simulates it, so splitting the index range across processes cannot
change a single outcome.

Arrival kinds (``clients`` sessions over ``duration`` slots):

* ``"poisson"`` - arrival slots i.i.d. uniform over the duration, which
  is exactly a Poisson process conditioned on its arrival count;
* ``"deterministic"`` - evenly spaced arrivals (a paced load generator);
* ``"bursty"`` - each client joins one of ``bursts`` evenly spaced
  flash crowds and arrives within ``burst_width`` slots of its centre
  (mode changes, breaking news, fault storms).

Popularity kinds (catalogue ordered hottest-first):

* ``"uniform"`` - every file equally likely;
* ``"zipf"`` - :func:`repro.sim.workload.zipf_weights` with a skew;
* ``"hotcold"`` - :func:`repro.sim.workload.hot_cold_weights`: a hot
  fraction of the catalogue draws a fixed share of the accesses.
"""

from __future__ import annotations

import random

from repro.errors import SpecificationError
from repro.sim.workload import hot_cold_weights, zipf_weights

#: Arrival-process kinds a :class:`repro.api.TrafficSpec` understands.
ARRIVAL_KINDS = ("poisson", "deterministic", "bursty")

#: Popularity-law kinds a :class:`repro.api.TrafficSpec` understands.
POPULARITY_KINDS = ("uniform", "zipf", "hotcold")


def client_rng(seed: int, index: int) -> random.Random:
    """The behaviour RNG stream of client ``index`` (files, think times).

    String seeds hash through SHA-512 in CPython, so the stream is
    stable across processes and interpreter runs - the property that
    makes sharded populations bit-identical to serial ones.
    """
    return random.Random(f"{seed}:client:{index}")


def arrival_rng(seed: int, index: int) -> random.Random:
    """The arrival RNG stream of client ``index``.

    Arrivals draw from their own substream because arrival kinds consume
    different draw counts (deterministic none, Poisson one, bursty two):
    feeding them from the behaviour stream would make swapping the
    arrival process silently reshuffle every client's file choices and
    think times, confounding arrival-kind comparisons at a fixed seed.
    """
    return random.Random(f"{seed}:arrival:{index}")


def arrival_slot(
    kind: str,
    rng: random.Random,
    index: int,
    clients: int,
    duration: int,
    *,
    bursts: int = 8,
    burst_width: int = 64,
) -> int:
    """The arrival slot of client ``index`` in ``[0, duration)``.

    ``rng`` should be the client's dedicated arrival substream
    (:func:`arrival_rng`), never its behaviour stream - kinds consume
    different draw counts, and isolating them is what lets arrival
    processes swap without perturbing anything else about a client.
    """
    if kind not in ARRIVAL_KINDS:
        raise SpecificationError(
            f"unknown arrival kind {kind!r} (expected one of "
            f"{ARRIVAL_KINDS})"
        )
    if clients < 1 or duration < 1:
        raise SpecificationError("clients and duration must be >= 1")
    if not 0 <= index < clients:
        raise SpecificationError(
            f"client index must be in [0, {clients}): {index}"
        )
    if kind == "deterministic":
        return index * duration // clients
    if kind == "poisson":
        return int(rng.random() * duration)
    if bursts < 1 or burst_width < 1:
        raise SpecificationError("bursts and burst_width must be >= 1")
    burst = rng.randrange(bursts)
    centre = (burst + 0.5) * duration / bursts
    offset = (rng.random() - 0.5) * burst_width
    return min(duration - 1, max(0, int(centre + offset)))


def popularity_weights(
    kind: str,
    count: int,
    *,
    zipf_skew: float = 1.0,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
) -> list[float]:
    """Relative access weights over a hottest-first catalogue."""
    if kind not in POPULARITY_KINDS:
        raise SpecificationError(
            f"unknown popularity kind {kind!r} (expected one of "
            f"{POPULARITY_KINDS})"
        )
    if count < 1:
        raise SpecificationError(f"count must be >= 1: {count}")
    if kind == "uniform":
        return [1.0] * count
    if kind == "zipf":
        return zipf_weights(count, zipf_skew)
    return hot_cold_weights(
        count, hot_fraction=hot_fraction, hot_weight=hot_weight
    )


def think_slots(rng: random.Random, mean: int) -> int:
    """One seeded think-time draw (slots).

    Exponentially distributed with the given mean, rounded to whole
    slots; a mean of 0 is the non-thinking client (back-to-back
    requests).
    """
    if mean < 0:
        raise SpecificationError(f"mean think time must be >= 0: {mean}")
    if mean == 0:
        return 0
    return int(rng.expovariate(1.0 / mean))
