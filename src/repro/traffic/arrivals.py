"""Arrival processes and popularity laws for open-loop populations.

An open-loop traffic run is parameterized by *when* sessions arrive and
*what* they ask for.  Both are derived per client index from an
independent seeded RNG stream (``client_rng``), which is what makes
population sharding exact: a client behaves identically whichever shard
simulates it, so splitting the index range across processes cannot
change a single outcome.

The streams are counter-based (:mod:`repro.traffic.substreams`): every
draw is a pure function of ``(seed, purpose, client index, position)``,
so stream creation is O(1) and the vectorized engine can materialize
whole draw matrices that agree bit-for-bit with the scalar sessions.

Arrival kinds (``clients`` sessions over ``duration`` slots):

* ``"poisson"`` - arrival slots i.i.d. uniform over the duration, which
  is exactly a Poisson process conditioned on its arrival count;
* ``"deterministic"`` - evenly spaced arrivals (a paced load generator);
* ``"bursty"`` - each client joins one of ``bursts`` evenly spaced
  flash crowds and arrives within ``burst_width`` slots of its centre
  (mode changes, breaking news, fault storms).

Popularity kinds (catalogue ordered hottest-first):

* ``"uniform"`` - every file equally likely;
* ``"zipf"`` - :func:`repro.sim.workload.zipf_weights` with a skew;
* ``"hotcold"`` - :func:`repro.sim.workload.hot_cold_weights`: a hot
  fraction of the catalogue draws a fixed share of the accesses.

Popularity CDFs are memoized per parameter tuple
(:func:`popularity_cdf`), so population setup costs O(catalogue) once
per spec rather than O(clients x catalogue) - the bench asserts this.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from functools import lru_cache
from itertools import accumulate

from repro.errors import SpecificationError
from repro.sim.workload import hot_cold_weights, zipf_weights
from repro.traffic.substreams import (
    TAG_ARRIVAL,
    TAG_CLIENT,
    Substream,
    stream_base,
)

#: Arrival-process kinds a :class:`repro.api.TrafficSpec` understands.
ARRIVAL_KINDS = ("poisson", "deterministic", "bursty")

#: Popularity-law kinds a :class:`repro.api.TrafficSpec` understands.
POPULARITY_KINDS = ("uniform", "zipf", "hotcold")


def client_rng(seed: int, index: int) -> Substream:
    """The behaviour RNG stream of client ``index`` (files, think times).

    Counter-based, so the stream is stable across processes and
    interpreter runs - the property that makes sharded populations
    bit-identical to serial ones - and creation is O(1), which is what
    lets a million-client population spin up its streams in
    milliseconds.
    """
    return Substream(stream_base(seed, TAG_CLIENT, index))


def arrival_rng(seed: int, index: int) -> Substream:
    """The arrival RNG stream of client ``index``.

    Arrivals draw from their own substream because arrival kinds consume
    different draw counts (deterministic none, Poisson one, bursty two):
    feeding them from the behaviour stream would make swapping the
    arrival process silently reshuffle every client's file choices and
    think times, confounding arrival-kind comparisons at a fixed seed.
    """
    return Substream(stream_base(seed, TAG_ARRIVAL, index))


def arrival_slot(
    kind: str,
    rng: Substream,
    index: int,
    clients: int,
    duration: int,
    *,
    bursts: int = 8,
    burst_width: int = 64,
) -> int:
    """The arrival slot of client ``index`` in ``[0, duration)``.

    ``rng`` should be the client's dedicated arrival substream
    (:func:`arrival_rng`), never its behaviour stream - kinds consume
    different draw counts, and isolating them is what lets arrival
    processes swap without perturbing anything else about a client.
    """
    if kind not in ARRIVAL_KINDS:
        raise SpecificationError(
            f"unknown arrival kind {kind!r} (expected one of "
            f"{ARRIVAL_KINDS})"
        )
    if clients < 1 or duration < 1:
        raise SpecificationError("clients and duration must be >= 1")
    if not 0 <= index < clients:
        raise SpecificationError(
            f"client index must be in [0, {clients}): {index}"
        )
    if kind == "deterministic":
        return index * duration // clients
    if kind == "poisson":
        return int(rng.random() * duration)
    if bursts < 1 or burst_width < 1:
        raise SpecificationError("bursts and burst_width must be >= 1")
    # Exactly two plain uniforms (burst pick, offset): a fixed draw
    # layout is what lets the vectorized engine mirror this bit-for-bit.
    burst = min(bursts - 1, int(rng.random() * bursts))
    centre = (burst + 0.5) * duration / bursts
    offset = (rng.random() - 0.5) * burst_width
    return min(duration - 1, max(0, int(centre + offset)))


def popularity_weights(
    kind: str,
    count: int,
    *,
    zipf_skew: float = 1.0,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
) -> list[float]:
    """Relative access weights over a hottest-first catalogue."""
    if kind not in POPULARITY_KINDS:
        raise SpecificationError(
            f"unknown popularity kind {kind!r} (expected one of "
            f"{POPULARITY_KINDS})"
        )
    if count < 1:
        raise SpecificationError(f"count must be >= 1: {count}")
    if kind == "uniform":
        return [1.0] * count
    if kind == "zipf":
        return zipf_weights(count, zipf_skew)
    return hot_cold_weights(
        count, hot_fraction=hot_fraction, hot_weight=hot_weight
    )


@lru_cache(maxsize=256)
def _popularity_cdf(
    kind: str,
    count: int,
    zipf_skew: float,
    hot_fraction: float,
    hot_weight: float,
) -> tuple[float, ...]:
    return tuple(
        accumulate(
            popularity_weights(
                kind,
                count,
                zipf_skew=zipf_skew,
                hot_fraction=hot_fraction,
                hot_weight=hot_weight,
            )
        )
    )


def popularity_cdf(
    kind: str,
    count: int,
    *,
    zipf_skew: float = 1.0,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.9,
) -> tuple[float, ...]:
    """The running-total form of :func:`popularity_weights`, memoized.

    Keyed on the full parameter tuple and computed once per distinct
    spec - population setup is O(catalogue), not O(clients x catalogue).
    Sessions pass the shared tuple straight to ``choices(cum_weights=)``;
    draws are bit-identical to accumulating raw weights per session.
    The returned tuple is shared and must not be mutated.
    """
    return _popularity_cdf(kind, count, zipf_skew, hot_fraction, hot_weight)


#: Longest quantile table a think-time mean may expand to (entries).
#: ``1 - exp(-k/mean)`` reaches float 1.0 near ``k ~ 37 * mean``, so the
#: cap covers means up to roughly 1700 slots; beyond it the closed-form
#: fallback applies (identically in both engines).
_THINK_TABLE_CAP = 1 << 16


@lru_cache(maxsize=64)
def think_quantiles(mean: int) -> tuple[float, ...] | None:
    """Quantile boundaries of the truncated-exponential think time.

    Entry ``k`` (0-based) is ``P[think <= k] = 1 - exp(-(k+1)/mean)``;
    a uniform draw ``u`` maps to the think time ``bisect_right(table,
    u)`` - the same computation whether done with :mod:`bisect` or
    ``numpy.searchsorted``, which is what keeps the scalar and
    vectorized engines bit-identical.  Returns ``None`` when the table
    would exceed :data:`_THINK_TABLE_CAP` entries (huge means); callers
    then use the closed form ``int(-mean * log(1 - u))``.
    """
    if mean < 1:
        raise SpecificationError(f"mean think time must be >= 1: {mean}")
    boundaries: list[float] = []
    for k in range(1, _THINK_TABLE_CAP + 1):
        boundary = 1.0 - math.exp(-k / mean)
        if boundary >= 1.0:
            return tuple(boundaries)
        boundaries.append(boundary)
    return None


def think_slots(rng: Substream, mean: int) -> int:
    """One seeded think-time draw (slots).

    Exponentially distributed with the given mean, truncated to whole
    slots; a mean of 0 is the non-thinking client (back-to-back
    requests, no draw consumed).  Every positive mean consumes exactly
    one uniform.
    """
    if mean < 0:
        raise SpecificationError(f"mean think time must be >= 0: {mean}")
    if mean == 0:
        return 0
    u = rng.random()
    table = think_quantiles(mean)
    if table is None:
        return int(-mean * math.log(1.0 - u))
    return bisect_right(table, u)
