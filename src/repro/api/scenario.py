"""Declarative scenario specifications for end-to-end experiments.

A :class:`Scenario` captures *everything* one broadcast-disk experiment
needs - the file catalogue (regular or generalized), bandwidth and block
size options, an optional per-mode AIDA redundancy policy, the channel
fault model, a client workload, the scheduler policy, and an optional
worst-case delay sweep - as one immutable, JSON-round-trippable object.
:class:`repro.api.engine.BroadcastEngine` turns a scenario into results.

Scenarios validate eagerly: any inconsistent combination raises
:class:`repro.errors.SpecificationError` at construction time, so a bad
JSON file fails at ``Scenario.from_file`` rather than mid-pipeline.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.core.registry import POLICIES, get_scheduler
from repro.ida.aida import RedundancyPolicy
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.rtdb.spec import TemporalSpec
from repro.traffic.spec import TrafficSpec
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    FaultModel,
    NoFaults,
)

#: Fault-model kinds a :class:`FaultSpec` understands.
FAULT_KINDS = ("none", "bernoulli", "burst", "adversarial")


def _check_int(value: Any, what: str, *, minimum: int | None = None) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be an integer, got {type(value).__name__}: "
            f"{value!r}"
        )
    if minimum is not None and value < minimum:
        raise SpecificationError(f"{what} must be >= {minimum}: {value}")


def _check_number(value: Any, what: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be a number, got {type(value).__name__}: "
            f"{value!r}"
        )


def _require_keys(
    payload: Mapping[str, Any], allowed: set[str], what: str
) -> None:
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"{what} must be an object, got {type(payload).__name__}: "
            f"{payload!r}"
        )
    unknown = set(payload) - allowed
    if unknown:
        raise SpecificationError(
            f"{what}: unknown keys {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


@dataclass(frozen=True)
class FaultSpec:
    """A declarative channel fault model.

    ``kind`` selects the model; only that model's parameters are
    meaningful (and serialized):

    * ``"none"`` - the failure-free channel;
    * ``"bernoulli"`` - i.i.d. per-slot losses with ``probability``;
    * ``"burst"`` - Gilbert-style bursts with ``p_enter``/``p_exit``;
    * ``"adversarial"`` - an explicit ``lost_slots`` set.
    """

    kind: str = "none"
    probability: float = 0.0
    p_enter: float = 0.0
    p_exit: float = 1.0
    lost_slots: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecificationError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {FAULT_KINDS})"
            )
        _check_number(self.probability, "fault probability")
        _check_number(self.p_enter, "fault p_enter")
        _check_number(self.p_exit, "fault p_exit")
        _check_int(self.seed, "fault seed")
        try:
            object.__setattr__(self, "lost_slots", tuple(self.lost_slots))
        except TypeError as error:
            raise SpecificationError(
                f"fault lost_slots must be a list of slots: {error}"
            ) from error
        # Parameter validation is the models' own; building one surfaces
        # range errors (probabilities, negative slots) eagerly.
        self.build()

    def build(self) -> FaultModel:
        """A fresh fault-model instance (burst models carry state)."""
        if self.kind == "none":
            return NoFaults()
        if self.kind == "bernoulli":
            return BernoulliFaults(self.probability, seed=self.seed)
        if self.kind == "burst":
            return BurstFaults(self.p_enter, self.p_exit, seed=self.seed)
        return AdversarialFaults(self.lost_slots)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict with only the active model's parameters."""
        if self.kind == "bernoulli":
            return {
                "kind": self.kind,
                "probability": self.probability,
                "seed": self.seed,
            }
        if self.kind == "burst":
            return {
                "kind": self.kind,
                "p_enter": self.p_enter,
                "p_exit": self.p_exit,
                "seed": self.seed,
            }
        if self.kind == "adversarial":
            return {"kind": self.kind, "lost_slots": list(self.lost_slots)}
        return {"kind": self.kind}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"kind", "probability", "p_enter", "p_exit", "lost_slots",
             "seed"},
            "fault spec",
        )
        # __post_init__ tuple-ifies lost_slots itself, with a guard that
        # turns non-iterables into SpecificationError.
        return cls(**payload)


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded client request stream.

    ``requests`` arrivals, uniform over ``horizon`` slots, file choice
    Zipf-weighted by catalogue position when ``zipf_skew > 0`` (hot files
    first).  Deadlines come from each file's latency budget.
    """

    requests: int = 100
    horizon: int = 500
    zipf_skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_int(self.requests, "workload requests", minimum=1)
        _check_int(self.horizon, "workload horizon", minimum=1)
        _check_number(self.zipf_skew, "workload zipf_skew")
        _check_int(self.seed, "workload seed")
        if self.zipf_skew < 0:
            raise SpecificationError(
                f"workload zipf_skew must be >= 0: {self.zipf_skew}"
            )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict of all four parameters."""
        return {
            "requests": self.requests,
            "horizon": self.horizon,
            "zipf_skew": self.zipf_skew,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"requests", "horizon", "zipf_skew", "seed"},
            "workload spec",
        )
        return cls(**payload)


def _file_to_dict(spec: FileSpec | GeneralizedFileSpec) -> dict[str, Any]:
    if isinstance(spec, GeneralizedFileSpec):
        payload: dict[str, Any] = {
            "name": spec.name,
            "blocks": spec.blocks,
            "latency_vector": list(spec.latency_vector),
        }
    else:
        payload = {
            "name": spec.name,
            "blocks": spec.blocks,
            "latency": spec.latency,
            "fault_budget": spec.fault_budget,
        }
    # Explicit payload bytes round-trip as base64 (omitted when absent,
    # since simulators synthesize deterministic payloads from the name).
    if spec.data is not None:
        payload["data"] = base64.b64encode(spec.data).decode("ascii")
    return payload


def _decode_payload_data(encoded: str | None) -> bytes | None:
    if encoded is None:
        return None
    try:
        return base64.b64decode(encoded, validate=True)
    except (ValueError, TypeError) as error:
        raise SpecificationError(
            f"file data must be base64-encoded: {error}"
        ) from error


def _file_from_dict(
    payload: Mapping[str, Any]
) -> FileSpec | GeneralizedFileSpec:
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"each file entry must be an object, got "
            f"{type(payload).__name__}: {payload!r}"
        )
    if "latency_vector" in payload:
        allowed, required = {"name", "blocks", "latency_vector", "data"}, {
            "name", "blocks", "latency_vector",
        }
    else:
        allowed, required = {
            "name", "blocks", "latency", "fault_budget", "data",
        }, {"name", "blocks", "latency"}
    what = "generalized file" if "latency_vector" in payload else "file"
    _require_keys(payload, allowed, what)
    missing = required - set(payload)
    if missing:
        raise SpecificationError(
            f"{what} entry is missing required keys {sorted(missing)}: "
            f"{dict(payload)!r}"
        )
    data = _decode_payload_data(payload.get("data"))
    if "latency_vector" in payload:
        try:
            vector = tuple(payload["latency_vector"])
        except TypeError as error:
            raise SpecificationError(
                f"generalized file latency_vector must be a list of "
                f"slots: {error}"
            ) from error
        return GeneralizedFileSpec(
            payload["name"],
            payload["blocks"],
            vector,
            data=data,
        )
    return FileSpec(
        payload["name"],
        payload["blocks"],
        payload["latency"],
        fault_budget=payload.get("fault_budget", 0),
        data=data,
    )


@dataclass(frozen=True)
class Scenario:
    """One declarative end-to-end broadcast-disk experiment.

    Attributes
    ----------
    name:
        Scenario identity (used in summaries and batch sweeps).
    files:
        The catalogue - all :class:`FileSpec` (regular model, Section
        3.2) or all :class:`GeneralizedFileSpec` (latency vectors,
        Section 4); mixing the two models is rejected.
    bandwidth:
        Optional forced channel bandwidth in blocks/second (regular model
        only; default: the Equation 1/2 bound).
    block_size:
        Payload block size in bytes for simulation payloads.
    mode:
        Operation mode selecting budgets from ``redundancy``.
    redundancy:
        Optional per-mode AIDA :class:`RedundancyPolicy`; when present
        (with ``mode``), it *overrides* each regular file's
        ``fault_budget``.
    faults:
        Channel fault model for the simulation phase.
    workload:
        Optional client workload; ``None`` skips the simulation phase.
    traffic:
        Optional open-loop client population
        (:class:`repro.traffic.TrafficSpec`); ``None`` skips the
        traffic phase.  Where ``workload`` replays a fixed request
        list, ``traffic`` simulates sustained load: arrival processes,
        session think times, client caches, and streaming metrics.
    temporal:
        Optional real-time database layer
        (:class:`repro.rtdb.TemporalSpec`).  When present the scenario
        *derives its catalogue from the items*: ``files`` must be
        empty, each item's temporal constraint becomes the file's
        latency budget in slots, the active mode selects fault budgets,
        and the channel designs at bandwidth 1 (one block per slot of
        ``slot_ms`` milliseconds).  Traffic populations then run the
        version-consistent transaction clients and report staleness /
        consistency metrics.
    scheduler_policy:
        ``"auto"``, ``"exact-first"``, or an explicit tuple of registered
        scheduler names (see :mod:`repro.core.registry`).
    delay_errors:
        When set, compute the exact worst-case delay table (Figure 7
        style) for fault counts ``0..delay_errors``.  Exhaustive - keep
        small.
    """

    name: str
    files: tuple[FileSpec | GeneralizedFileSpec, ...] = ()
    bandwidth: int | None = None
    block_size: int = 64
    mode: str | None = None
    redundancy: RedundancyPolicy | None = None
    faults: FaultSpec = field(default_factory=FaultSpec)
    workload: WorkloadSpec | None = None
    traffic: TrafficSpec | None = None
    temporal: TemporalSpec | None = None
    scheduler_policy: str | tuple[str, ...] = "auto"
    delay_errors: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError(
                f"scenario name must be a non-empty string: {self.name!r}"
            )
        object.__setattr__(self, "files", tuple(self.files))
        if self.temporal is not None:
            if not isinstance(self.temporal, TemporalSpec):
                raise SpecificationError(
                    f"scenario {self.name!r}: temporal must be a "
                    f"TemporalSpec, got {type(self.temporal).__name__}"
                )
            # The catalogue is derived, not specified.  Files equal to
            # the derivation are tolerated so dataclasses.replace() -
            # which re-passes every field - keeps working on temporal
            # scenarios.
            derived = self.temporal.file_specs()
            if self.files and self.files != derived:
                raise SpecificationError(
                    f"scenario {self.name!r}: a temporal scenario "
                    f"derives its catalogue from the items - leave "
                    f"files empty"
                )
            if self.bandwidth is not None:
                raise SpecificationError(
                    f"scenario {self.name!r}: temporal scenarios design "
                    f"at bandwidth 1 (one block per slot_ms); bandwidth "
                    f"cannot be forced"
                )
            if self.mode is not None or self.redundancy is not None:
                raise SpecificationError(
                    f"scenario {self.name!r}: temporal items carry "
                    f"their own per-mode criticality; mode/redundancy "
                    f"do not apply"
                )
            # The derived catalogue: item constraints as slot budgets,
            # the active mode's fault budgets applied.
            object.__setattr__(self, "files", derived)
        if not self.files:
            raise SpecificationError(
                f"scenario {self.name!r}: at least one file is required"
            )
        kinds = {type(spec) for spec in self.files}
        if not kinds <= {FileSpec, GeneralizedFileSpec}:
            raise SpecificationError(
                f"scenario {self.name!r}: files must be FileSpec or "
                f"GeneralizedFileSpec instances"
            )
        if len(kinds) > 1:
            raise SpecificationError(
                f"scenario {self.name!r}: cannot mix regular and "
                f"generalized files in one scenario"
            )
        names = [spec.name for spec in self.files]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecificationError(
                f"scenario {self.name!r}: duplicate file names {dupes}"
            )
        _check_int(
            self.block_size,
            f"scenario {self.name!r}: block_size",
            minimum=1,
        )
        if self.bandwidth is not None:
            if self.generalized:
                raise SpecificationError(
                    f"scenario {self.name!r}: bandwidth cannot be forced "
                    f"for generalized files (latencies are already slots)"
                )
            _check_int(
                self.bandwidth,
                f"scenario {self.name!r}: bandwidth",
                minimum=1,
            )
        if (self.redundancy is None) != (self.mode is None):
            raise SpecificationError(
                f"scenario {self.name!r}: mode and redundancy must be "
                f"given together"
            )
        if self.redundancy is not None and self.generalized:
            raise SpecificationError(
                f"scenario {self.name!r}: a redundancy policy applies to "
                f"regular files only (generalized files encode fault "
                f"tolerance in their latency vectors)"
            )
        if self.delay_errors is not None:
            _check_int(
                self.delay_errors,
                f"scenario {self.name!r}: delay_errors",
                minimum=0,
            )
        self._validate_policy()

    def _validate_policy(self) -> None:
        policy = self.scheduler_policy
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise SpecificationError(
                    f"scenario {self.name!r}: unknown scheduler policy "
                    f"{policy!r} (expected one of {POLICIES} or a list "
                    f"of scheduler names)"
                )
            return
        try:
            object.__setattr__(self, "scheduler_policy", tuple(policy))
        except TypeError as error:
            raise SpecificationError(
                f"scenario {self.name!r}: scheduler policy must be "
                f"'auto', 'exact-first', or a list of scheduler names "
                f"(got {type(policy).__name__}: {policy!r})"
            ) from error
        if not self.scheduler_policy:
            raise SpecificationError(
                f"scenario {self.name!r}: scheduler policy list must "
                f"not be empty"
            )
        for name in self.scheduler_policy:
            get_scheduler(name)  # raises SpecificationError when unknown

    @property
    def generalized(self) -> bool:
        """Whether the catalogue uses the generalized (Section 4) model."""
        return isinstance(self.files[0], GeneralizedFileSpec)

    @property
    def design_bandwidth(self) -> int | None:
        """The bandwidth the designer receives (regular model).

        Temporal scenarios are pinned to 1 - their derived budgets are
        already slot counts, one block per ``slot_ms`` on the air.  The
        single source of truth shared by :meth:`design_payload` (the
        solve-cache fingerprint) and
        :meth:`repro.api.BroadcastEngine.design` (the program actually
        built): the two must never disagree, or cached designs would
        stop describing the programs they stand in for.
        """
        return 1 if self.temporal is not None else self.bandwidth

    @property
    def effective_files(self) -> tuple[FileSpec | GeneralizedFileSpec, ...]:
        """The catalogue with the redundancy policy's budgets applied."""
        if self.redundancy is None or self.mode is None:
            return self.files
        return tuple(
            FileSpec(
                spec.name,
                spec.blocks,
                spec.latency,
                fault_budget=self.redundancy.fault_budget(
                    self.mode, spec.name
                ),
                data=spec.data,
            )
            for spec in self.files
        )

    def design_payload(self) -> dict[str, Any]:
        """The design-relevant subset of the scenario, canonically.

        Exactly the inputs :meth:`repro.api.BroadcastEngine.design`
        consumes: the effective catalogue (redundancy budgets applied;
        for temporal scenarios, the item-derived specs under the active
        mode), the forced bandwidth (1 for temporal scenarios), and the
        scheduler policy.  Fault models, workloads, traffic populations,
        block sizes, payload bytes, and delay sweeps all act
        *downstream* of the designed program - and so do a temporal
        spec's update periods and transaction mix, which are runtime
        knobs - so scenarios differing only in those share a payload,
        which is what lets a sweep's solve-cache reuse one schedule
        across a whole fault/traffic/update-rate grid.
        """
        if self.generalized:
            files = [
                [spec.name, spec.blocks, list(spec.latency_vector)]
                for spec in self.files
            ]
            model = "generalized"
        else:
            files = [
                [spec.name, spec.blocks, spec.latency, spec.fault_budget]
                for spec in self.effective_files
            ]
            model = "regular"
        policy = self.scheduler_policy
        return {
            "model": model,
            "files": files,
            "bandwidth": self.design_bandwidth,
            "policy": policy if isinstance(policy, str) else list(policy),
        }

    def design_fingerprint(self) -> str:
        """Content fingerprint of :meth:`design_payload`.

        Two scenarios with equal fingerprints design the identical
        broadcast program (same pinwheel instance, same scheduler
        routing), so a cached :class:`~repro.bdisk.builder.ProgramDesign`
        solved for one is valid for the other.
        """
        from repro.core.fingerprint import fingerprint

        return fingerprint(["scenario-design", self.design_payload()])

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :meth:`from_dict` round-trips it."""
        policy = self.scheduler_policy
        return {
            "name": self.name,
            # A temporal scenario's files are derived, not specified:
            # serializing them would make the payload fail round-trip
            # validation (files and temporal are mutually exclusive).
            "files": (
                []
                if self.temporal is not None
                else [_file_to_dict(spec) for spec in self.files]
            ),
            "bandwidth": self.bandwidth,
            "block_size": self.block_size,
            "mode": self.mode,
            "redundancy": (
                None
                if self.redundancy is None
                else {
                    "default": self.redundancy.default,
                    "budgets": {
                        mode: dict(files)
                        for mode, files in self.redundancy.budgets.items()
                    },
                }
            ),
            "faults": self.faults.to_dict(),
            "workload": (
                None if self.workload is None else self.workload.to_dict()
            ),
            "traffic": (
                None if self.traffic is None else self.traffic.to_dict()
            ),
            "temporal": (
                None if self.temporal is None else self.temporal.to_dict()
            ),
            "scheduler_policy": (
                policy if isinstance(policy, str) else list(policy)
            ),
            "delay_errors": self.delay_errors,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from :meth:`to_dict` output / parsed JSON.

        Unknown keys raise :class:`SpecificationError` (catching typos in
        hand-written scenario files); every omitted optional key takes
        its dataclass default.
        """
        if not isinstance(payload, Mapping):
            raise SpecificationError(
                f"scenario payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        _require_keys(
            payload,
            {"name", "files", "bandwidth", "block_size", "mode",
             "redundancy", "faults", "workload", "traffic", "temporal",
             "scheduler_policy", "delay_errors"},
            "scenario",
        )
        files_payload = payload.get("files", ())
        if isinstance(files_payload, (str, bytes, Mapping)) or not hasattr(
            files_payload, "__iter__"
        ):
            raise SpecificationError(
                f"scenario files must be a list of file objects, got "
                f"{type(files_payload).__name__}"
            )
        files = tuple(_file_from_dict(entry) for entry in files_payload)
        redundancy_payload = payload.get("redundancy")
        redundancy = None
        if redundancy_payload is not None:
            _require_keys(
                redundancy_payload, {"default", "budgets"}, "redundancy"
            )
            budgets = redundancy_payload.get("budgets", {})
            if not isinstance(budgets, Mapping) or not all(
                isinstance(files_by_mode, Mapping)
                and all(
                    isinstance(budget, int)
                    for budget in files_by_mode.values()
                )
                for files_by_mode in budgets.values()
            ):
                raise SpecificationError(
                    "redundancy budgets must be an object of objects "
                    "(mode -> file -> integer fault budget)"
                )
            redundancy = RedundancyPolicy(
                budgets=budgets,
                default=redundancy_payload.get("default", 0),
            )
        faults_payload = payload.get("faults")
        workload_payload = payload.get("workload")
        traffic_payload = payload.get("traffic")
        temporal_payload = payload.get("temporal")
        # null means "not specified", by analogy with bandwidth/mode;
        # anything else is validated (and tuple-ified) by Scenario itself.
        policy = payload.get("scheduler_policy")
        if policy is None:
            policy = "auto"
        return cls(
            name=payload.get("name", ""),
            files=files,
            bandwidth=payload.get("bandwidth"),
            block_size=payload.get("block_size", 64),
            mode=payload.get("mode"),
            redundancy=redundancy,
            faults=(
                FaultSpec()
                if faults_payload is None
                else FaultSpec.from_dict(faults_payload)
            ),
            workload=(
                None
                if workload_payload is None
                else WorkloadSpec.from_dict(workload_payload)
            ),
            traffic=(
                None
                if traffic_payload is None
                else TrafficSpec.from_dict(traffic_payload)
            ),
            temporal=(
                None
                if temporal_payload is None
                else TemporalSpec.from_dict(temporal_payload)
            ),
            scheduler_policy=policy,
            delay_errors=payload.get("delay_errors"),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecificationError(
                f"invalid scenario JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        """Load a scenario from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise SpecificationError(
                f"cannot read scenario file {path}: {error}"
            ) from error
        return cls.from_json(text)

    def save(self, path: str | Path) -> None:
        """Write the scenario to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")
