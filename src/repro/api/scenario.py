"""Declarative scenario specifications for end-to-end experiments.

A :class:`Scenario` captures *everything* one broadcast-disk experiment
needs - the file catalogue (regular or generalized), bandwidth and block
size options, an optional per-mode AIDA redundancy policy, the channel
fault model, a client workload, the scheduler policy, and an optional
worst-case delay sweep - as one immutable, JSON-round-trippable object.
:class:`repro.api.engine.BroadcastEngine` turns a scenario into results.

Scenarios validate eagerly: any inconsistent combination raises
:class:`repro.errors.SpecificationError` at construction time, so a bad
JSON file fails at ``Scenario.from_file`` rather than mid-pipeline.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.core.partition import get_partitioner
from repro.core.registry import POLICIES, get_scheduler
from repro.ida.aida import RedundancyPolicy
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.rtdb.spec import TemporalSpec
from repro.traffic.spec import TrafficSpec
from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    FaultModel,
    NoFaults,
)

#: Fault-model kinds a :class:`FaultSpec` understands.
FAULT_KINDS = ("none", "bernoulli", "burst", "adversarial")

#: File-to-channel assignment policies a :class:`ChannelSpec` understands.
ASSIGNMENT_POLICIES = ("striped", "replicated", "explicit")


def _check_int(value: Any, what: str, *, minimum: int | None = None) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be an integer, got {type(value).__name__}: "
            f"{value!r}"
        )
    if minimum is not None and value < minimum:
        raise SpecificationError(f"{what} must be >= {minimum}: {value}")


def _check_number(value: Any, what: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SpecificationError(
            f"{what} must be a number, got {type(value).__name__}: "
            f"{value!r}"
        )


def _require_keys(
    payload: Mapping[str, Any], allowed: set[str], what: str
) -> None:
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"{what} must be an object, got {type(payload).__name__}: "
            f"{payload!r}"
        )
    unknown = set(payload) - allowed
    if unknown:
        raise SpecificationError(
            f"{what}: unknown keys {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


@dataclass(frozen=True)
class FaultSpec:
    """A declarative channel fault model.

    ``kind`` selects the model; only that model's parameters are
    meaningful (and serialized):

    * ``"none"`` - the failure-free channel;
    * ``"bernoulli"`` - i.i.d. per-slot losses with ``probability``;
    * ``"burst"`` - Gilbert-style bursts with ``p_enter``/``p_exit``;
    * ``"adversarial"`` - an explicit ``lost_slots`` set.
    """

    kind: str = "none"
    probability: float = 0.0
    p_enter: float = 0.0
    p_exit: float = 1.0
    lost_slots: tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecificationError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {FAULT_KINDS})"
            )
        _check_number(self.probability, "fault probability")
        _check_number(self.p_enter, "fault p_enter")
        _check_number(self.p_exit, "fault p_exit")
        _check_int(self.seed, "fault seed")
        try:
            object.__setattr__(self, "lost_slots", tuple(self.lost_slots))
        except TypeError as error:
            raise SpecificationError(
                f"fault lost_slots must be a list of slots: {error}"
            ) from error
        # Parameter validation is the models' own; building one surfaces
        # range errors (probabilities, negative slots) eagerly.
        self.build()

    def build(self) -> FaultModel:
        """A fresh fault-model instance (burst models carry state)."""
        if self.kind == "none":
            return NoFaults()
        if self.kind == "bernoulli":
            return BernoulliFaults(self.probability, seed=self.seed)
        if self.kind == "burst":
            return BurstFaults(self.p_enter, self.p_exit, seed=self.seed)
        return AdversarialFaults(self.lost_slots)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict with only the active model's parameters."""
        if self.kind == "bernoulli":
            return {
                "kind": self.kind,
                "probability": self.probability,
                "seed": self.seed,
            }
        if self.kind == "burst":
            return {
                "kind": self.kind,
                "p_enter": self.p_enter,
                "p_exit": self.p_exit,
                "seed": self.seed,
            }
        if self.kind == "adversarial":
            return {"kind": self.kind, "lost_slots": list(self.lost_slots)}
        return {"kind": self.kind}

    def for_channel(self, index: int) -> "FaultSpec":
        """The fault spec channel ``index`` of a multi-channel set draws.

        Stochastic kinds decorrelate across channels by offsetting the
        seed with the channel index - channel 0 keeps the scenario's
        exact spec, so a one-channel set reproduces the single-channel
        fault stream bit-for-bit.  Deterministic kinds (``none``,
        ``adversarial``) are shared: an adversary's slot list names air
        time, which all channels experience simultaneously.
        """
        if index == 0 or self.kind in ("none", "adversarial"):
            return self
        return FaultSpec(
            kind=self.kind,
            probability=self.probability,
            p_enter=self.p_enter,
            p_exit=self.p_exit,
            lost_slots=self.lost_slots,
            seed=self.seed + index,
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"kind", "probability", "p_enter", "p_exit", "lost_slots",
             "seed"},
            "fault spec",
        )
        # __post_init__ tuple-ifies lost_slots itself, with a guard that
        # turns non-iterables into SpecificationError.
        return cls(**payload)


@dataclass(frozen=True)
class ChannelSpec:
    """A set of ``count`` parallel broadcast channels.

    Generalizes the paper's single channel: hot data can be striped over
    several channels (cutting per-channel cycle length, hence latency),
    or replicated across them so clients assemble ``quorum``-of-``k``
    version-consistent reads that survive whole-channel faults.

    Attributes
    ----------
    count:
        Number of parallel channels ``k`` (>= 1).
    assignment:
        File-to-channel policy: ``"striped"`` partitions the catalogue
        with ``partitioner``; ``"replicated"`` places every file on
        every channel; ``"explicit"`` takes the mapping in ``explicit``.
    explicit:
        Only for ``assignment="explicit"``: file name -> list of channel
        indices carrying it (each file on at least one channel).
    partitioner:
        Registered partitioner name (see :mod:`repro.core.partition`)
        used by ``"striped"`` assignment.
    fault_budgets:
        Optional per-channel extra fault budget (length ``count``):
        channel ``c`` adds ``fault_budgets[c]`` redundant blocks to every
        regular file it carries, following the per-channel
        fault-withstanding bounds.  ``None`` means no extra budget.
    tuning_cost:
        Slots a client pays to re-tune its receiver to a different
        channel.  A runtime knob: it shapes retrieval latency, not the
        per-channel programs, so sweeps over it reuse cached designs.
    quorum:
        Copies ``r`` a versioned read must assemble with one consistent
        version (``1 <= r <= count``).  Also a runtime knob.
    """

    count: int = 1
    assignment: str = "striped"
    explicit: Mapping[str, tuple[int, ...]] | None = None
    partitioner: str = "worst-fit"
    fault_budgets: tuple[int, ...] | None = None
    tuning_cost: int = 0
    quorum: int = 1

    def __post_init__(self) -> None:
        _check_int(self.count, "channels count", minimum=1)
        if self.assignment not in ASSIGNMENT_POLICIES:
            raise SpecificationError(
                f"unknown channel assignment {self.assignment!r} "
                f"(expected one of {ASSIGNMENT_POLICIES})"
            )
        get_partitioner(self.partitioner)  # raises when unknown
        _check_int(self.tuning_cost, "channels tuning_cost", minimum=0)
        _check_int(self.quorum, "channels quorum", minimum=1)
        if self.quorum > self.count:
            raise SpecificationError(
                f"channels quorum must be <= count: "
                f"{self.quorum}-of-{self.count}"
            )
        if self.fault_budgets is not None:
            try:
                budgets = tuple(self.fault_budgets)
            except TypeError as error:
                raise SpecificationError(
                    f"channels fault_budgets must be a list of integers: "
                    f"{error}"
                ) from error
            if len(budgets) != self.count:
                raise SpecificationError(
                    f"channels fault_budgets must have one entry per "
                    f"channel: got {len(budgets)} for count {self.count}"
                )
            for c, budget in enumerate(budgets):
                _check_int(
                    budget, f"channels fault_budgets[{c}]", minimum=0
                )
            object.__setattr__(self, "fault_budgets", budgets)
        if (self.explicit is None) != (self.assignment != "explicit"):
            raise SpecificationError(
                "channels explicit mapping must be given exactly when "
                f"assignment is 'explicit' (assignment={self.assignment!r})"
            )
        if self.explicit is not None:
            if not isinstance(self.explicit, Mapping):
                raise SpecificationError(
                    f"channels explicit must be an object mapping file "
                    f"names to channel lists, got "
                    f"{type(self.explicit).__name__}"
                )
            normalized: dict[str, tuple[int, ...]] = {}
            for name, ids in self.explicit.items():
                if isinstance(ids, (str, bytes)) or not hasattr(
                    ids, "__iter__"
                ):
                    raise SpecificationError(
                        f"channels explicit[{name!r}] must be a list of "
                        f"channel indices, got {type(ids).__name__}"
                    )
                ids = tuple(ids)
                if not ids:
                    raise SpecificationError(
                        f"channels explicit[{name!r}] must name at least "
                        f"one channel"
                    )
                for c in ids:
                    _check_int(
                        c, f"channels explicit[{name!r}] entry", minimum=0
                    )
                    if c >= self.count:
                        raise SpecificationError(
                            f"channels explicit[{name!r}] names channel "
                            f"{c}, but count is {self.count}"
                        )
                if len(set(ids)) != len(ids):
                    raise SpecificationError(
                        f"channels explicit[{name!r}] repeats a channel: "
                        f"{list(ids)}"
                    )
                normalized[name] = tuple(sorted(ids))
            object.__setattr__(self, "explicit", normalized)

    def budget_for(self, channel: int) -> int:
        """The extra fault budget channel ``channel`` imposes."""
        if self.fault_budgets is None:
            return 0
        return self.fault_budgets[channel]

    def design_payload(self) -> dict[str, Any]:
        """The design-relevant subset, canonically.

        ``tuning_cost`` and ``quorum`` shape client behaviour *on* the
        aired programs, not the programs themselves, so they are
        excluded: sweeps over them hit the solve cache.
        """
        payload: dict[str, Any] = {
            "count": self.count,
            "assignment": self.assignment,
            "partitioner": self.partitioner,
            "fault_budgets": (
                None
                if self.fault_budgets is None
                else list(self.fault_budgets)
            ),
        }
        if self.explicit is not None:
            payload["explicit"] = {
                name: list(ids)
                for name, ids in sorted(self.explicit.items())
            }
        return payload

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :meth:`from_dict` round-trips it."""
        payload: dict[str, Any] = {
            "count": self.count,
            "assignment": self.assignment,
            "partitioner": self.partitioner,
            "fault_budgets": (
                None
                if self.fault_budgets is None
                else list(self.fault_budgets)
            ),
            "tuning_cost": self.tuning_cost,
            "quorum": self.quorum,
        }
        if self.explicit is not None:
            payload["explicit"] = {
                name: list(ids)
                for name, ids in sorted(self.explicit.items())
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChannelSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"count", "assignment", "explicit", "partitioner",
             "fault_budgets", "tuning_cost", "quorum"},
            "channels spec",
        )
        explicit = payload.get("explicit")
        if explicit is not None:
            if not isinstance(explicit, Mapping):
                raise SpecificationError(
                    f"channels explicit must be an object, got "
                    f"{type(explicit).__name__}"
                )
            explicit = {
                name: tuple(ids) if hasattr(ids, "__iter__")
                and not isinstance(ids, (str, bytes)) else ids
                for name, ids in explicit.items()
            }
        kwargs = {k: v for k, v in payload.items() if k != "explicit"}
        return cls(explicit=explicit, **kwargs)


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded client request stream.

    ``requests`` arrivals, uniform over ``horizon`` slots, file choice
    Zipf-weighted by catalogue position when ``zipf_skew > 0`` (hot files
    first).  Deadlines come from each file's latency budget.
    """

    requests: int = 100
    horizon: int = 500
    zipf_skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_int(self.requests, "workload requests", minimum=1)
        _check_int(self.horizon, "workload horizon", minimum=1)
        _check_number(self.zipf_skew, "workload zipf_skew")
        _check_int(self.seed, "workload seed")
        if self.zipf_skew < 0:
            raise SpecificationError(
                f"workload zipf_skew must be >= 0: {self.zipf_skew}"
            )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict of all four parameters."""
        return {
            "requests": self.requests,
            "horizon": self.horizon,
            "zipf_skew": self.zipf_skew,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        _require_keys(
            payload,
            {"requests", "horizon", "zipf_skew", "seed"},
            "workload spec",
        )
        return cls(**payload)


def _file_to_dict(spec: FileSpec | GeneralizedFileSpec) -> dict[str, Any]:
    if isinstance(spec, GeneralizedFileSpec):
        payload: dict[str, Any] = {
            "name": spec.name,
            "blocks": spec.blocks,
            "latency_vector": list(spec.latency_vector),
        }
    else:
        payload = {
            "name": spec.name,
            "blocks": spec.blocks,
            "latency": spec.latency,
            "fault_budget": spec.fault_budget,
        }
    # Explicit payload bytes round-trip as base64 (omitted when absent,
    # since simulators synthesize deterministic payloads from the name).
    if spec.data is not None:
        payload["data"] = base64.b64encode(spec.data).decode("ascii")
    return payload


def _decode_payload_data(encoded: str | None) -> bytes | None:
    if encoded is None:
        return None
    try:
        return base64.b64decode(encoded, validate=True)
    except (ValueError, TypeError) as error:
        raise SpecificationError(
            f"file data must be base64-encoded: {error}"
        ) from error


def _file_from_dict(
    payload: Mapping[str, Any]
) -> FileSpec | GeneralizedFileSpec:
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"each file entry must be an object, got "
            f"{type(payload).__name__}: {payload!r}"
        )
    if "latency_vector" in payload:
        allowed, required = {"name", "blocks", "latency_vector", "data"}, {
            "name", "blocks", "latency_vector",
        }
    else:
        allowed, required = {
            "name", "blocks", "latency", "fault_budget", "data",
        }, {"name", "blocks", "latency"}
    what = "generalized file" if "latency_vector" in payload else "file"
    _require_keys(payload, allowed, what)
    missing = required - set(payload)
    if missing:
        raise SpecificationError(
            f"{what} entry is missing required keys {sorted(missing)}: "
            f"{dict(payload)!r}"
        )
    data = _decode_payload_data(payload.get("data"))
    if "latency_vector" in payload:
        try:
            vector = tuple(payload["latency_vector"])
        except TypeError as error:
            raise SpecificationError(
                f"generalized file latency_vector must be a list of "
                f"slots: {error}"
            ) from error
        return GeneralizedFileSpec(
            payload["name"],
            payload["blocks"],
            vector,
            data=data,
        )
    return FileSpec(
        payload["name"],
        payload["blocks"],
        payload["latency"],
        fault_budget=payload.get("fault_budget", 0),
        data=data,
    )


@dataclass(frozen=True)
class Scenario:
    """One declarative end-to-end broadcast-disk experiment.

    Attributes
    ----------
    name:
        Scenario identity (used in summaries and batch sweeps).
    files:
        The catalogue - all :class:`FileSpec` (regular model, Section
        3.2) or all :class:`GeneralizedFileSpec` (latency vectors,
        Section 4); mixing the two models is rejected.
    bandwidth:
        Optional forced channel bandwidth in blocks/second (regular model
        only; default: the Equation 1/2 bound).
    block_size:
        Payload block size in bytes for simulation payloads.
    mode:
        Operation mode selecting budgets from ``redundancy``.
    redundancy:
        Optional per-mode AIDA :class:`RedundancyPolicy`; when present
        (with ``mode``), it *overrides* each regular file's
        ``fault_budget``.
    faults:
        Channel fault model for the simulation phase.
    workload:
        Optional client workload; ``None`` skips the simulation phase.
    traffic:
        Optional open-loop client population
        (:class:`repro.traffic.TrafficSpec`); ``None`` skips the
        traffic phase.  Where ``workload`` replays a fixed request
        list, ``traffic`` simulates sustained load: arrival processes,
        session think times, client caches, and streaming metrics.
    temporal:
        Optional real-time database layer
        (:class:`repro.rtdb.TemporalSpec`).  When present the scenario
        *derives its catalogue from the items*: ``files`` must be
        empty, each item's temporal constraint becomes the file's
        latency budget in slots, the active mode selects fault budgets,
        and the channel designs at bandwidth 1 (one block per slot of
        ``slot_ms`` milliseconds).  Traffic populations then run the
        version-consistent transaction clients and report staleness /
        consistency metrics.
    scheduler_policy:
        ``"auto"``, ``"exact-first"``, or an explicit tuple of registered
        scheduler names (see :mod:`repro.core.registry`).
    delay_errors:
        When set, compute the exact worst-case delay table (Figure 7
        style) for fault counts ``0..delay_errors``.  Exhaustive - keep
        small.
    """

    name: str
    files: tuple[FileSpec | GeneralizedFileSpec, ...] = ()
    bandwidth: int | None = None
    block_size: int = 64
    mode: str | None = None
    redundancy: RedundancyPolicy | None = None
    faults: FaultSpec = field(default_factory=FaultSpec)
    workload: WorkloadSpec | None = None
    traffic: TrafficSpec | None = None
    temporal: TemporalSpec | None = None
    channels: ChannelSpec | None = None
    scheduler_policy: str | tuple[str, ...] = "auto"
    delay_errors: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError(
                f"scenario name must be a non-empty string: {self.name!r}"
            )
        object.__setattr__(self, "files", tuple(self.files))
        if self.temporal is not None:
            if not isinstance(self.temporal, TemporalSpec):
                raise SpecificationError(
                    f"scenario {self.name!r}: temporal must be a "
                    f"TemporalSpec, got {type(self.temporal).__name__}"
                )
            # The catalogue is derived, not specified.  Files equal to
            # the derivation are tolerated so dataclasses.replace() -
            # which re-passes every field - keeps working on temporal
            # scenarios.
            derived = self.temporal.file_specs()
            if self.files and self.files != derived:
                raise SpecificationError(
                    f"scenario {self.name!r}: a temporal scenario "
                    f"derives its catalogue from the items - leave "
                    f"files empty"
                )
            if self.bandwidth is not None:
                raise SpecificationError(
                    f"scenario {self.name!r}: temporal scenarios design "
                    f"at bandwidth 1 (one block per slot_ms); bandwidth "
                    f"cannot be forced"
                )
            if self.mode is not None or self.redundancy is not None:
                raise SpecificationError(
                    f"scenario {self.name!r}: temporal items carry "
                    f"their own per-mode criticality; mode/redundancy "
                    f"do not apply"
                )
            # The derived catalogue: item constraints as slot budgets,
            # the active mode's fault budgets applied.
            object.__setattr__(self, "files", derived)
        if not self.files:
            raise SpecificationError(
                f"scenario {self.name!r}: at least one file is required"
            )
        kinds = {type(spec) for spec in self.files}
        if not kinds <= {FileSpec, GeneralizedFileSpec}:
            raise SpecificationError(
                f"scenario {self.name!r}: files must be FileSpec or "
                f"GeneralizedFileSpec instances"
            )
        if len(kinds) > 1:
            raise SpecificationError(
                f"scenario {self.name!r}: cannot mix regular and "
                f"generalized files in one scenario"
            )
        names = [spec.name for spec in self.files]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecificationError(
                f"scenario {self.name!r}: duplicate file names {dupes}"
            )
        _check_int(
            self.block_size,
            f"scenario {self.name!r}: block_size",
            minimum=1,
        )
        if self.bandwidth is not None:
            if self.generalized:
                raise SpecificationError(
                    f"scenario {self.name!r}: bandwidth cannot be forced "
                    f"for generalized files (latencies are already slots)"
                )
            _check_int(
                self.bandwidth,
                f"scenario {self.name!r}: bandwidth",
                minimum=1,
            )
        if (self.redundancy is None) != (self.mode is None):
            raise SpecificationError(
                f"scenario {self.name!r}: mode and redundancy must be "
                f"given together"
            )
        if self.redundancy is not None and self.generalized:
            raise SpecificationError(
                f"scenario {self.name!r}: a redundancy policy applies to "
                f"regular files only (generalized files encode fault "
                f"tolerance in their latency vectors)"
            )
        if self.delay_errors is not None:
            _check_int(
                self.delay_errors,
                f"scenario {self.name!r}: delay_errors",
                minimum=0,
            )
        self._validate_channels()
        self._validate_policy()

    def _validate_channels(self) -> None:
        spec = self.channels
        if spec is None:
            return
        if not isinstance(spec, ChannelSpec):
            raise SpecificationError(
                f"scenario {self.name!r}: channels must be a "
                f"ChannelSpec, got {type(spec).__name__}"
            )
        names = {file.name for file in self.files}
        if spec.assignment == "striped" and spec.count > len(self.files):
            raise SpecificationError(
                f"scenario {self.name!r}: cannot stripe "
                f"{len(self.files)} file(s) over {spec.count} channels "
                f"(use 'replicated' assignment, or fewer channels)"
            )
        if spec.explicit is not None:
            unknown = sorted(set(spec.explicit) - names)
            if unknown:
                raise SpecificationError(
                    f"scenario {self.name!r}: channels explicit names "
                    f"unknown files {unknown}"
                )
            missing = sorted(names - set(spec.explicit))
            if missing:
                raise SpecificationError(
                    f"scenario {self.name!r}: channels explicit must "
                    f"assign every file (missing {missing})"
                )
        if (
            self.generalized
            and spec.fault_budgets is not None
            and any(spec.fault_budgets)
        ):
            raise SpecificationError(
                f"scenario {self.name!r}: per-channel fault_budgets "
                f"apply to regular files only (generalized files encode "
                f"fault tolerance in their latency vectors)"
            )
        if spec.quorum > 1:
            replication = {
                name: len(ids) for name, ids in
                self.channel_assignment().items()
            }
            thin = sorted(
                name for name, copies in replication.items()
                if copies < spec.quorum and self.temporal is not None
            )
            if thin:
                raise SpecificationError(
                    f"scenario {self.name!r}: quorum "
                    f"{spec.quorum}-of-{spec.count} needs every temporal "
                    f"item on >= {spec.quorum} channels; too thin: {thin}"
                )

    def channel_assignment(self) -> dict[str, tuple[int, ...]]:
        """File name -> sorted channel indices carrying it.

        Resolves the assignment policy against this catalogue (explicit
        mapping, full replication, or the registered partitioner's
        stripe).  Empty when the scenario has no ``channels``.
        """
        spec = self.channels
        if spec is None:
            return {}
        from repro.bdisk.multichannel import resolve_assignment

        # The effective catalogue: redundancy budgets shift densities,
        # and the stripe must match what the designer will partition.
        return resolve_assignment(self.effective_files, spec)

    def _validate_policy(self) -> None:
        policy = self.scheduler_policy
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise SpecificationError(
                    f"scenario {self.name!r}: unknown scheduler policy "
                    f"{policy!r} (expected one of {POLICIES} or a list "
                    f"of scheduler names)"
                )
            return
        try:
            object.__setattr__(self, "scheduler_policy", tuple(policy))
        except TypeError as error:
            raise SpecificationError(
                f"scenario {self.name!r}: scheduler policy must be "
                f"'auto', 'exact-first', or a list of scheduler names "
                f"(got {type(policy).__name__}: {policy!r})"
            ) from error
        if not self.scheduler_policy:
            raise SpecificationError(
                f"scenario {self.name!r}: scheduler policy list must "
                f"not be empty"
            )
        for name in self.scheduler_policy:
            get_scheduler(name)  # raises SpecificationError when unknown

    @property
    def generalized(self) -> bool:
        """Whether the catalogue uses the generalized (Section 4) model."""
        return isinstance(self.files[0], GeneralizedFileSpec)

    @property
    def design_bandwidth(self) -> int | None:
        """The bandwidth the designer receives (regular model).

        Temporal scenarios are pinned to 1 - their derived budgets are
        already slot counts, one block per ``slot_ms`` on the air.  The
        single source of truth shared by :meth:`design_payload` (the
        solve-cache fingerprint) and
        :meth:`repro.api.BroadcastEngine.design` (the program actually
        built): the two must never disagree, or cached designs would
        stop describing the programs they stand in for.
        """
        return 1 if self.temporal is not None else self.bandwidth

    @property
    def effective_files(self) -> tuple[FileSpec | GeneralizedFileSpec, ...]:
        """The catalogue with the redundancy policy's budgets applied."""
        if self.redundancy is None or self.mode is None:
            return self.files
        return tuple(
            FileSpec(
                spec.name,
                spec.blocks,
                spec.latency,
                fault_budget=self.redundancy.fault_budget(
                    self.mode, spec.name
                ),
                data=spec.data,
            )
            for spec in self.files
        )

    def design_payload(self) -> dict[str, Any]:
        """The design-relevant subset of the scenario, canonically.

        Exactly the inputs :meth:`repro.api.BroadcastEngine.design`
        consumes: the effective catalogue (redundancy budgets applied;
        for temporal scenarios, the item-derived specs under the active
        mode), the forced bandwidth (1 for temporal scenarios), and the
        scheduler policy.  Fault models, workloads, traffic populations,
        block sizes, payload bytes, and delay sweeps all act
        *downstream* of the designed program - and so do a temporal
        spec's update periods and transaction mix, which are runtime
        knobs - so scenarios differing only in those share a payload,
        which is what lets a sweep's solve-cache reuse one schedule
        across a whole fault/traffic/update-rate grid.
        """
        if self.generalized:
            files = [
                [spec.name, spec.blocks, list(spec.latency_vector)]
                for spec in self.files
            ]
            model = "generalized"
        else:
            files = [
                [spec.name, spec.blocks, spec.latency, spec.fault_budget]
                for spec in self.effective_files
            ]
            model = "regular"
        policy = self.scheduler_policy
        payload = {
            "model": model,
            "files": files,
            "bandwidth": self.design_bandwidth,
            "policy": policy if isinstance(policy, str) else list(policy),
        }
        # Channel-less scenarios keep their historical payload (and
        # fingerprint) byte-for-byte: the key only appears when set.
        if self.channels is not None:
            payload["channels"] = self.channels.design_payload()
        return payload

    def design_fingerprint(self) -> str:
        """Content fingerprint of :meth:`design_payload`.

        Two scenarios with equal fingerprints design the identical
        broadcast program (same pinwheel instance, same scheduler
        routing), so a cached :class:`~repro.bdisk.builder.ProgramDesign`
        solved for one is valid for the other.
        """
        from repro.core.fingerprint import fingerprint

        return fingerprint(["scenario-design", self.design_payload()])

    def scenario_fingerprint(self) -> str:
        """Content fingerprint of the *whole* scenario (:meth:`to_dict`).

        Unlike :meth:`design_fingerprint`, this covers runtime knobs
        too - faults, traffic, simulation seeds - so two scenarios with
        equal fingerprints produce identical results end to end, not
        just the same broadcast program.  The distributed sweep keys
        its work units with it (plus the cell key), which is how a
        worker can verify it received the exact cell it was addressed.
        """
        from repro.core.fingerprint import fingerprint

        return fingerprint(["scenario", self.to_dict()])

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :meth:`from_dict` round-trips it."""
        policy = self.scheduler_policy
        payload = {
            "name": self.name,
            # A temporal scenario's files are derived, not specified:
            # serializing them would make the payload fail round-trip
            # validation (files and temporal are mutually exclusive).
            "files": (
                []
                if self.temporal is not None
                else [_file_to_dict(spec) for spec in self.files]
            ),
            "bandwidth": self.bandwidth,
            "block_size": self.block_size,
            "mode": self.mode,
            "redundancy": (
                None
                if self.redundancy is None
                else {
                    "default": self.redundancy.default,
                    "budgets": {
                        mode: dict(files)
                        for mode, files in self.redundancy.budgets.items()
                    },
                }
            ),
            "faults": self.faults.to_dict(),
            "workload": (
                None if self.workload is None else self.workload.to_dict()
            ),
            "traffic": (
                None if self.traffic is None else self.traffic.to_dict()
            ),
            "temporal": (
                None if self.temporal is None else self.temporal.to_dict()
            ),
            "scheduler_policy": (
                policy if isinstance(policy, str) else list(policy)
            ),
            "delay_errors": self.delay_errors,
        }
        # Like design_payload: channel-less scenarios serialize exactly
        # as they always did.
        if self.channels is not None:
            payload["channels"] = self.channels.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from :meth:`to_dict` output / parsed JSON.

        Unknown keys raise :class:`SpecificationError` (catching typos in
        hand-written scenario files); every omitted optional key takes
        its dataclass default.
        """
        if not isinstance(payload, Mapping):
            raise SpecificationError(
                f"scenario payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        _require_keys(
            payload,
            {"name", "files", "bandwidth", "block_size", "mode",
             "redundancy", "faults", "workload", "traffic", "temporal",
             "channels", "scheduler_policy", "delay_errors"},
            "scenario",
        )
        files_payload = payload.get("files", ())
        if isinstance(files_payload, (str, bytes, Mapping)) or not hasattr(
            files_payload, "__iter__"
        ):
            raise SpecificationError(
                f"scenario files must be a list of file objects, got "
                f"{type(files_payload).__name__}"
            )
        files = tuple(_file_from_dict(entry) for entry in files_payload)
        redundancy_payload = payload.get("redundancy")
        redundancy = None
        if redundancy_payload is not None:
            _require_keys(
                redundancy_payload, {"default", "budgets"}, "redundancy"
            )
            budgets = redundancy_payload.get("budgets", {})
            if not isinstance(budgets, Mapping) or not all(
                isinstance(files_by_mode, Mapping)
                and all(
                    isinstance(budget, int)
                    for budget in files_by_mode.values()
                )
                for files_by_mode in budgets.values()
            ):
                raise SpecificationError(
                    "redundancy budgets must be an object of objects "
                    "(mode -> file -> integer fault budget)"
                )
            redundancy = RedundancyPolicy(
                budgets=budgets,
                default=redundancy_payload.get("default", 0),
            )
        faults_payload = payload.get("faults")
        workload_payload = payload.get("workload")
        traffic_payload = payload.get("traffic")
        temporal_payload = payload.get("temporal")
        channels_payload = payload.get("channels")
        # null means "not specified", by analogy with bandwidth/mode;
        # anything else is validated (and tuple-ified) by Scenario itself.
        policy = payload.get("scheduler_policy")
        if policy is None:
            policy = "auto"
        return cls(
            name=payload.get("name", ""),
            files=files,
            bandwidth=payload.get("bandwidth"),
            block_size=payload.get("block_size", 64),
            mode=payload.get("mode"),
            redundancy=redundancy,
            faults=(
                FaultSpec()
                if faults_payload is None
                else FaultSpec.from_dict(faults_payload)
            ),
            workload=(
                None
                if workload_payload is None
                else WorkloadSpec.from_dict(workload_payload)
            ),
            traffic=(
                None
                if traffic_payload is None
                else TrafficSpec.from_dict(traffic_payload)
            ),
            temporal=(
                None
                if temporal_payload is None
                else TemporalSpec.from_dict(temporal_payload)
            ),
            channels=(
                None
                if channels_payload is None
                else ChannelSpec.from_dict(channels_payload)
            ),
            scheduler_policy=policy,
            delay_errors=payload.get("delay_errors"),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecificationError(
                f"invalid scenario JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "Scenario":
        """Load a scenario from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise SpecificationError(
                f"cannot read scenario file {path}: {error}"
            ) from error
        return cls.from_json(text)

    def save(self, path: str | Path) -> None:
        """Write the scenario to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")
