"""The declarative front door: scenarios, the engine, structured results.

Where the subpackages expose each pipeline stage separately, this package
is the single entry point for end-to-end experiments:

* :mod:`repro.api.scenario` - the :class:`Scenario` specification
  (files, bandwidth, redundancy policy, fault model, workload, scheduler
  policy) with dict/JSON round-tripping and eager validation;
* :mod:`repro.api.engine` - the :class:`BroadcastEngine` facade running
  design -> program -> simulation -> delay analysis in one call, the
  structured :class:`ScenarioResult`, and :func:`run_scenarios` for batch
  sweeps.

Quickstart::

    from repro.api import Scenario, WorkloadSpec, run_scenario

    scenario = Scenario(
        name="demo",
        files=[FileSpec("pos", 4, 2, fault_budget=2)],
        workload=WorkloadSpec(requests=50, horizon=200, seed=7),
    )
    result = run_scenario(scenario)
    print(result.summary())

The same scenario serializes to JSON (``scenario.save(path)``) and runs
from a shell with ``repro run path``.
"""

from repro.rtdb.spec import TemporalItemSpec, TemporalSpec, TransactionSpec
from repro.traffic.simulate import TrafficResult
from repro.traffic.spec import TrafficSpec
from repro.api.scenario import (
    FAULT_KINDS,
    FaultSpec,
    Scenario,
    WorkloadSpec,
)
from repro.api.engine import (
    BroadcastEngine,
    DelayEntry,
    ProgramStats,
    ScenarioResult,
    run_scenario,
    run_scenarios,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "Scenario",
    "TemporalItemSpec",
    "TemporalSpec",
    "TrafficResult",
    "TrafficSpec",
    "TransactionSpec",
    "WorkloadSpec",
    "BroadcastEngine",
    "DelayEntry",
    "ProgramStats",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
]
