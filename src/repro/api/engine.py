"""The one-call facade: run a :class:`Scenario` end to end.

``BroadcastEngine(scenario).run()`` walks the whole paper pipeline -

1. **design**: plan bandwidth and schedule the induced pinwheel system
   (regular files, Section 3.2) or transform-and-schedule the nice
   conjunct (generalized files, Section 4), honouring the scenario's
   scheduler policy;
2. **program**: summarize the verified broadcast program;
3. **simulation**: when a workload is specified, replay a seeded request
   stream against the program through the scenario's fault model;
4. **traffic**: when an open-loop population is specified, run the
   discrete-event traffic simulation (:mod:`repro.traffic`) against the
   program through the same fault model;
5. **delay analysis**: when requested, regenerate the exact worst-case
   delay table (Figure 7 style) by exhaustive adversary.

The outcome is a structured :class:`ScenarioResult`; :func:`run_scenarios`
maps the same pipeline over a batch for parameter sweeps.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping

from repro.errors import SpecificationError
from repro.obs import telemetry as obs
from repro.core.solver import SolveReport
from repro.ida import AidaEncoder, reconstruct
from repro.bdisk.builder import (
    ProgramDesign,
    design_generalized_program,
    design_program,
)
from repro.bdisk.multichannel import (
    MultiChannelDesign,
    design_multichannel_program,
)
from repro.bdisk.program import BroadcastProgram
from repro.sim.delay import worst_case_delay
from repro.sim.runner import (
    SimulationResult,
    simulate_requests,
    simulate_requests_multichannel,
)
from repro.sim.workload import request_stream
from repro.traffic.simulate import (
    TrafficResult,
    simulate_traffic,
    simulate_traffic_shard,
)
from repro.api.scenario import Scenario


@dataclass(frozen=True)
class ProgramStats:
    """Headline numbers of a designed broadcast program.

    For a multi-channel design the headline fields describe channel 0
    (the bandwidths are harmonized, so the slot clock is set-wide) -
    except ``density``, which is the *worst* channel's, the figure that
    bounds feasibility - and ``channels`` holds one per-channel record
    (``None`` for single-channel designs).
    """

    bandwidth: int | None
    density: Fraction
    method: str
    attempts: tuple[tuple[str, str], ...]
    broadcast_period: int
    data_cycle_length: int
    block_counts: dict[str, int]
    channels: tuple[dict[str, Any], ...] | None = None

    def __str__(self) -> str:
        bandwidth = (
            f"{self.bandwidth} blocks/s" if self.bandwidth else "per-slot"
        )
        head = (
            f"bandwidth {bandwidth}, density {float(self.density):.4f}, "
            f"method {self.method}, period {self.broadcast_period} slots, "
            f"data cycle {self.data_cycle_length} slots"
        )
        if self.channels is not None:
            head += f", channels {len(self.channels)}"
        return head


@dataclass(frozen=True)
class DelayEntry:
    """Exact worst-case added delay for one file at one fault count."""

    file: str
    errors: int
    delay: int


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced.

    Attributes
    ----------
    scenario:
        The input specification.
    design:
        The full :class:`ProgramDesign` (program, solve report, bandwidth
        plan or transform candidates).
    stats:
        Headline program numbers for quick inspection.
    simulation:
        The workload replay, or ``None`` when no workload was specified.
    traffic:
        The open-loop population run
        (:class:`repro.traffic.TrafficResult`), or ``None`` when the
        scenario specifies no traffic.
    delay_table:
        Worst-case delay entries, empty unless ``delay_errors`` was set.
    payload_checks:
        Per-file end-to-end AIDA integrity: each file's payload (at the
        scenario's ``block_size``) dispersed, retrieved through the fault
        channel, and reconstructed bit-for-bit.  ``None`` without a
        simulation; files whose retrievals never completed are absent.
    """

    scenario: Scenario
    design: ProgramDesign | MultiChannelDesign
    stats: ProgramStats
    simulation: SimulationResult | None
    delay_table: tuple[DelayEntry, ...]
    payload_checks: Mapping[str, bool] | None = None
    traffic: TrafficResult | None = None

    @property
    def multichannel(self) -> bool:
        """Whether the scenario designed a multi-channel set."""
        return isinstance(self.design, MultiChannelDesign)

    @property
    def channel_set(self):
        """The aired :class:`~repro.bdisk.multichannel.ChannelSet`, or
        ``None`` for single-channel designs."""
        if isinstance(self.design, MultiChannelDesign):
            return self.design.channel_set
        return None

    @property
    def program(self) -> BroadcastProgram:
        """The verified broadcast program (channel 0's for a
        multi-channel design - the harmonized slot clock's reference)."""
        if isinstance(self.design, MultiChannelDesign):
            return self.design.channel_set.programs[0]
        return self.design.program

    @property
    def report(self) -> SolveReport:
        """How the pinwheel system was scheduled (channel 0's report
        for a multi-channel design)."""
        if isinstance(self.design, MultiChannelDesign):
            return self.design.designs[0].report
        return self.design.report

    def summary(self) -> str:
        """A human-readable multi-line report (the CLI's output)."""
        lines = [f"scenario  : {self.scenario.name}", f"design    : {self.stats}"]
        lines.append(
            "attempts  : "
            + "; ".join(f"{n} -> {o}" for n, o in self.stats.attempts)
        )
        if self.stats.channels is not None:
            for entry in self.stats.channels:
                lines.append(
                    f"channel {entry['channel']} : "
                    f"{len(entry['files'])} file(s), "
                    f"density {entry['density']:.4f}, "
                    f"method {entry['method']}, "
                    f"cycle {entry['data_cycle_length']} slots"
                )
        if self.scenario.temporal is not None:
            lines.append(
                f"temporal  : {self.scenario.temporal.describe()}"
            )
        if self.simulation is not None:
            sim = self.simulation
            lines.append(
                f"workload  : {len(sim.requests)} requests, "
                f"latency {sim.summary}, "
                f"deadline miss rate {sim.deadline_miss_rate:.3f}"
            )
        if self.traffic is not None:
            for line in self.traffic.report().splitlines():
                lines.append(line)
        if self.payload_checks:
            verdicts = ", ".join(
                f"{name}={'intact' if ok else 'CORRUPT'}"
                for name, ok in sorted(self.payload_checks.items())
            )
            lines.append(f"payloads  : {verdicts}")
        if self.delay_table:
            lines.append("delay     : file errors worst-case-added-delay")
            for entry in self.delay_table:
                lines.append(
                    f"            {entry.file} {entry.errors} {entry.delay}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able result record (for ``repro run --json`` and CI).

        Strict JSON rejects ``inf``/``nan``, but an all-miss run's
        summary is exactly that (unbounded delay), and dropping it
        silently would make the row indistinguishable from "not
        measured".  Non-finite latency statistics therefore serialize as
        ``null`` with the latency block's ``"bounded"`` flag set to
        ``false``, so sweeps keep their unbounded-delay rows through a
        JSON round trip.
        """

        def finite(value: float) -> float | None:
            return value if math.isfinite(value) else None

        simulation = None
        if self.simulation is not None:
            sim = self.simulation
            stats = {
                "mean": sim.summary.mean,
                "p50": sim.summary.p50,
                "p95": sim.summary.p95,
                "p99": sim.summary.p99,
                "worst": sim.summary.worst,
            }
            simulation = {
                "requests": len(sim.requests),
                "deadline_misses": sim.deadline_misses,
                "deadline_miss_rate": sim.deadline_miss_rate,
                "latency": {
                    **{key: finite(value) for key, value in stats.items()},
                    "bounded": all(
                        math.isfinite(value) for value in stats.values()
                    ),
                },
                "payload_checks": (
                    None
                    if self.payload_checks is None
                    else dict(self.payload_checks)
                ),
            }
        return {
            "scenario": self.scenario.to_dict(),
            "stats": {
                "bandwidth": self.stats.bandwidth,
                "density": float(self.stats.density),
                "method": self.stats.method,
                "attempts": [list(a) for a in self.stats.attempts],
                "broadcast_period": self.stats.broadcast_period,
                "data_cycle_length": self.stats.data_cycle_length,
                "block_counts": dict(self.stats.block_counts),
                "channels": (
                    None
                    if self.stats.channels is None
                    else [dict(entry) for entry in self.stats.channels]
                ),
            },
            "simulation": simulation,
            "traffic": (
                None if self.traffic is None else self.traffic.to_dict()
            ),
            "delay_table": [
                {"file": e.file, "errors": e.errors, "delay": e.delay}
                for e in self.delay_table
            ],
        }


class BroadcastEngine:
    """Facade running design -> program -> simulation for one scenario.

    The engine is cheap to construct and caches its design, so
    ``engine.design()`` followed by ``engine.run()`` designs once.

    ``design`` injects a precomputed :class:`ProgramDesign` instead of
    solving - the sweep orchestrator's solve-cache hands the same design
    to every scenario sharing a
    :meth:`~repro.api.Scenario.design_fingerprint`.  The caller owns the
    equivalence guarantee: inject only designs produced for a scenario
    with an equal fingerprint.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        design: ProgramDesign | MultiChannelDesign | None = None,
    ) -> None:
        if not isinstance(scenario, Scenario):
            raise SpecificationError(
                f"BroadcastEngine expects a Scenario, got "
                f"{type(scenario).__name__}"
            )
        if design is not None and not isinstance(
            design, (ProgramDesign, MultiChannelDesign)
        ):
            raise SpecificationError(
                f"BroadcastEngine expects a ProgramDesign or "
                f"MultiChannelDesign to inject, got "
                f"{type(design).__name__}"
            )
        if isinstance(design, MultiChannelDesign) != (
            design is not None and scenario.channels is not None
        ):
            raise SpecificationError(
                f"scenario {scenario.name!r} and the injected design "
                f"disagree about multi-channel operation"
            )
        self._scenario = scenario
        self._design: ProgramDesign | MultiChannelDesign | None = design

    @property
    def scenario(self) -> Scenario:
        """The scenario this engine runs."""
        return self._scenario

    def design(self) -> ProgramDesign | MultiChannelDesign:
        """Design the broadcast program (cached after the first call).

        Scenarios with ``channels`` get a
        :class:`~repro.bdisk.multichannel.MultiChannelDesign`; all
        others keep the classic single-channel :class:`ProgramDesign`.
        """
        if self._design is None:
            scenario = self._scenario
            policy = scenario.scheduler_policy
            if scenario.channels is not None:
                self._design = design_multichannel_program(
                    scenario.files
                    if scenario.generalized
                    else scenario.effective_files,
                    scenario.channels,
                    bandwidth=(
                        None
                        if scenario.generalized
                        else scenario.design_bandwidth
                    ),
                    policy=policy,
                )
            elif scenario.generalized:
                self._design = design_generalized_program(
                    scenario.files, policy=policy
                )
            else:
                # design_bandwidth is the same value design_payload
                # fingerprints, so cached designs always describe the
                # program built here (temporal scenarios pin it to 1).
                self._design = design_program(
                    scenario.effective_files,
                    bandwidth=scenario.design_bandwidth,
                    policy=policy,
                )
        return self._design

    def _channel_set(self, design: MultiChannelDesign):
        """The design's channel set under *this* scenario's runtime knobs.

        ``tuning_cost`` and ``quorum`` are runtime knobs excluded from
        the design fingerprint, so a cached design may carry another
        scenario's values - rebind them before anything client-facing
        consumes the set.
        """
        from dataclasses import replace as _replace

        spec = self._scenario.channels
        channel_set = design.channel_set
        if (
            channel_set.tuning_cost == spec.tuning_cost
            and channel_set.quorum == spec.quorum
        ):
            return channel_set
        return _replace(
            channel_set,
            tuning_cost=spec.tuning_cost,
            quorum=spec.quorum,
        )

    def _stats(
        self, design: ProgramDesign | MultiChannelDesign
    ) -> ProgramStats:
        if isinstance(design, MultiChannelDesign):
            return self._stats_multichannel(design)
        plan = design.bandwidth_plan
        program = design.program
        return ProgramStats(
            bandwidth=None if plan is None else plan.bandwidth,
            density=design.density,
            method=design.report.method,
            attempts=design.report.attempts,
            broadcast_period=program.broadcast_period,
            data_cycle_length=program.data_cycle_length,
            block_counts={
                spec.name: program.block_count(spec.name)
                for spec in self._scenario.files
            },
        )

    def _stats_multichannel(self, design: MultiChannelDesign) -> ProgramStats:
        channel_set = design.channel_set
        head = design.designs[0]
        plan = head.bandwidth_plan
        channels = tuple(
            {
                "channel": channel,
                "files": list(design.partition[channel]),
                "bandwidth": (
                    None
                    if d.bandwidth_plan is None
                    else d.bandwidth_plan.bandwidth
                ),
                "density": float(d.density),
                "utilization": float(d.density),
                "method": d.report.method,
                "broadcast_period": d.program.broadcast_period,
                "data_cycle_length": d.program.data_cycle_length,
            }
            for channel, d in enumerate(design.designs)
        )
        return ProgramStats(
            bandwidth=None if plan is None else plan.bandwidth,
            density=max(design.densities),
            method=head.report.method,
            attempts=head.report.attempts,
            broadcast_period=head.program.broadcast_period,
            data_cycle_length=head.program.data_cycle_length,
            block_counts={
                spec.name: channel_set.programs[
                    channel_set.channels_for(spec.name)[0]
                ].block_count(spec.name)
                for spec in self._scenario.files
            },
            channels=channels,
        )

    def simulate(self) -> SimulationResult | None:
        """Replay the scenario workload, or ``None`` without one."""
        scenario = self._scenario
        workload = scenario.workload
        if workload is None:
            return None
        design = self.design()
        multi = isinstance(design, MultiChannelDesign)
        head = design.designs[0] if multi else design
        rng = random.Random(workload.seed)
        if scenario.generalized:
            # Latencies are already in slots; each deadline is the file's
            # weakest promise d(r) - the latency the program guarantees
            # even at the full fault budget.
            requests = request_stream(
                rng,
                scenario.files,
                count=workload.requests,
                horizon=workload.horizon,
                zipf_skew=workload.zipf_skew,
                deadline=lambda spec: spec.latency_vector[-1],
            )
        else:
            requests = request_stream(
                rng,
                scenario.effective_files,
                count=workload.requests,
                horizon=workload.horizon,
                bandwidth=head.bandwidth_plan.bandwidth,
                zipf_skew=workload.zipf_skew,
            )
        file_sizes = {spec.name: spec.blocks for spec in scenario.files}
        if multi:
            channel_set = self._channel_set(design)
            return simulate_requests_multichannel(
                channel_set,
                requests,
                file_sizes=file_sizes,
                faults=[
                    scenario.faults.for_channel(channel).build()
                    for channel in range(channel_set.count)
                ],
            )
        return simulate_requests(
            design.program,
            requests,
            file_sizes=file_sizes,
            faults=scenario.faults.build(),
            need_distinct=True,
        )

    def _deadlines(
        self, design: ProgramDesign | MultiChannelDesign
    ) -> dict[str, int]:
        """Per-file deadlines in slots, matching the workload replay.

        Generalized files promise their weakest latency (the vector's
        last entry, already in slots); regular files promise their
        latency budget at the planned bandwidth (channel 0's plan for a
        multi-channel design - the plans are harmonized).
        """
        scenario = self._scenario
        if scenario.generalized:
            return {
                spec.name: spec.latency_vector[-1]
                for spec in scenario.files
            }
        head = (
            design.designs[0]
            if isinstance(design, MultiChannelDesign)
            else design
        )
        bandwidth = head.bandwidth_plan.bandwidth
        return {
            spec.name: spec.latency * bandwidth
            for spec in scenario.effective_files
        }

    def run_traffic(
        self,
        *,
        max_workers: int | None = None,
        trace: bool = False,
        engine: str = "object",
    ) -> TrafficResult | None:
        """Run the scenario's open-loop population, or ``None`` without one.

        ``max_workers`` shards the population across a process pool
        (results are bit-identical to the serial run); ``trace`` retains
        one record per request for debugging and equivalence tests;
        ``engine`` selects the shard implementation (``"object"`` or
        the vectorized ``"soa"`` - bit-identical metrics, see
        :data:`repro.traffic.ENGINES`).
        """
        scenario = self._scenario
        spec = scenario.traffic
        if spec is None:
            return None
        design = self.design()
        multi = isinstance(design, MultiChannelDesign)
        return simulate_traffic(
            None if multi else design.program,
            [file.name for file in scenario.files],
            spec,
            file_sizes={
                file.name: file.blocks for file in scenario.files
            },
            deadlines=self._deadlines(design),
            faults=scenario.faults,
            temporal=scenario.temporal,
            channels=self._channel_set(design) if multi else None,
            max_workers=max_workers,
            trace=trace,
            engine=engine,
        )

    def run_traffic_shard(self, lo: int, hi: int, *, engine: str = "object"):
        """Run clients ``[lo, hi)`` of the scenario's traffic population.

        The shard-level entry point external pools submit (see
        :func:`repro.traffic.simulate.simulate_traffic_shard`); the
        sweep orchestrator interleaves these with other scenarios' cells
        on one shared pool.  Returns the shard's
        :class:`~repro.traffic.metrics.TrafficMetrics`; raises
        :class:`~repro.errors.SpecificationError` when the scenario has
        no traffic population.
        """
        scenario = self._scenario
        spec = scenario.traffic
        if spec is None:
            raise SpecificationError(
                f"scenario {scenario.name!r} has no traffic population "
                f"to shard"
            )
        design = self.design()
        multi = isinstance(design, MultiChannelDesign)
        return simulate_traffic_shard(
            None if multi else design.program,
            [file.name for file in scenario.files],
            spec,
            file_sizes={
                file.name: file.blocks for file in scenario.files
            },
            deadlines=self._deadlines(design),
            faults=scenario.faults,
            temporal=scenario.temporal,
            channels=self._channel_set(design) if multi else None,
            lo=lo,
            hi=hi,
            engine=engine,
        )

    def payload_checks(
        self, simulation: SimulationResult | None
    ) -> dict[str, bool] | None:
        """Per-file end-to-end AIDA byte integrity over the simulation.

        For each file with at least one completed retrieval: disperse its
        payload (at the scenario's ``block_size``) with AIDA, take the
        blocks that retrieval actually received over the fault channel,
        reconstruct, and compare bit-for-bit.
        """
        if simulation is None:
            return None
        scenario = self._scenario
        design = self.design()
        multi = isinstance(design, MultiChannelDesign)
        program = None if multi else design.program
        checks: dict[str, bool] = {}
        for spec in scenario.files:
            retrieval = next(
                (
                    r
                    for r in simulation.retrievals
                    if r.file == spec.name
                    and r.completed
                    and len(r.received) >= spec.blocks
                ),
                None,
            )
            if retrieval is None:
                continue
            payload = spec.payload(scenario.block_size)
            encoder = AidaEncoder(
                spec.name,
                payload,
                m=spec.blocks,
                # The dispersal width is the airing program's: for a
                # multi-channel run, the channel this retrieval tuned.
                n_max=(
                    design.channel_set.programs[retrieval.channel]
                    if multi
                    else program
                ).block_count(spec.name),
            )
            blocks = [
                encoder.blocks[index]
                for index in retrieval.received[: spec.blocks]
            ]
            checks[spec.name] = reconstruct(blocks) == payload
        return checks

    def delay_table(self) -> tuple[DelayEntry, ...]:
        """Exact worst-case delays up to the scenario's ``delay_errors``."""
        scenario = self._scenario
        if scenario.delay_errors is None:
            return ()
        design = self.design()
        if isinstance(design, MultiChannelDesign):
            # A client tunes whichever carrying channel answers first,
            # so the worst case over the set is the *best* per-channel
            # worst case (tuning cost is a runtime knob, not part of
            # the exact table).
            channel_set = design.channel_set
            return tuple(
                DelayEntry(
                    spec.name,
                    errors,
                    min(
                        worst_case_delay(
                            channel_set.programs[channel],
                            spec.name,
                            spec.blocks,
                            errors,
                            need_distinct=True,
                        )
                        for channel in channel_set.channels_for(spec.name)
                    ),
                )
                for spec in scenario.files
                for errors in range(scenario.delay_errors + 1)
            )
        program = design.program
        return tuple(
            DelayEntry(
                spec.name,
                errors,
                worst_case_delay(
                    program, spec.name, spec.blocks, errors,
                    need_distinct=True,
                ),
            )
            for spec in scenario.files
            for errors in range(scenario.delay_errors + 1)
        )

    def run(self, *, include_traffic: bool = True) -> ScenarioResult:
        """Run the full pipeline and return a structured result.

        ``include_traffic=False`` skips the traffic phase (its
        ``traffic`` field comes back ``None`` even when the scenario has
        a population) - the sweep orchestrator runs traffic as separate
        shard tasks on its shared pool and merges them in afterwards.
        """
        design = self.design()
        simulation = self.simulate()
        return ScenarioResult(
            scenario=self._scenario,
            design=design,
            stats=self._stats(design),
            simulation=simulation,
            delay_table=self.delay_table(),
            payload_checks=self.payload_checks(simulation),
            traffic=self.run_traffic() if include_traffic else None,
        )


def run_scenario(scenario: Scenario | Mapping[str, Any]) -> ScenarioResult:
    """Run one scenario (a :class:`Scenario` or its dict form).

    Every phase of the pipeline - simulation replay, delay analysis,
    payload checks - shares the one designed program and therefore the
    one occurrence index built for it (:attr:`BroadcastProgram.index`).
    """
    if isinstance(scenario, Mapping):
        scenario = Scenario.from_dict(scenario)
    return BroadcastEngine(scenario).run()


def _run_scenario_task(
    scenario: Scenario | Mapping[str, Any], telemetry: bool
) -> tuple[ScenarioResult, dict[str, Any] | None]:
    """Pool task for :func:`run_scenarios`: run one scenario and, when
    the parent has telemetry active, capture this worker's instruments
    so the parent can merge them in submission order."""
    if not telemetry:
        return run_scenario(scenario), None
    with obs.capture() as tel:
        result = run_scenario(scenario)
    return result, tel.to_dict()


def run_scenarios(
    scenarios: Iterable[Scenario | Mapping[str, Any]],
    *,
    max_workers: int | None = None,
) -> tuple[ScenarioResult, ...]:
    """Run a batch of scenarios (for parameter sweeps).

    Parameters
    ----------
    scenarios:
        :class:`Scenario` objects or their dict forms; dicts are
        validated up front, so a malformed entry fails before any work
        is dispatched.
    max_workers:
        ``None`` or ``1`` runs the batch serially in-process (the
        default, and bit-identical to the parallel path).  Any larger
        value fans the batch out over a process pool of that many
        workers - scenarios are independent (each designs its own
        program and occurrence index), so sweeps scale with cores.

    Results are returned in input order regardless of worker scheduling.
    """
    normalized = [
        scenario
        if isinstance(scenario, Scenario)
        else Scenario.from_dict(scenario)
        for scenario in scenarios
    ]
    if max_workers is not None:
        if not isinstance(max_workers, int) or isinstance(max_workers, bool):
            raise SpecificationError(
                f"max_workers must be a positive integer, got "
                f"{type(max_workers).__name__}: {max_workers!r}"
            )
        if max_workers < 1:
            raise SpecificationError(
                f"max_workers must be >= 1: {max_workers}"
            )
    if max_workers is None or max_workers == 1 or len(normalized) <= 1:
        return tuple(run_scenario(scenario) for scenario in normalized)

    from concurrent.futures import ProcessPoolExecutor

    tel = obs.current()
    workers = min(max_workers, len(normalized))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # One future per scenario, collected in submission order.
        # Executor.map preserves input order too; the explicit futures
        # make the guarantee structural (position bound at submit time)
        # rather than a property of map's iterator.
        futures = [
            pool.submit(_run_scenario_task, s, tel is not None)
            for s in normalized
        ]
        results = []
        for future in futures:
            result, payload = future.result()
            if tel is not None and payload is not None:
                tel.merge_dict(payload)
            results.append(result)
        return tuple(results)
