"""The as-run log: what the server planned, aired, and changed.

Broadcast operations keep two artefacts: the *plan* (what the schedule
said would air) and the *as-run log* (what actually went out, with
every deviation accounted for).  :class:`AsRunLog` is the server's
merged record, one JSON object per line (JSONL) so a live tail is
always parseable:

* ``on-air`` - a program taking the air (initial sign-on and every
  splice commit), with its design fingerprint and re-solve provenance
  (cache hit or fresh solve, scheduler method);
* ``mutation`` - an accepted runtime mutation, its payload, and the
  scenario fingerprint it produced;
* ``splice`` - a committed splice point: the boundary slot, outgoing
  and incoming fingerprints, rejected earlier boundaries, and a short
  *planned vs aired* window around the boundary proving the divergence
  starts exactly at the declared slot;
* ``violation`` - an in-flight retrieval pushed past its budget by a
  splice (none, under the predicate, for fault-free channels);
* ``sign-off`` - the run summary.

Records carry the absolute slot they describe; :func:`read_asrun`
parses a file back into dicts, which is all the round-trip the
acceptance checks (and any downstream tooling) need.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

from repro.errors import SpecificationError
from repro.server.airing import AirSchedule

#: Slots shown on each side of a splice in the planned-vs-aired window.
ASRUN_WINDOW = 8


def _content_str(content: Any) -> str:
    """One slot's airing as a compact string (``-`` = idle slot)."""
    if content is None:
        return "-"
    return f"{content.file}[{content.block_index}]"


def planned_vs_aired(
    schedule: AirSchedule, splice_slot: int, window: int = ASRUN_WINDOW
) -> dict[str, Any]:
    """The divergence witness around a splice.

    ``planned`` is what the outgoing program would have aired had the
    splice not happened; ``aired`` is what the committed timeline airs.
    Both cover ``[splice_slot - window, splice_slot + window)``, so the
    log itself proves planned and aired agree strictly before the
    boundary and diverge only from it.
    """
    if window < 1:
        raise SpecificationError(f"window must be >= 1: {window}")
    epoch = schedule.epoch_of(splice_slot)
    if epoch == 0:
        raise SpecificationError(
            f"slot {splice_slot} is not a splice point"
        )
    outgoing = schedule.segments[epoch - 1]
    lo = max(splice_slot - window, outgoing.start)
    slots = range(lo, splice_slot + window)
    planned = [
        _content_str(
            outgoing.program.index.content(outgoing.phase(slot))
        )
        for slot in slots
    ]
    aired = [_content_str(schedule.content(slot)) for slot in slots]
    return {
        "from_slot": lo,
        "splice_slot": splice_slot,
        "planned": planned,
        "aired": aired,
    }


class AsRunLog:
    """An append-only JSONL record of a server run.

    Records accumulate in memory always; when ``path`` is given each
    record is also written (and flushed) to disk as one JSON line, so
    the log survives however the run ends.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._records: list[dict[str, Any]] = []
        self._path = None if path is None else Path(path)
        self._handle: IO[str] | None = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "w", encoding="utf-8")

    @property
    def path(self) -> Path | None:
        """Where the JSONL lines go (``None`` = memory only)."""
        return self._path

    @property
    def records(self) -> tuple[dict[str, Any], ...]:
        """Every record logged so far, in order."""
        return tuple(self._records)

    def record(self, type_: str, slot: int, **fields: Any) -> None:
        """Append one record (``type`` + ``slot`` + free-form fields)."""
        entry: dict[str, Any] = {"type": type_, "slot": slot}
        entry.update(fields)
        # Fail fast on non-JSON payloads: a log that cannot round-trip
        # is worse than a crash at the point the bad record was made.
        line = json.dumps(entry, sort_keys=True)
        self._records.append(entry)
        if self._handle is not None:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the disk file (memory records remain)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "AsRunLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        where = "memory" if self._path is None else str(self._path)
        return f"AsRunLog({where}, records={len(self._records)})"


def read_asrun(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL as-run file back into its records.

    Raises :class:`~repro.errors.SpecificationError` on a line that is
    not a JSON object or lacks the ``type``/``slot`` envelope - the
    round-trip contract the acceptance checks rely on.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise SpecificationError(
                    f"{path}:{number}: not valid JSON: {error}"
                ) from error
            if (
                not isinstance(entry, dict)
                or "type" not in entry
                or "slot" not in entry
            ):
                raise SpecificationError(
                    f"{path}:{number}: as-run records are objects with "
                    f"'type' and 'slot' fields, got: {line[:80]}"
                )
            records.append(entry)
    return records
