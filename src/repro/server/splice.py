"""The splice-safety predicate: when may a new program take the air?

Splicing a re-solved program into a live broadcast is safe only if no
client mid-retrieval is pushed past its budget by the switch.  This
module makes that an explicit, testable predicate over the occurrence
indexes of the outgoing and incoming programs - the server never
commits a splice the predicate has not blessed.

The key reduction is **critical-start enumeration**.  A retrieval with
budget ``D`` can only span a boundary at slot ``B`` if it started in
``[B - D + 1, B - 1]`` (earlier starts must already have finished to
meet their budget; later starts run purely on the incoming program,
whose own design guarantees them).  Within the gap between two
consecutive outgoing services of the file, every start hears the
identical service stream, so the *earliest* start in each gap is the
worst case: its deadline is tightest for the same finish slot.  The
predicate therefore walks only ``O(occurrences-in-window)`` candidate
starts per file - exact, not a heuristic - and each candidate is
checked by the same cross-segment walker
(:meth:`~repro.server.airing.AirSchedule.retrieve`) live sessions use,
so the check and the experienced behaviour cannot drift apart.

The enumeration is exact for *fault-free* spanning retrievals - the
contract the paper's designs promise per fault level is checked here at
level 0, the level the splice itself must never degrade.  Stochastic
loss on top is the fault model's business, not the splice's, and shows
up in the pre/post-splice metrics instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram
from repro.server.airing import AirSchedule, Segment


@dataclass(frozen=True)
class SpliceRequirement:
    """One file's in-flight contract a splice must keep.

    ``m_needed`` distinct blocks within ``budget_slots`` of any start;
    ``versioned`` additionally requires the completed value's age to
    fit the same budget (temporal items' freshness bound equals their
    latency budget in slots).
    """

    file: str
    m_needed: int
    budget_slots: int
    versioned: bool = False

    def __post_init__(self) -> None:
        if self.m_needed < 1:
            raise SimulationError(
                f"splice requirement for {self.file!r}: m_needed must "
                f"be >= 1: {self.m_needed}"
            )
        if self.budget_slots < 1:
            raise SimulationError(
                f"splice requirement for {self.file!r}: budget must "
                f"be >= 1 slot: {self.budget_slots}"
            )


@dataclass(frozen=True)
class SpliceViolation:
    """One spanning retrieval a candidate splice would break."""

    file: str
    start: int
    budget_slots: int
    latency: int | None
    age_at_completion: int | None = None

    def describe(self) -> str:
        """One-line human summary."""
        outcome = (
            "aborts"
            if self.latency is None
            else f"takes {self.latency} slots"
        )
        extra = (
            f" (age {self.age_at_completion})"
            if self.age_at_completion is not None
            else ""
        )
        return (
            f"{self.file} from slot {self.start} {outcome}{extra}, "
            f"budget {self.budget_slots}"
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict for the as-run log."""
        return {
            "file": self.file,
            "start": self.start,
            "budget_slots": self.budget_slots,
            "latency": self.latency,
            "age_at_completion": self.age_at_completion,
        }


def critical_starts(
    schedule: AirSchedule, file: str, budget_slots: int, splice_slot: int
) -> list[int]:
    """The exact worst-case start slots of retrievals spanning a splice.

    One representative per service gap of the outgoing program inside
    ``[splice_slot - budget_slots + 1, splice_slot - 1]`` (clamped to
    the outgoing segment): the window's first slot, plus the slot after
    each outgoing service of ``file`` in the window.  Every other
    spanning start hears the same stream as its gap's representative
    with a strictly looser deadline.
    """
    outgoing = schedule.segment_at(splice_slot - 1)
    lo = max(splice_slot - budget_slots + 1, outgoing.start)
    if lo >= splice_slot:
        # A budget this tight cannot span the boundary: every start at
        # or after the splice runs purely on the incoming program and
        # is judged by the incoming epoch's own contracts instead.
        return []
    starts = [lo]
    if file in outgoing.program.files:
        for slot, _ in outgoing.program.index.occurrences_from(
            file, outgoing.phase(lo)
        ):
            abs_slot = outgoing.absolute(slot)
            if abs_slot >= splice_slot - 1:
                break
            starts.append(abs_slot + 1)
    return starts


def check_splice(
    schedule: AirSchedule,
    splice_slot: int,
    requirements: Iterable[SpliceRequirement],
) -> tuple[SpliceViolation, ...]:
    """Every in-flight contract a splice at ``splice_slot`` would break.

    ``schedule`` is the *candidate* timeline - it already contains the
    incoming segment starting at ``splice_slot`` (build one cheaply
    with :meth:`~repro.server.airing.AirSchedule.spliced`; rejecting it
    discards nothing).  An empty result means the splice is safe: every
    fault-free retrieval spanning the boundary still meets its slot -
    and, for versioned items, staleness - budget.
    """
    if splice_slot not in schedule.splice_slots:
        raise SimulationError(
            f"slot {splice_slot} is not a splice point of the "
            f"candidate timeline (splices: {list(schedule.splice_slots)})"
        )
    violations: list[SpliceViolation] = []
    for requirement in requirements:
        for start in critical_starts(
            schedule, requirement.file, requirement.budget_slots,
            splice_slot,
        ):
            if requirement.versioned:
                outcome = schedule.retrieve_versioned(
                    requirement.file,
                    requirement.m_needed,
                    start=start,
                    max_slots=requirement.budget_slots,
                )
                fresh = (
                    outcome.age_at_completion is not None
                    and outcome.age_at_completion
                    <= requirement.budget_slots
                )
                ok = outcome.completed and fresh
            else:
                outcome = schedule.retrieve(
                    requirement.file,
                    requirement.m_needed,
                    start=start,
                    max_slots=requirement.budget_slots,
                )
                ok = outcome.completed
            if not ok:
                violations.append(
                    SpliceViolation(
                        file=requirement.file,
                        start=start,
                        budget_slots=requirement.budget_slots,
                        latency=outcome.latency,
                        age_at_completion=outcome.age_at_completion,
                    )
                )
    return tuple(violations)


def splice_is_safe(
    schedule: AirSchedule,
    splice_slot: int,
    requirements: Iterable[SpliceRequirement],
) -> bool:
    """Whether a splice at ``splice_slot`` keeps every contract."""
    return not check_splice(schedule, splice_slot, requirements)


def find_splice_slot(
    schedule: AirSchedule,
    incoming: BroadcastProgram,
    *,
    not_before: int,
    requirements: Iterable[SpliceRequirement],
    fingerprint: str = "",
    update_periods: Mapping[str, int] | None = None,
    dispersal: Mapping[str, int] | None = None,
    label: str = "",
    max_boundaries: int = 64,
    max_offsets: int = 64,
) -> tuple[AirSchedule, int, list[tuple[int, tuple[SpliceViolation, ...]]]]:
    """The earliest safe data-cycle boundary to splice ``incoming`` in.

    Scans outgoing data-cycle boundaries at or after ``not_before``
    (at most ``max_boundaries`` of them), and at each boundary up to
    ``max_offsets`` phase rotations of the incoming cycle - a cyclic
    program has no distinguished origin, so every rotation keeps the
    incoming design's own guarantees while shifting which occurrences
    land right after the boundary.  Returns the committed candidate
    timeline, its splice slot, and the rejected attempts ``[(slot,
    violations), ...]`` (each boundary's unrotated rejection) for the
    as-run log; the chosen rotation is on the candidate's last
    segment (``candidate.on_air.phase_offset``).  Raises
    :class:`~repro.errors.SimulationError` when nothing scanned is
    safe - the mutation is refused rather than aired unsafely.
    """
    requirements = tuple(requirements)
    outgoing = schedule.on_air
    cycle = outgoing.program.data_cycle_length
    gap = max(not_before - outgoing.start, 1)
    boundary = outgoing.start + -(-gap // cycle) * cycle
    offsets = range(min(incoming.data_cycle_length, max(max_offsets, 1)))
    attempts: list[tuple[int, tuple[SpliceViolation, ...]]] = []
    for _ in range(max_boundaries):
        for offset in offsets:
            candidate = schedule.spliced(
                Segment(
                    start=boundary,
                    program=incoming,
                    fingerprint=fingerprint,
                    update_periods=update_periods,
                    dispersal=dispersal,
                    phase_offset=offset,
                    label=label,
                )
            )
            violations = check_splice(candidate, boundary, requirements)
            if not violations:
                return candidate, boundary, attempts
            if offset == 0:
                attempts.append((boundary, violations))
        boundary += cycle
    raise SimulationError(
        f"no safe splice boundary within {max_boundaries} data cycles "
        f"of slot {not_before} (cycle {cycle} slots, up to "
        f"{len(offsets)} phase rotations each); first rejection: "
        f"{attempts[0][1][0].describe()}"
    )
