"""Client sessions that live *through* splices.

The offline traffic simulator (:mod:`repro.traffic.clients`) computes a
retrieval's outcome and records its metrics at issue time - sound,
because the program it walks can never change.  An online server's can:
a splice committed after a request was issued rewrites the channel from
the boundary on.  The live sessions here therefore *defer*: issuing
computes a provisional outcome over the current airing timeline and
schedules a completion event at the provisional finish slot, and the
server re-walks every in-flight retrieval whose completion lies at or
beyond a freshly committed splice (pre-boundary content is untouched,
so earlier completions cannot change), cancelling and rescheduling the
completion event when the outcome moved.  Metrics are recorded at
*completion* into the epoch the completion slot falls in - which is
what splits them pre/post-splice.

Determinism parity: a live session draws from its RNG in the same order
as its offline counterpart (file/transaction draw at issue, think draw
immediately after - think times consume no entropy from retrievals), so
a run with zero mutations is bit-identical to
:func:`repro.traffic.simulate.simulate_traffic` on the same scenario.
The one divergence is harmless: the live session draws the final
request's think time too (the offline one skips it); nothing downstream
consumes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.rtdb.transactions import ReadTransaction
from repro.server.airing import SplicedRetrieval
from repro.traffic.arrivals import think_slots
from repro.traffic.kernel import EventKernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.server import BroadcastServer


@dataclass(frozen=True)
class _PendingRead:
    """One in-flight request: what was asked, when, and the provisional
    outcome the completion event will deliver unless a splice moves it."""

    file: str
    issued: int
    clock: int
    outcome: SplicedRetrieval


@dataclass(frozen=True)
class RespliceOutcome:
    """How a committed splice moved one in-flight retrieval."""

    file: str
    start: int
    budget_slots: int
    old_latency: int | None
    new_latency: int | None
    was_ok: bool
    now_ok: bool

    @property
    def violated(self) -> bool:
        """A retrieval that met its contract and no longer does."""
        return self.was_ok and not self.now_ok


class LiveSession:
    """One open-loop client running against the live server.

    The online counterpart of
    :class:`~repro.traffic.clients.ClientSession`: same RNG discipline,
    same single-receiver chaining, but outcomes are provisional until
    the completion event fires and metrics land in the completion
    epoch.
    """

    __slots__ = (
        "index",
        "_rng",
        "_server",
        "_remaining",
        "_think_mean",
        "_busy_until",
        "_pending",
        "_think",
        "_event_id",
    )

    def __init__(
        self,
        index: int,
        rng: random.Random,
        server: "BroadcastServer",
        *,
        requests: int,
        think_mean: int,
    ) -> None:
        self.index = index
        self._rng = rng
        self._server = server
        self._remaining = requests
        self._think_mean = think_mean
        self._busy_until = -1
        self._pending: _PendingRead | None = None
        self._think = 0
        self._event_id = -1

    def begin(self, kernel: EventKernel, arrival: int) -> None:
        """Schedule the session's first request at its arrival slot."""
        kernel.schedule(arrival, self.issue)

    @property
    def pending_finish(self) -> int:
        """The provisional completion slot of the in-flight request."""
        assert self._pending is not None
        return self._pending.outcome.finish_slot

    def issue(self, kernel: EventKernel) -> None:
        """Issue one request at ``kernel.now``; defer its completion."""
        now = kernel.now
        if now <= self._busy_until:
            raise SimulationError(
                f"client {self.index}: request at slot {now} while the "
                f"receiver is busy until slot {self._busy_until} "
                f"(single-receiver constraint violated)"
            )
        file = self._server.draw_file(self._rng, now)
        outcome = self._server.live_retrieve(file, now)
        self._think = think_slots(self._rng, self._think_mean)
        self._pending = _PendingRead(
            file=file, issued=now, clock=now, outcome=outcome
        )
        self._event_id = kernel.schedule(
            outcome.finish_slot, self._complete
        )
        self._server.register_inflight(self)

    def resplice(self, kernel: EventKernel) -> RespliceOutcome:
        """Re-walk the in-flight request over the spliced timeline.

        Called by the server after committing a splice at or before the
        provisional completion slot.  Cancels the stale completion
        event and schedules the revised one; reports how the outcome
        moved so the server can account violations.
        """
        pending = self._pending
        assert pending is not None
        old = pending.outcome
        new = self._server.live_retrieve(pending.file, pending.clock)
        budget = self._server.deadline_at(pending.issued, pending.file)
        kernel.cancel(self._event_id)
        self._pending = replace(pending, outcome=new)
        self._event_id = kernel.schedule(new.finish_slot, self._complete)
        return RespliceOutcome(
            file=pending.file,
            start=pending.clock,
            budget_slots=budget,
            old_latency=old.latency,
            new_latency=new.latency,
            was_ok=old.latency is not None and old.latency <= budget,
            now_ok=new.latency is not None and new.latency <= budget,
        )

    def _complete(self, kernel: EventKernel) -> None:
        pending = self._pending
        assert pending is not None
        self._server.unregister_inflight(self)
        self._pending = None
        outcome = pending.outcome
        self._busy_until = outcome.finish_slot
        self._server.record_read(
            pending.file, pending.issued, outcome
        )
        self._remaining -= 1
        if self._remaining > 0:
            kernel.schedule(
                outcome.finish_slot + 1 + self._think, self.issue
            )

    def __repr__(self) -> str:
        return (
            f"LiveSession(index={self.index}, "
            f"remaining={self._remaining})"
        )


class LiveTransactionSession:
    """One open-loop client issuing read transactions against the server.

    The online counterpart of
    :class:`~repro.traffic.clients.TransactionSession`: items are
    fetched sequentially, but each item is its own deferred completion
    event, so exactly the item actually in flight is re-walked when a
    splice lands.  The transaction draw and the think draw happen at
    issue time, preserving the offline RNG stream (retrievals consume
    no entropy).
    """

    __slots__ = (
        "index",
        "_rng",
        "_server",
        "_remaining",
        "_think_mean",
        "_busy_until",
        "_txn",
        "_txn_issued",
        "_item_index",
        "_pending",
        "_think",
        "_event_id",
    )

    def __init__(
        self,
        index: int,
        rng: random.Random,
        server: "BroadcastServer",
        *,
        requests: int,
        think_mean: int,
    ) -> None:
        self.index = index
        self._rng = rng
        self._server = server
        self._remaining = requests
        self._think_mean = think_mean
        self._busy_until = -1
        self._txn: ReadTransaction | None = None
        self._txn_issued = 0
        self._item_index = 0
        self._pending: _PendingRead | None = None
        self._think = 0
        self._event_id = -1

    def begin(self, kernel: EventKernel, arrival: int) -> None:
        """Schedule the session's first transaction at its arrival."""
        kernel.schedule(arrival, self.issue)

    @property
    def pending_finish(self) -> int:
        """The provisional completion slot of the in-flight item."""
        assert self._pending is not None
        return self._pending.outcome.finish_slot

    def issue(self, kernel: EventKernel) -> None:
        """Draw one transaction at ``kernel.now``; fetch its items."""
        now = kernel.now
        if now <= self._busy_until:
            raise SimulationError(
                f"client {self.index}: transaction at slot {now} while "
                f"the receiver is busy until slot {self._busy_until} "
                f"(single-receiver constraint violated)"
            )
        self._txn = self._server.draw_transaction(self._rng, now)
        self._think = think_slots(self._rng, self._think_mean)
        self._txn_issued = now
        self._item_index = 0
        self._fetch(kernel, now)

    def _fetch(self, kernel: EventKernel, clock: int) -> None:
        assert self._txn is not None
        item = self._txn.items[self._item_index]
        outcome = self._server.live_retrieve_versioned(item, clock)
        self._pending = _PendingRead(
            file=item, issued=self._txn_issued, clock=clock,
            outcome=outcome,
        )
        self._event_id = kernel.schedule(
            outcome.finish_slot, self._item_done
        )
        self._server.register_inflight(self)

    def resplice(self, kernel: EventKernel) -> RespliceOutcome:
        """Re-walk the in-flight *item* over the spliced timeline.

        The versioned contract is freshness: the item must complete
        with an age within the issue-epoch staleness budget.
        """
        pending = self._pending
        assert pending is not None
        old = pending.outcome
        new = self._server.live_retrieve_versioned(
            pending.file, pending.clock
        )
        budget = self._server.max_age_at(pending.issued, pending.file)

        def fresh(outcome: SplicedRetrieval) -> bool:
            return (
                outcome.age_at_completion is not None
                and outcome.age_at_completion <= budget
            )

        kernel.cancel(self._event_id)
        self._pending = replace(pending, outcome=new)
        self._event_id = kernel.schedule(
            new.finish_slot, self._item_done
        )
        return RespliceOutcome(
            file=pending.file,
            start=pending.clock,
            budget_slots=budget,
            old_latency=old.latency,
            new_latency=new.latency,
            was_ok=old.completed and fresh(old),
            now_ok=new.completed and fresh(new),
        )

    def _item_done(self, kernel: EventKernel) -> None:
        pending = self._pending
        assert pending is not None
        assert self._txn is not None
        self._server.unregister_inflight(self)
        self._pending = None
        outcome = pending.outcome
        self._server.record_versioned_read(
            pending.file, pending.issued, outcome
        )
        if outcome.latency is None:
            self._finish_transaction(kernel, outcome.finish_slot, True)
            return
        self._item_index += 1
        if self._item_index < len(self._txn.items):
            # Next item starts the slot after this one finished - the
            # single receiver frees up then (offline clock discipline).
            self._fetch(kernel, outcome.finish_slot + 1)
        else:
            self._finish_transaction(kernel, outcome.finish_slot, False)

    def _finish_transaction(
        self, kernel: EventKernel, finish: int, aborted: bool
    ) -> None:
        assert self._txn is not None
        self._busy_until = finish
        response = None if aborted else finish - self._txn_issued + 1
        self._server.record_transaction(
            self._txn, self._txn_issued, response, finish
        )
        self._txn = None
        self._remaining -= 1
        if self._remaining > 0:
            kernel.schedule(finish + 1 + self._think, self.issue)

    def __repr__(self) -> str:
        return (
            f"LiveTransactionSession(index={self.index}, "
            f"remaining={self._remaining})"
        )
