"""The online broadcast server: live re-scheduling on one channel.

Everything else in this repository solves offline; this subpackage is
the paper's motivating scenario made operational - an AWACS broadcast
station that must switch operating modes (surveillance to combat and
back), add and retire files, and retune fault budgets *while on air*,
without violating the temporal constraints of retrievals already in
flight.

The moving parts:

* :mod:`~repro.server.mutations` - the runtime deltas a server accepts
  (mode changes, file add/remove, fault-budget bumps, temporal edits),
  each a JSON-able value producing the successor
  :class:`~repro.api.Scenario`;
* :mod:`~repro.server.airing` - :class:`AirSchedule`, the spliced
  timeline of broadcast programs, with cross-segment retrieval walkers;
* :mod:`~repro.server.splice` - the explicit splice-safety predicate
  over the outgoing/incoming occurrence indexes, and the boundary
  search;
* :mod:`~repro.server.asrun` - the JSONL as-run log (planned vs aired,
  mutations, splice points, re-solve provenance);
* :mod:`~repro.server.sessions` - client sessions that live *through*
  splices via deferred, reschedulable completion events;
* :mod:`~repro.server.server` - :class:`BroadcastServer` itself, with
  programmatic ``apply()`` / ``advance()`` / ``close()``;
* :mod:`~repro.server.script` - scripted JSON mutation timelines (the
  ``repro server`` CLI driver).
"""

from repro.server.airing import AirSchedule, Segment, SplicedRetrieval
from repro.server.asrun import (
    ASRUN_WINDOW,
    AsRunLog,
    planned_vs_aired,
    read_asrun,
)
from repro.server.mutations import (
    AddFile,
    FaultBudgetBump,
    ModeChange,
    Mutation,
    MUTATION_KINDS,
    RemoveFile,
    TemporalEdit,
    mutation_from_dict,
)
from repro.server.script import MutationScript, ScriptEntry, run_script
from repro.server.server import BroadcastServer, ServerResult
from repro.server.sessions import (
    LiveSession,
    LiveTransactionSession,
    RespliceOutcome,
)
from repro.server.splice import (
    SpliceRequirement,
    SpliceViolation,
    check_splice,
    critical_starts,
    find_splice_slot,
    splice_is_safe,
)

__all__ = [
    "AirSchedule",
    "Segment",
    "SplicedRetrieval",
    "ASRUN_WINDOW",
    "AsRunLog",
    "planned_vs_aired",
    "read_asrun",
    "AddFile",
    "FaultBudgetBump",
    "ModeChange",
    "Mutation",
    "MUTATION_KINDS",
    "RemoveFile",
    "TemporalEdit",
    "mutation_from_dict",
    "MutationScript",
    "ScriptEntry",
    "run_script",
    "BroadcastServer",
    "ServerResult",
    "LiveSession",
    "LiveTransactionSession",
    "RespliceOutcome",
    "SpliceRequirement",
    "SpliceViolation",
    "check_splice",
    "critical_starts",
    "find_splice_slot",
    "splice_is_safe",
]
