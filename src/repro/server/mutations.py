"""Runtime mutations an online broadcast server accepts.

Each mutation is a small frozen value describing one *delta* against
the currently-airing :class:`~repro.api.Scenario` - a mode change, a
file added to or removed from the catalogue, a fault-budget bump, or a
temporal-spec edit.  ``apply(scenario)`` produces the successor
scenario through :func:`dataclasses.replace`, so every invariant the
``Scenario`` constructor enforces (catalogue shape, mode validity,
per-mode feasibility of temporal items) re-runs eagerly at mutation
time rather than surfacing mid-splice.

Two properties matter to the server:

* mutations that only touch *runtime* knobs (an update period, the
  transaction mix) leave :meth:`~repro.api.Scenario.design_fingerprint`
  unchanged, so the re-solve through the shared
  :class:`~repro.sweep.cache.SolveCache` is a guaranteed warm-start
  hit;
* mutations are JSON values (``to_dict`` / :func:`mutation_from_dict`),
  which is what makes scripted timelines - ``repro server scenario.json
  --script mutations.json`` - and as-run provenance records possible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.errors import SpecificationError
from repro.ida.aida import RedundancyPolicy
from repro.bdisk.file import FileSpec, GeneralizedFileSpec
from repro.rtdb.spec import TemporalItemSpec, TemporalSpec
from repro.api.scenario import Scenario


def _require_keys(
    payload: Mapping[str, Any], allowed: set[str], what: str
) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise SpecificationError(
            f"{what}: unknown keys {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


def _replace_temporal(scenario: Scenario, temporal: TemporalSpec) -> Scenario:
    # A temporal scenario's files are derived; replace() re-passes the
    # old derivation, which the constructor would reject against the
    # new spec - clear them so they re-derive.
    return replace(scenario, temporal=temporal, files=())


@dataclass(frozen=True)
class ModeChange:
    """Switch the active operation mode (e.g. surveillance -> combat).

    Temporal scenarios switch the :class:`~repro.rtdb.spec.TemporalSpec`
    mode (selecting per-item fault budgets); regular scenarios with a
    :class:`~repro.ida.aida.RedundancyPolicy` switch the scenario mode.
    The mode must be declared up front - an online server never invents
    operating regimes.
    """

    mode: str
    kind = "mode_change"

    def apply(self, scenario: Scenario) -> Scenario:
        """The successor scenario operating in :attr:`mode`."""
        if scenario.temporal is not None:
            if self.mode not in scenario.temporal.modes:
                raise SpecificationError(
                    f"mode change to {self.mode!r}: scenario "
                    f"{scenario.name!r} declares modes "
                    f"{list(scenario.temporal.modes)}"
                )
            return _replace_temporal(
                scenario, replace(scenario.temporal, mode=self.mode)
            )
        if scenario.redundancy is None:
            raise SpecificationError(
                f"mode change to {self.mode!r}: scenario "
                f"{scenario.name!r} has neither a temporal spec nor a "
                f"redundancy policy, so modes do not apply"
            )
        if self.mode not in scenario.redundancy.modes():
            raise SpecificationError(
                f"mode change to {self.mode!r}: redundancy policy "
                f"declares modes {list(scenario.redundancy.modes())}"
            )
        return replace(scenario, mode=self.mode)

    def describe(self) -> str:
        """One-line human summary."""
        return f"mode -> {self.mode}"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :func:`mutation_from_dict` round-trips it."""
        return {"kind": self.kind, "mode": self.mode}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModeChange":
        """Build from :meth:`to_dict` output / parsed JSON."""
        _require_keys(payload, {"kind", "mode"}, "mode_change mutation")
        mode = payload.get("mode")
        if not isinstance(mode, str) or not mode:
            raise SpecificationError(
                f"mode_change mutation needs a non-empty string "
                f"'mode', got {mode!r}"
            )
        return cls(mode)


@dataclass(frozen=True)
class AddFile:
    """Add a file (or temporal item) to the airing catalogue.

    ``file`` is the spec payload: for regular scenarios the
    ``{name, blocks, latency[, fault_budget]}`` (or ``latency_vector``
    for generalized catalogues) shape scenario JSON uses; for temporal
    scenarios a :class:`~repro.rtdb.spec.TemporalItemSpec` payload,
    plus the mandatory ``update_period`` runtime knob.
    """

    file: Mapping[str, Any]
    update_period: int | None = None
    kind = "add_file"

    def _name(self) -> str:
        name = self.file.get("name")
        if not isinstance(name, str) or not name:
            raise SpecificationError(
                f"add_file mutation: file payload needs a non-empty "
                f"'name', got {name!r}"
            )
        return name

    def apply(self, scenario: Scenario) -> Scenario:
        """The successor scenario with the file on the air."""
        name = self._name()
        if scenario.temporal is not None:
            if self.update_period is None:
                raise SpecificationError(
                    f"add_file {name!r}: temporal items need an "
                    f"'update_period' (slots)"
                )
            temporal = scenario.temporal
            item = TemporalItemSpec.from_dict(self.file)
            periods = dict(temporal.update_periods)
            periods[item.name] = self.update_period
            return _replace_temporal(
                scenario,
                replace(
                    temporal,
                    items=temporal.items + (item,),
                    update_periods=periods,
                ),
            )
        if self.update_period is not None:
            raise SpecificationError(
                f"add_file {name!r}: 'update_period' applies to "
                f"temporal scenarios only"
            )
        payload = dict(self.file)
        if "latency_vector" in payload:
            _require_keys(
                payload,
                {"name", "blocks", "latency_vector"},
                f"add_file {name!r} (generalized)",
            )
            spec: FileSpec | GeneralizedFileSpec = GeneralizedFileSpec(
                payload["name"],
                payload["blocks"],
                tuple(payload["latency_vector"]),
            )
        else:
            _require_keys(
                payload,
                {"name", "blocks", "latency", "fault_budget"},
                f"add_file {name!r}",
            )
            spec = FileSpec(
                payload["name"],
                payload["blocks"],
                payload["latency"],
                fault_budget=payload.get("fault_budget", 0),
            )
        return replace(scenario, files=scenario.files + (spec,))

    def describe(self) -> str:
        """One-line human summary."""
        return f"add file {self._name()}"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :func:`mutation_from_dict` round-trips it."""
        payload: dict[str, Any] = {"kind": self.kind, "file": dict(self.file)}
        if self.update_period is not None:
            payload["update_period"] = self.update_period
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AddFile":
        """Build from :meth:`to_dict` output / parsed JSON."""
        _require_keys(
            payload, {"kind", "file", "update_period"}, "add_file mutation"
        )
        file = payload.get("file")
        if not isinstance(file, Mapping):
            raise SpecificationError(
                f"add_file mutation needs a 'file' object, got "
                f"{type(file).__name__}"
            )
        return cls(dict(file), payload.get("update_period"))


@dataclass(frozen=True)
class RemoveFile:
    """Retire a file (or temporal item) from the airing catalogue."""

    name: str
    kind = "remove_file"

    def apply(self, scenario: Scenario) -> Scenario:
        """The successor scenario without the file."""
        if scenario.temporal is not None:
            temporal = scenario.temporal
            kept = tuple(
                item for item in temporal.items if item.name != self.name
            )
            if len(kept) == len(temporal.items):
                raise SpecificationError(
                    f"remove_file {self.name!r}: not a temporal item of "
                    f"scenario {scenario.name!r}"
                )
            readers = sorted(
                txn.name
                for txn in temporal.transactions
                if self.name in txn.items
            )
            if readers:
                raise SpecificationError(
                    f"remove_file {self.name!r}: still read by "
                    f"transactions {readers}"
                )
            periods = {
                item: period
                for item, period in temporal.update_periods.items()
                if item != self.name
            }
            return _replace_temporal(
                scenario,
                replace(temporal, items=kept, update_periods=periods),
            )
        kept_files = tuple(
            spec for spec in scenario.files if spec.name != self.name
        )
        if len(kept_files) == len(scenario.files):
            raise SpecificationError(
                f"remove_file {self.name!r}: not in scenario "
                f"{scenario.name!r}'s catalogue"
            )
        return replace(scenario, files=kept_files)

    def describe(self) -> str:
        """One-line human summary."""
        return f"remove file {self.name}"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :func:`mutation_from_dict` round-trips it."""
        return {"kind": self.kind, "name": self.name}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RemoveFile":
        """Build from :meth:`to_dict` output / parsed JSON."""
        _require_keys(payload, {"kind", "name"}, "remove_file mutation")
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecificationError(
                f"remove_file mutation needs a non-empty string "
                f"'name', got {name!r}"
            )
        return cls(name)


@dataclass(frozen=True)
class FaultBudgetBump:
    """Change one file's fault-tolerance budget by ``delta`` losses.

    Regular catalogues edit the :class:`~repro.bdisk.builder.FileSpec`
    budget (or, under a redundancy policy, the active mode's entry);
    temporal catalogues edit the item's criticality in the active mode.
    ``delta`` may be negative; the resulting budget must stay >= 0.
    """

    name: str
    delta: int
    kind = "fault_budget"

    def apply(self, scenario: Scenario) -> Scenario:
        """The successor scenario with the bumped budget."""
        if not isinstance(self.delta, int) or isinstance(self.delta, bool):
            raise SpecificationError(
                f"fault_budget {self.name!r}: delta must be an integer, "
                f"got {self.delta!r}"
            )
        if scenario.temporal is not None:
            temporal = scenario.temporal
            mode = temporal.mode
            items = []
            found = False
            for item in temporal.items:
                if item.name != self.name:
                    items.append(item)
                    continue
                found = True
                current = item.criticality.get(mode, item.default_faults)
                budget = current + self.delta
                if budget < 0:
                    raise SpecificationError(
                        f"fault_budget {self.name!r}: {current} + "
                        f"{self.delta} is negative"
                    )
                items.append(
                    replace(
                        item,
                        criticality={**item.criticality, mode: budget},
                    )
                )
            if not found:
                raise SpecificationError(
                    f"fault_budget {self.name!r}: not a temporal item "
                    f"of scenario {scenario.name!r}"
                )
            return _replace_temporal(
                scenario, replace(temporal, items=tuple(items))
            )
        if scenario.redundancy is not None:
            assert scenario.mode is not None
            if self.name not in {spec.name for spec in scenario.files}:
                raise SpecificationError(
                    f"fault_budget {self.name!r}: not in scenario "
                    f"{scenario.name!r}'s catalogue"
                )
            mode = scenario.mode
            current = scenario.redundancy.fault_budget(mode, self.name)
            budget = current + self.delta
            if budget < 0:
                raise SpecificationError(
                    f"fault_budget {self.name!r}: {current} + "
                    f"{self.delta} is negative"
                )
            budgets = {
                m: dict(files)
                for m, files in scenario.redundancy.budgets.items()
            }
            budgets.setdefault(mode, {})[self.name] = budget
            return replace(
                scenario,
                redundancy=RedundancyPolicy(
                    budgets, scenario.redundancy.default
                ),
            )
        if scenario.generalized:
            raise SpecificationError(
                f"fault_budget {self.name!r}: generalized files encode "
                f"fault tolerance in their latency vectors"
            )
        files = []
        found = False
        for spec in scenario.files:
            if spec.name != self.name:
                files.append(spec)
                continue
            found = True
            budget = spec.fault_budget + self.delta
            if budget < 0:
                raise SpecificationError(
                    f"fault_budget {self.name!r}: {spec.fault_budget} + "
                    f"{self.delta} is negative"
                )
            files.append(replace(spec, fault_budget=budget))
        if not found:
            raise SpecificationError(
                f"fault_budget {self.name!r}: not in scenario "
                f"{scenario.name!r}'s catalogue"
            )
        return replace(scenario, files=tuple(files))

    def describe(self) -> str:
        """One-line human summary."""
        return f"fault budget {self.name} {self.delta:+d}"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :func:`mutation_from_dict` round-trips it."""
        return {"kind": self.kind, "name": self.name, "delta": self.delta}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultBudgetBump":
        """Build from :meth:`to_dict` output / parsed JSON."""
        _require_keys(
            payload, {"kind", "name", "delta"}, "fault_budget mutation"
        )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecificationError(
                f"fault_budget mutation needs a non-empty string "
                f"'name', got {name!r}"
            )
        delta = payload.get("delta")
        if not isinstance(delta, int) or isinstance(delta, bool):
            raise SpecificationError(
                f"fault_budget mutation needs an integer 'delta', got "
                f"{delta!r}"
            )
        return cls(name, delta)


@dataclass(frozen=True)
class TemporalEdit:
    """Edit one temporal item's update period and/or freshness bound.

    ``update_period`` is a *runtime* knob - the design fingerprint is
    unchanged, so the re-solve is a guaranteed solve-cache hit.
    ``max_age_ms`` tightens or relaxes the item's temporal constraint -
    design-relevant, so it re-solves (warm-started when the induced
    instance was seen before).
    """

    name: str
    update_period: int | None = None
    max_age_ms: int | None = None
    kind = "temporal_edit"

    def apply(self, scenario: Scenario) -> Scenario:
        """The successor scenario with the edited item."""
        if scenario.temporal is None:
            raise SpecificationError(
                f"temporal_edit {self.name!r}: scenario "
                f"{scenario.name!r} has no temporal spec"
            )
        if self.update_period is None and self.max_age_ms is None:
            raise SpecificationError(
                f"temporal_edit {self.name!r}: give 'update_period', "
                f"'max_age_ms', or both"
            )
        temporal = scenario.temporal
        if self.name not in {item.name for item in temporal.items}:
            raise SpecificationError(
                f"temporal_edit {self.name!r}: not a temporal item of "
                f"scenario {scenario.name!r}"
            )
        if self.update_period is not None:
            periods = dict(temporal.update_periods)
            periods[self.name] = self.update_period
            temporal = replace(temporal, update_periods=periods)
        if self.max_age_ms is not None:
            items = []
            for item in temporal.items:
                if item.name != self.name:
                    items.append(item)
                    continue
                if item.max_age_ms is None:
                    raise SpecificationError(
                        f"temporal_edit {self.name!r}: item derives its "
                        f"bound from velocity/accuracy; edit those "
                        f"fields via remove + add instead"
                    )
                items.append(replace(item, max_age_ms=self.max_age_ms))
            temporal = replace(temporal, items=tuple(items))
        return _replace_temporal(scenario, temporal)

    def describe(self) -> str:
        """One-line human summary."""
        parts = []
        if self.update_period is not None:
            parts.append(f"period={self.update_period}")
        if self.max_age_ms is not None:
            parts.append(f"max_age={self.max_age_ms}ms")
        return f"temporal edit {self.name} ({', '.join(parts)})"

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; :func:`mutation_from_dict` round-trips it."""
        payload: dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.update_period is not None:
            payload["update_period"] = self.update_period
        if self.max_age_ms is not None:
            payload["max_age_ms"] = self.max_age_ms
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TemporalEdit":
        """Build from :meth:`to_dict` output / parsed JSON."""
        _require_keys(
            payload,
            {"kind", "name", "update_period", "max_age_ms"},
            "temporal_edit mutation",
        )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecificationError(
                f"temporal_edit mutation needs a non-empty string "
                f"'name', got {name!r}"
            )
        return cls(
            name, payload.get("update_period"), payload.get("max_age_ms")
        )


#: Union of every mutation kind the server accepts.
Mutation = ModeChange | AddFile | RemoveFile | FaultBudgetBump | TemporalEdit

#: JSON ``kind`` tag -> mutation class, the scripted-timeline dispatch.
MUTATION_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (ModeChange, AddFile, RemoveFile, FaultBudgetBump,
                TemporalEdit)
}


def mutation_from_dict(payload: Mapping[str, Any]) -> Mutation:
    """Build a mutation from its JSON payload (dispatch on ``kind``)."""
    if not isinstance(payload, Mapping):
        raise SpecificationError(
            f"mutation payload must be a mapping, got "
            f"{type(payload).__name__}"
        )
    kind = payload.get("kind")
    cls = MUTATION_KINDS.get(kind)
    if cls is None:
        raise SpecificationError(
            f"unknown mutation kind {kind!r} "
            f"(known: {sorted(MUTATION_KINDS)})"
        )
    return cls.from_dict(payload)
