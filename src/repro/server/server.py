"""The online broadcast server: live re-scheduling over one channel.

:class:`BroadcastServer` owns the airing program for a
:class:`~repro.api.Scenario` and keeps it mutable *while on air* - the
paper's AWACS station switching from surveillance to combat mode
without going dark.  The lifecycle of one accepted mutation:

1. the mutation's delta produces the successor scenario (every
   constructor invariant re-validates eagerly);
2. the successor re-solves through the shared
   :class:`~repro.sweep.cache.SolveCache` - an unchanged design
   fingerprint is a warm-start cache hit, and the hit/miss provenance
   goes into the as-run log;
3. :func:`~repro.server.splice.find_splice_slot` scans outgoing
   data-cycle boundaries for the earliest one the splice-safety
   predicate blesses, and the new program is committed there (never
   before the next slot - the past is immutable);
4. every in-flight client retrieval whose provisional completion lies
   at or beyond the boundary is re-walked over the spliced timeline and
   its completion event rescheduled; a retrieval that met its contract
   and no longer does is a *splice violation* (zero, by the predicate,
   on fault-free channels);
5. the as-run log records the mutation, the splice point with a
   planned-vs-aired divergence witness, and any violations.

Traffic populations run *through* the server - the same arrival
processes, RNG substreams, and single-receiver discipline as the
offline simulator, driven by one :class:`~repro.traffic.kernel.
EventKernel` - so client sessions experience splices live, and metrics
accumulate into per-epoch accumulators (split exactly at splice slots).

Drive it programmatically (``apply()`` / ``advance()`` / ``close()``)
or from a scripted mutation timeline (:mod:`repro.server.script`, the
``repro server`` CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import accumulate
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import SpecificationError
from repro.obs import telemetry as obs
from repro.rtdb.transactions import ReadTransaction
from repro.bdisk.builder import ProgramDesign
from repro.bdisk.multichannel import MultiChannelDesign
from repro.api.engine import BroadcastEngine
from repro.api.scenario import Scenario
from repro.sweep.cache import SolveCache
from repro.traffic.arrivals import (
    arrival_rng,
    arrival_slot,
    client_rng,
    popularity_weights,
)
from repro.traffic.kernel import EventKernel
from repro.traffic.metrics import TrafficMetrics
from repro.traffic.simulate import _temporal_mix, _validate_temporal
from repro.sim.faults import FaultModel
from repro.sim.workload import sample_accesses
from repro.server.airing import AirSchedule, Segment, SplicedRetrieval
from repro.server.asrun import ASRUN_WINDOW, AsRunLog, planned_vs_aired
from repro.server.mutations import Mutation
from repro.server.sessions import LiveSession, LiveTransactionSession
from repro.server.splice import SpliceRequirement, find_splice_slot


def _mode_of(scenario: Scenario) -> str | None:
    """The scenario's active operation mode, however it is expressed."""
    if scenario.temporal is not None:
        return scenario.temporal.mode
    return scenario.mode


def _metrics_dict(metrics: TrafficMetrics) -> dict[str, Any]:
    """The headline counters of one epoch's accumulator, JSON-ably."""
    payload: dict[str, Any] = {
        "requests": metrics.requests,
        "completions": metrics.completions,
        "aborts": metrics.aborts,
        "deadline_misses": metrics.deadline_misses,
        "mean_latency": metrics.mean_latency,
        "worst_latency": metrics.worst,
    }
    if metrics.item_reads or metrics.torn_discards:
        payload.update(
            item_reads=metrics.item_reads,
            stale_reads=metrics.stale_reads,
            torn_discards=metrics.torn_discards,
            mean_age=metrics.mean_age,
        )
    return payload


class _Epoch:
    """One scenario's tenure: its design, derived tables, and metrics.

    A multi-channel epoch airs one :class:`Segment` per channel (all
    committed by the same mutation, each at its own channel's earliest
    safe boundary); ``segment`` stays the channel-0 view so the
    single-channel bookkeeping reads unchanged.
    """

    __slots__ = (
        "index",
        "scenario",
        "design",
        "segments",
        "cache_hit",
        "catalogue",
        "file_sizes",
        "deadlines",
        "cum_weights",
        "mix",
        "mix_cum_weights",
        "max_age",
        "metrics",
    )

    def __init__(
        self,
        index: int,
        scenario: Scenario,
        design: ProgramDesign | MultiChannelDesign,
        segments: Sequence[Segment],
        cache_hit: bool,
    ) -> None:
        self.index = index
        self.scenario = scenario
        self.design = design
        self.segments = tuple(segments)
        self.cache_hit = cache_hit
        self.catalogue = tuple(spec.name for spec in scenario.files)
        self.file_sizes = {
            spec.name: spec.blocks for spec in scenario.files
        }
        engine = BroadcastEngine(scenario, design=design)
        self.deadlines = engine._deadlines(design)
        self.cum_weights: list[float] | None = None
        self.mix: list[ReadTransaction] | None = None
        self.mix_cum_weights: list[float] | None = None
        self.max_age: dict[str, int] | None = None
        spec = scenario.traffic
        seed = 0 if spec is None else spec.seed
        self.metrics = TrafficMetrics(seed=seed)
        if scenario.temporal is not None:
            self.max_age = scenario.temporal.max_age_slots()
        if spec is None:
            return
        weights = popularity_weights(
            spec.popularity,
            len(self.catalogue),
            zipf_skew=spec.zipf_skew,
            hot_fraction=spec.hot_fraction,
            hot_weight=spec.hot_weight,
        )
        if scenario.temporal is not None:
            _validate_temporal(scenario.temporal, spec, self.catalogue)
            mix, mix_weights = _temporal_mix(
                scenario.temporal, self.catalogue, self.deadlines, weights
            )
            self.mix = mix
            self.mix_cum_weights = list(accumulate(mix_weights))
        else:
            self.cum_weights = list(accumulate(weights))

    @property
    def segment(self) -> Segment:
        """The channel-0 segment (the only one, single-channel)."""
        return self.segments[0]

    @property
    def multichannel(self) -> bool:
        return isinstance(self.design, MultiChannelDesign)

    def summary(self) -> dict[str, Any]:
        """The epoch's as-run/result record."""
        multi = self.multichannel
        head = self.design.designs[0] if multi else self.design
        payload = {
            "epoch": self.index,
            "start_slot": self.segment.start,
            "scenario": self.scenario.name,
            "mode": _mode_of(self.scenario),
            "fingerprint": self.segment.fingerprint,
            "label": self.segment.label,
            "cache_hit": self.cache_hit,
            "method": head.report.method,
            "data_cycle": (
                self.design.channel_set.programs[0].data_cycle_length
                if multi
                else self.design.program.data_cycle_length
            ),
            "metrics": _metrics_dict(self.metrics),
        }
        if multi:
            payload["channels"] = self.design.count
            payload["start_slots"] = [s.start for s in self.segments]
        return payload


@dataclass(frozen=True)
class ServerResult:
    """The structured outcome of one online server run."""

    scenario: str
    final_slot: int
    events_processed: int
    epochs: tuple[dict[str, Any], ...]
    mutations: tuple[dict[str, Any], ...]
    splice_slots: tuple[int, ...]
    violations: tuple[dict[str, Any], ...]
    resplices: int
    cache_stats: dict[str, int]
    asrun_path: str | None
    metrics: TrafficMetrics | None = field(compare=False, default=None)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able summary (the CLI's ``--json`` payload)."""
        payload: dict[str, Any] = {
            "scenario": self.scenario,
            "final_slot": self.final_slot,
            "events_processed": self.events_processed,
            "epochs": list(self.epochs),
            "mutations": list(self.mutations),
            "splice_slots": list(self.splice_slots),
            "violations": list(self.violations),
            "resplices": self.resplices,
            "cache": dict(self.cache_stats),
            "asrun": self.asrun_path,
        }
        if self.metrics is not None:
            payload["traffic"] = _metrics_dict(self.metrics)
        return payload

    def report(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"online server run: scenario {self.scenario}",
            f"  slots aired: {self.final_slot + 1}, events "
            f"{self.events_processed}",
            f"  mutations applied: {len(self.mutations)}, splices at "
            f"{list(self.splice_slots)}",
            f"  in-flight retrievals re-walked: {self.resplices}, "
            f"splice violations: {len(self.violations)}",
            f"  solve cache: {self.cache_stats['hits']} hits / "
            f"{self.cache_stats['misses']} misses / "
            f"{self.cache_stats['solves']} solves",
        ]
        for epoch in self.epochs:
            metrics = epoch["metrics"]
            hit = "cache hit" if epoch["cache_hit"] else "solved"
            lines.append(
                f"  epoch {epoch['epoch']} from slot "
                f"{epoch['start_slot']} ({epoch['label'] or 'sign-on'}, "
                f"{hit}): {metrics['requests']} requests, "
                f"{metrics['aborts']} aborts, "
                f"{metrics['deadline_misses']} deadline misses"
            )
        if self.asrun_path:
            lines.append(f"  as-run log: {self.asrun_path}")
        return "\n".join(lines)


class BroadcastServer:
    """A long-running broadcast station accepting runtime mutations.

    Parameters
    ----------
    scenario:
        The initial airing scenario.  A traffic population, when
        present, runs live through the server (no client caches - a
        cache would answer across a splice from a retired program).
    cache:
        The shared :class:`~repro.sweep.cache.SolveCache`; defaults to
        a fresh in-memory cache.  Passing a warm one makes mutation
        re-solves warm starts across server runs.
    log_path:
        Where to stream the JSONL as-run log (``None`` = in memory
        only; the records are always kept on the instance).
    window:
        Slots of planned-vs-aired context logged around each splice.
    max_boundaries:
        Data-cycle boundaries scanned for a safe splice before the
        mutation is refused.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        cache: SolveCache | None = None,
        log_path: str | Path | None = None,
        window: int = ASRUN_WINDOW,
        max_boundaries: int = 64,
    ) -> None:
        if scenario.traffic is not None and scenario.traffic.cache:
            raise SpecificationError(
                f"scenario {scenario.name!r}: client caches are not "
                f"supported by the online server (a cached copy would "
                f"answer from a retired program across a splice)"
            )
        if scenario.channels is not None and scenario.traffic is not None:
            raise SpecificationError(
                f"scenario {scenario.name!r}: live traffic populations "
                f"are not supported over a channel set yet - run the "
                f"population offline (repro.traffic) or drop the "
                f"channels block; the online server airs and splices "
                f"every channel but drives sessions on one"
            )
        self._cache = cache if cache is not None else SolveCache()
        self._kernel = EventKernel()
        self._log = AsRunLog(log_path)
        self._window = window
        self._max_boundaries = max_boundaries
        self._fault_model: FaultModel = scenario.faults.build()
        self._inflight: dict[Any, None] = {}
        self._mutations: list[dict[str, Any]] = []
        self._violations: list[dict[str, Any]] = []
        self._resplices = 0
        self._closed = False

        design, cache_hit = self._cache.design_for(scenario)
        fingerprint = scenario.design_fingerprint()
        multi = isinstance(design, MultiChannelDesign)
        programs = (
            design.channel_set.programs if multi else (design.program,)
        )
        segments = tuple(
            Segment(
                start=0,
                program=program,
                fingerprint=fingerprint,
                update_periods=(
                    dict(scenario.temporal.update_periods)
                    if scenario.temporal is not None
                    else None
                ),
                dispersal={
                    spec.name: spec.blocks for spec in scenario.files
                },
                label="sign-on",
            )
            for program in programs
        )
        self._epochs: list[_Epoch] = [
            _Epoch(0, scenario, design, segments, cache_hit)
        ]
        self._schedules: list[AirSchedule] = [
            AirSchedule([segment]) for segment in segments
        ]
        self._schedule = self._schedules[0]
        on_air: dict[str, Any] = dict(
            scenario=scenario.name,
            mode=_mode_of(scenario),
            fingerprint=fingerprint,
            cache_hit=cache_hit,
            method=(
                design.designs[0] if multi else design
            ).report.method,
            data_cycle=programs[0].data_cycle_length,
        )
        if multi:
            on_air["channels"] = design.count
        self._log.record("on-air", 0, **on_air)
        self._spawn_traffic(scenario)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def kernel(self) -> EventKernel:
        """The event kernel driving sessions and scripted mutations."""
        return self._kernel

    @property
    def schedule(self) -> AirSchedule:
        """The committed airing timeline (channel 0's, multi-channel)."""
        return self._schedule

    @property
    def schedules(self) -> tuple[AirSchedule, ...]:
        """Every channel's committed airing timeline (length 1 single)."""
        return tuple(self._schedules)

    @property
    def cache(self) -> SolveCache:
        """The solve cache mutations re-solve through."""
        return self._cache

    @property
    def log(self) -> AsRunLog:
        """The as-run log."""
        return self._log

    @property
    def now(self) -> int:
        """The kernel's current slot."""
        return self._kernel.now

    @property
    def scenario(self) -> Scenario:
        """The scenario whose program is committed last."""
        return self._epochs[-1].scenario

    @property
    def violations(self) -> tuple[dict[str, Any], ...]:
        """Splice violations observed so far."""
        return tuple(self._violations)

    def _epoch_at(self, slot: int) -> _Epoch:
        return self._epochs[self._schedule.epoch_of(slot)]

    # ------------------------------------------------------------------
    # Session services (the live retrieval/recording surface)
    # ------------------------------------------------------------------

    def draw_file(self, rng: Any, slot: int) -> str:
        """Draw a request's file from the epoch-at-``slot`` catalogue."""
        epoch = self._epoch_at(slot)
        assert epoch.cum_weights is not None
        return epoch.catalogue[
            sample_accesses(rng, None, 1, cum_weights=epoch.cum_weights)[0]
        ]

    def draw_transaction(self, rng: Any, slot: int) -> ReadTransaction:
        """Draw a transaction from the epoch-at-``slot`` weighted mix."""
        epoch = self._epoch_at(slot)
        assert epoch.mix is not None and epoch.mix_cum_weights is not None
        return epoch.mix[
            sample_accesses(
                rng, None, 1, cum_weights=epoch.mix_cum_weights
            )[0]
        ]

    def live_retrieve(self, file: str, start: int) -> SplicedRetrieval:
        """Walk one distinct-block retrieval over the live timeline."""
        epoch = self._epoch_at(start)
        spec = epoch.scenario.traffic
        return self._schedule.retrieve(
            file,
            epoch.file_sizes[file],
            start=start,
            faults=self._fault_model,
            max_slots=None if spec is None else spec.max_slots,
        )

    def live_retrieve_versioned(
        self, file: str, start: int
    ) -> SplicedRetrieval:
        """Walk one version-consistent retrieval over the live timeline."""
        epoch = self._epoch_at(start)
        spec = epoch.scenario.traffic
        return self._schedule.retrieve_versioned(
            file,
            epoch.file_sizes[file],
            start=start,
            faults=self._fault_model,
            max_slots=None if spec is None else spec.max_slots,
        )

    def deadline_at(self, slot: int, file: str) -> int:
        """The file's latency budget under the epoch active at ``slot``."""
        return self._epoch_at(slot).deadlines[file]

    def max_age_at(self, slot: int, item: str) -> int:
        """The item's staleness budget under the epoch at ``slot``."""
        epoch = self._epoch_at(slot)
        assert epoch.max_age is not None
        return epoch.max_age[item]

    def register_inflight(self, session: Any) -> None:
        """Track a session whose completion event is provisional."""
        self._inflight[session] = None

    def unregister_inflight(self, session: Any) -> None:
        """Drop a session whose retrieval completed."""
        self._inflight.pop(session, None)

    def record_read(
        self, file: str, issued: int, outcome: SplicedRetrieval
    ) -> None:
        """Record a completed plain read into its completion epoch."""
        deadline = self.deadline_at(issued, file)
        epoch = self._epoch_at(outcome.finish_slot)
        epoch.metrics.record(file, outcome.latency, deadline)

    def record_versioned_read(
        self, item: str, issued: int, outcome: SplicedRetrieval
    ) -> None:
        """Record a versioned item read into its completion epoch."""
        budget = self.max_age_at(issued, item)
        age = outcome.age_at_completion
        epoch = self._epoch_at(outcome.finish_slot)
        epoch.metrics.record_versioned_read(
            age, age is not None and age <= budget, outcome.torn_discards
        )

    def record_transaction(
        self,
        txn: ReadTransaction,
        issued: int,
        response: int | None,
        finish: int,
    ) -> None:
        """Record a finished transaction into its completion epoch."""
        epoch = self._epoch_at(finish)
        epoch.metrics.record(txn.name, response, txn.deadline_slots)

    # ------------------------------------------------------------------
    # The mutation path
    # ------------------------------------------------------------------

    def _spawn_traffic(self, scenario: Scenario) -> None:
        spec = scenario.traffic
        if spec is None:
            return
        temporal = scenario.temporal is not None
        for index in range(spec.clients):
            rng = client_rng(spec.seed, index)
            arrival = arrival_slot(
                spec.arrival,
                arrival_rng(spec.seed, index),
                index,
                spec.clients,
                spec.duration,
                bursts=spec.bursts,
                burst_width=spec.burst_width,
            )
            session: LiveSession | LiveTransactionSession
            if temporal:
                session = LiveTransactionSession(
                    index,
                    rng,
                    self,
                    requests=spec.requests_per_client,
                    think_mean=spec.think_time,
                )
            else:
                session = LiveSession(
                    index,
                    rng,
                    self,
                    requests=spec.requests_per_client,
                    think_mean=spec.think_time,
                )
            session.begin(self._kernel, arrival)

    def _requirements(
        self, outgoing: _Epoch, carried: Sequence[str]
    ) -> list[SpliceRequirement]:
        """Splice-safety requirements for the files in ``carried``.

        ``carried`` is the incoming program's file set (one channel's,
        multi-channel); the outgoing catalogue filter keeps only files
        the outgoing epoch also promised, in catalogue order.
        """
        versioned = outgoing.scenario.temporal is not None
        carried_set = set(carried)
        return [
            SpliceRequirement(
                file=file,
                m_needed=outgoing.file_sizes[file],
                budget_slots=outgoing.deadlines[file],
                versioned=versioned,
            )
            for file in outgoing.catalogue
            if file in carried_set
        ]

    def apply(self, mutation: Mutation) -> dict[str, Any]:
        """Accept one runtime mutation; return its provenance record.

        Re-solves, finds the earliest safe data-cycle boundary strictly
        after ``now``, commits the splice, re-walks affected in-flight
        retrievals, and logs everything.  Raises
        :class:`~repro.errors.SpecificationError` for a malformed delta
        and :class:`~repro.errors.SimulationError` when no safe
        boundary exists - in either case nothing was committed.
        """
        if self._closed:
            raise SpecificationError(
                "server is closed; no further mutations"
            )
        now = self._kernel.now
        outgoing = self._epochs[-1]
        scenario = mutation.apply(outgoing.scenario)
        before_channels = outgoing.scenario.channels
        after_channels = scenario.channels
        if (before_channels is None) != (after_channels is None) or (
            before_channels is not None
            and after_channels.count != before_channels.count
        ):
            raise SpecificationError(
                f"mutation {mutation.describe()!r}: the channel count is "
                f"fixed at sign-on "
                f"({1 if before_channels is None else before_channels.count}"
                f" channel(s)); re-plan the channel topology offline and "
                f"sign on again"
            )
        multi = after_channels is not None
        mutation_span = obs.span(
            "server.mutation", kind=type(mutation).__name__, at_slot=now
        )
        mutation_span.__enter__()
        try:
            # Snapshot/diff brackets make the per-mutation cache
            # accounting exact even though the SolveCache counters are
            # lifetime-monotonic across epochs.
            cache_before = self._cache.snapshot()
            with obs.span("server.mutation.resolve"):
                design, cache_hit = self._cache.design_for(scenario)
            cache_delta = self._cache.diff(cache_before)
            fingerprint = scenario.design_fingerprint()
            if multi:
                return self._commit_multichannel(
                    mutation, now, outgoing, scenario, design,
                    cache_hit, cache_delta, fingerprint,
                )
            with obs.span("server.mutation.splice_search"):
                candidate, splice_slot, attempts = find_splice_slot(
                    self._schedule,
                    design.program,
                    not_before=now + 1,
                    requirements=self._requirements(
                        outgoing, design.program.files
                    ),
                    fingerprint=fingerprint,
                    update_periods=(
                        dict(scenario.temporal.update_periods)
                        if scenario.temporal is not None
                        else None
                    ),
                    dispersal={
                        spec.name: spec.blocks for spec in scenario.files
                    },
                    label=mutation.describe(),
                    max_boundaries=self._max_boundaries,
                )

            commit_span = obs.span("server.mutation.splice_commit")
            commit_span.__enter__()
            # Commit: timeline first, then the epoch tables sessions read.
            self._schedule = candidate
            self._schedules = [candidate]
            epoch = _Epoch(
                len(self._epochs), scenario, design, (candidate.on_air,),
                cache_hit,
            )
            self._epochs.append(epoch)

            self._log.record(
                "mutation",
                now,
                mutation=mutation.to_dict(),
                scenario=scenario.name,
                mode=_mode_of(scenario),
                fingerprint=fingerprint,
                cache_hit=cache_hit,
                cache_delta=cache_delta,
                method=design.report.method,
            )
            self._log.record(
                "splice",
                splice_slot,
                outgoing_fingerprint=outgoing.segment.fingerprint,
                incoming_fingerprint=fingerprint,
                phase_offset=candidate.on_air.phase_offset,
                rejected_boundaries=[
                    {
                        "slot": slot,
                        "violations": [v.to_dict() for v in violations],
                    }
                    for slot, violations in attempts
                ],
                checked_files=sorted(
                    file
                    for file in outgoing.catalogue
                    if file in design.program.files
                ),
                window=planned_vs_aired(
                    candidate, splice_slot, self._window
                ),
            )
            self._log.record(
                "on-air",
                splice_slot,
                scenario=scenario.name,
                mode=_mode_of(scenario),
                fingerprint=fingerprint,
                cache_hit=cache_hit,
                method=design.report.method,
                data_cycle=design.program.data_cycle_length,
            )

            respliced = 0
            violations: list[dict[str, Any]] = []
            for session in list(self._inflight):
                if session.pending_finish < splice_slot:
                    continue  # completes strictly before the boundary
                moved = session.resplice(self._kernel)
                respliced += 1
                if moved.violated:
                    entry = {
                        "splice_slot": splice_slot,
                        "file": moved.file,
                        "start": moved.start,
                        "budget_slots": moved.budget_slots,
                        "old_latency": moved.old_latency,
                        "new_latency": moved.new_latency,
                    }
                    violations.append(entry)
                    self._violations.append(entry)
                    self._log.record("violation", splice_slot, **entry)
            self._resplices += respliced
            commit_span.__exit__(None, None, None)

            obs.inc("server.mutations")
            obs.inc("server.resplices", respliced)
            obs.inc("server.splice_violations", len(violations))
            obs.inc("server.rejected_boundaries", len(attempts))

            record = {
                "at_slot": now,
                "mutation": mutation.to_dict(),
                "splice_slot": splice_slot,
                "phase_offset": candidate.on_air.phase_offset,
                "fingerprint": fingerprint,
                "cache_hit": cache_hit,
                "cache_delta": cache_delta,
                "method": design.report.method,
                "rejected_boundaries": [slot for slot, _ in attempts],
                "respliced": respliced,
                "violations": violations,
            }
            self._mutations.append(record)
            return record
        finally:
            mutation_span.__exit__(None, None, None)

    def _commit_multichannel(
        self,
        mutation: Mutation,
        now: int,
        outgoing: _Epoch,
        scenario: Scenario,
        design: MultiChannelDesign,
        cache_hit: bool,
        cache_delta: dict[str, int],
        fingerprint: str,
    ) -> dict[str, Any]:
        """The multi-channel leg of :meth:`apply`.

        Every channel's timeline gets its own splice search (its
        earliest safe data-cycle boundary - the channels' cycles are
        not aligned, so the slots differ); nothing commits until every
        channel has found one, so a single infeasible channel aborts
        the whole mutation with all timelines untouched.  There are no
        live sessions on a multi-channel server (populations are
        rejected at sign-on), so the re-walk leg is empty by
        construction.
        """
        programs = design.channel_set.programs
        update_periods = (
            dict(scenario.temporal.update_periods)
            if scenario.temporal is not None
            else None
        )
        dispersal = {spec.name: spec.blocks for spec in scenario.files}
        label = mutation.describe()
        method = design.designs[0].report.method
        planned = []
        for channel, program in enumerate(programs):
            # A requirement is only checkable where both the outgoing
            # and the incoming channel carry the file; a file moving
            # between channels is a (clean) drop-and-reappear, not a
            # splice, exactly like a file leaving the catalogue.
            carried = [
                file
                for file in program.files
                if file in outgoing.segments[channel].program.files
            ]
            requirements = self._requirements(outgoing, carried)
            with obs.span(
                "server.mutation.splice_search", channel=channel
            ):
                candidate, splice_slot, attempts = find_splice_slot(
                    self._schedules[channel],
                    program,
                    not_before=now + 1,
                    requirements=requirements,
                    fingerprint=fingerprint,
                    update_periods=update_periods,
                    dispersal=dispersal,
                    label=label,
                    max_boundaries=self._max_boundaries,
                )
            planned.append(
                (candidate, splice_slot, attempts, requirements)
            )

        with obs.span(
            "server.mutation.splice_commit", channels=design.count
        ):
            self._schedules = [plan[0] for plan in planned]
            self._schedule = self._schedules[0]
            epoch = _Epoch(
                len(self._epochs),
                scenario,
                design,
                tuple(plan[0].on_air for plan in planned),
                cache_hit,
            )
            self._epochs.append(epoch)

        self._log.record(
            "mutation",
            now,
            mutation=mutation.to_dict(),
            scenario=scenario.name,
            mode=_mode_of(scenario),
            fingerprint=fingerprint,
            cache_hit=cache_hit,
            cache_delta=cache_delta,
            method=method,
            channels=design.count,
        )
        rejected_total = 0
        for channel, (candidate, splice_slot, attempts, requirements) in (
            enumerate(planned)
        ):
            rejected_total += len(attempts)
            self._log.record(
                "splice",
                splice_slot,
                channel=channel,
                outgoing_fingerprint=(
                    outgoing.segments[channel].fingerprint
                ),
                incoming_fingerprint=fingerprint,
                phase_offset=candidate.on_air.phase_offset,
                rejected_boundaries=[
                    {
                        "slot": slot,
                        "violations": [v.to_dict() for v in violations],
                    }
                    for slot, violations in attempts
                ],
                checked_files=sorted(r.file for r in requirements),
                window=planned_vs_aired(
                    candidate, splice_slot, self._window
                ),
            )
            self._log.record(
                "on-air",
                splice_slot,
                channel=channel,
                scenario=scenario.name,
                mode=_mode_of(scenario),
                fingerprint=fingerprint,
                cache_hit=cache_hit,
                method=method,
                data_cycle=programs[channel].data_cycle_length,
            )
            obs.inc("server.channel.splices", channel=channel)

        obs.inc("server.mutations")
        obs.inc("server.resplices", 0)
        obs.inc("server.splice_violations", 0)
        obs.inc("server.rejected_boundaries", rejected_total)

        record = {
            "at_slot": now,
            "mutation": mutation.to_dict(),
            "splice_slot": planned[0][1],
            "channel_splice_slots": [plan[1] for plan in planned],
            "phase_offset": planned[0][0].on_air.phase_offset,
            "fingerprint": fingerprint,
            "cache_hit": cache_hit,
            "cache_delta": cache_delta,
            "method": method,
            "rejected_boundaries": [
                [slot for slot, _ in plan[2]] for plan in planned
            ],
            "respliced": 0,
            "violations": [],
        }
        self._mutations.append(record)
        return record

    def schedule_mutation(self, at_slot: int, mutation: Mutation) -> int:
        """Apply ``mutation`` when the kernel reaches ``at_slot``.

        Returns the kernel event id (cancellable until it fires).
        """
        return self._kernel.schedule(
            at_slot, lambda _kernel: self.apply(mutation)
        )

    def advance(self, *, until: int | None = None) -> int:
        """Drive the kernel (sessions and scheduled mutations).

        ``until`` bounds the run as in
        :meth:`~repro.traffic.kernel.EventKernel.run`; ``None`` drains
        every pending event.  Returns how many events ran.
        """
        return self._kernel.run(until=until)

    def close(self) -> ServerResult:
        """Sign off: final log record, close the log, summarize."""
        if self._closed:
            raise SpecificationError("server is already closed")
        self._closed = True
        metrics: TrafficMetrics | None = None
        if self._epochs[0].scenario.traffic is not None:
            metrics = TrafficMetrics.merged(
                [epoch.metrics for epoch in self._epochs],
                seed=self._epochs[0].scenario.traffic.seed,
            )
        splice_slots = tuple(
            sorted(
                {
                    slot
                    for schedule in self._schedules
                    for slot in schedule.splice_slots
                }
            )
        )
        self._log.record(
            "sign-off",
            self._kernel.now,
            epochs=len(self._epochs),
            mutations=len(self._mutations),
            splices=list(splice_slots),
            violations=len(self._violations),
            resplices=self._resplices,
            cache=self._cache.stats(),
        )
        self._log.close()
        return ServerResult(
            scenario=self._epochs[0].scenario.name,
            final_slot=self._kernel.now,
            events_processed=self._kernel.processed,
            epochs=tuple(epoch.summary() for epoch in self._epochs),
            mutations=tuple(self._mutations),
            splice_slots=splice_slots,
            violations=tuple(self._violations),
            resplices=self._resplices,
            cache_stats=self._cache.stats(),
            asrun_path=(
                None if self._log.path is None else str(self._log.path)
            ),
            metrics=metrics,
        )

    def __repr__(self) -> str:
        return (
            f"BroadcastServer(scenario={self._epochs[-1].scenario.name!r}, "
            f"now={self._kernel.now}, epochs={len(self._epochs)}, "
            f"inflight={len(self._inflight)})"
        )
