"""Scripted mutation timelines: JSON in, a full server run out.

A timeline is a JSON list of ``{"at_slot": N, "mutation": {...}}``
entries - the ``repro server scenario.json --script mutations.json``
format.  :class:`MutationScript` parses and validates it eagerly
(unknown mutation kinds, malformed payloads, and negative slots fail
before anything airs); :func:`run_script` stands a
:class:`~repro.server.server.BroadcastServer` up, schedules every entry
as a kernel event, drains the run, and returns the
:class:`~repro.server.server.ServerResult`.

Determinism note: entries are scheduled *before* the kernel runs, so a
mutation at slot ``t`` carries an earlier sequence number than any
session event at ``t`` and is applied first - the splice decision for
slot ``t`` never depends on which same-slot client event the heap
happened to pop first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import SpecificationError
from repro.api.scenario import Scenario
from repro.sweep.cache import SolveCache
from repro.server.asrun import ASRUN_WINDOW
from repro.server.mutations import Mutation, mutation_from_dict
from repro.server.server import BroadcastServer, ServerResult


@dataclass(frozen=True)
class ScriptEntry:
    """One timeline entry: apply ``mutation`` at slot ``at_slot``."""

    at_slot: int
    mutation: Mutation

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict; the script file's entry shape."""
        return {"at_slot": self.at_slot, "mutation": self.mutation.to_dict()}


@dataclass(frozen=True)
class MutationScript:
    """A validated, slot-ordered mutation timeline."""

    entries: tuple[ScriptEntry, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        for entry in self.entries:
            if not isinstance(entry, ScriptEntry):
                raise SpecificationError(
                    f"script entries must be ScriptEntry values, got "
                    f"{type(entry).__name__}"
                )
        slots = [entry.at_slot for entry in self.entries]
        if slots != sorted(slots):
            raise SpecificationError(
                f"script entries must be in slot order, got {slots}"
            )

    @classmethod
    def from_payload(cls, payload: Any) -> "MutationScript":
        """Build from a parsed JSON timeline (a list of entries)."""
        if isinstance(payload, Mapping):
            # Tolerate a {"mutations": [...]} envelope.
            extra = set(payload) - {"mutations"}
            if extra:
                raise SpecificationError(
                    f"mutation script: unknown keys {sorted(extra)} "
                    f"(expected a list or a 'mutations' envelope)"
                )
            payload = payload.get("mutations", [])
        if isinstance(payload, (str, bytes)) or not isinstance(
            payload, Iterable
        ):
            raise SpecificationError(
                f"mutation script must be a list of entries, got "
                f"{type(payload).__name__}"
            )
        entries = []
        for position, raw in enumerate(payload):
            if not isinstance(raw, Mapping):
                raise SpecificationError(
                    f"script entry {position}: must be an object, got "
                    f"{type(raw).__name__}"
                )
            unknown = set(raw) - {"at_slot", "mutation"}
            if unknown:
                raise SpecificationError(
                    f"script entry {position}: unknown keys "
                    f"{sorted(unknown)}"
                )
            at_slot = raw.get("at_slot")
            if (
                not isinstance(at_slot, int)
                or isinstance(at_slot, bool)
                or at_slot < 0
            ):
                raise SpecificationError(
                    f"script entry {position}: at_slot must be a "
                    f"slot >= 0, got {at_slot!r}"
                )
            mutation_payload = raw.get("mutation")
            if mutation_payload is None:
                raise SpecificationError(
                    f"script entry {position}: missing 'mutation'"
                )
            entries.append(
                ScriptEntry(at_slot, mutation_from_dict(mutation_payload))
            )
        return cls(tuple(entries))

    @classmethod
    def from_file(cls, path: str | Path) -> "MutationScript":
        """Parse a timeline JSON file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise SpecificationError(
                f"cannot read mutation script {path}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise SpecificationError(
                f"mutation script {path} is not valid JSON: {error}"
            ) from error
        return cls.from_payload(payload)

    def to_payload(self) -> list[dict[str, Any]]:
        """The JSON timeline this script round-trips to."""
        return [entry.to_dict() for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


def run_script(
    scenario: Scenario,
    script: MutationScript,
    *,
    cache: SolveCache | None = None,
    log_path: str | Path | None = None,
    until: int | None = None,
    window: int = ASRUN_WINDOW,
    max_boundaries: int = 64,
) -> ServerResult:
    """Run ``scenario`` through the online server under ``script``.

    Every timeline entry is scheduled as a kernel event, the kernel is
    drained (bounded by ``until`` when given), and the server signs
    off.  The returned :class:`~repro.server.server.ServerResult`
    carries per-epoch metrics, mutation provenance, splice slots, and
    the solve-cache counters.
    """
    server = BroadcastServer(
        scenario,
        cache=cache,
        log_path=log_path,
        window=window,
        max_boundaries=max_boundaries,
    )
    for entry in script.entries:
        server.schedule_mutation(entry.at_slot, entry.mutation)
    server.advance(until=until)
    return server.close()
