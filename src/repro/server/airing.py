"""The airing timeline: broadcast programs spliced end to end.

An online broadcast server never airs just one program - every accepted
mutation re-solves and splices a successor program in at a data-cycle
boundary.  :class:`AirSchedule` is the resulting timeline: an immutable
sequence of :class:`Segment` records (program + absolute start slot),
where slot ``t`` airs the content at ``segment.phase(t)`` of the
segment covering ``t``.  Splicing at an outgoing *data-cycle* boundary
means the outgoing program has just completed a whole number of content
cycles, so no client mid-retrieval loses blocks it was promised by
rotation.  The incoming program may come on air *phase-rotated*
(``Segment.phase_offset``): a cyclic program has no distinguished
origin - every design guarantee holds from every start phase - so the
splice search is free to rotate the incoming cycle until its early
occurrences dovetail with the outgoing tail.

The schedule is also the retrieval oracle for clients that live through
splices: :meth:`retrieve` (distinct-block IDA reads) and
:meth:`retrieve_versioned` (version-consistent temporal reads) walk the
per-segment occurrence indexes service-to-service, crossing segment
boundaries transparently.  Cross-segment rules:

* **fault decisions are keyed on absolute slots** - the channel is one
  physical medium; a splice does not reshuffle its loss process;
* **dispersal continuity**: held blocks survive a boundary whenever the
  file's IDA level ``m`` is unchanged - a fault-budget bump only grows
  the transmission set ``n_i = m + r``, and any ``m`` distinct blocks
  of the same dispersal still reconstruct; only a genuine re-dispersal
  (different ``m``) restarts collection, counted in ``torn_discards``;
* **version clocks are wall clocks**: a version boundary falls at every
  absolute multiple of the segment's update period, so staleness ages
  carry across the switch un-reset (temporal continuity);
* a file absent from some segment simply contributes no occurrences
  there - the walker waits through to a segment that airs it (or the
  horizon expires).

Everything is deterministic, so the server can *re-walk* an in-flight
retrieval after a splice lands and obtain its revised outcome - the
mechanism behind live completion-event rescheduling.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram, SlotContent
from repro.sim.client import default_horizon
from repro.sim.faults import FaultModel, NoFaults
from repro.rtdb.updates import MAX_DEFAULT_HORIZON, versioned_horizon


@dataclass(frozen=True)
class Segment:
    """One program's tenure on the air, from ``start`` (absolute slots).

    ``update_periods`` carries the segment's per-item version clocks
    (temporal scenarios only); ``dispersal`` the per-file IDA level
    ``m`` (NOT the rotation count ``n_i = m + r`` the program airs -
    blocks collected under different fault budgets of the *same*
    dispersal still reconstruct together); ``fingerprint`` and
    ``label`` are provenance for the as-run log - the design
    fingerprint ties an aired segment back to the solve-cache entry
    that produced it.
    """

    start: int
    program: BroadcastProgram
    fingerprint: str = ""
    update_periods: Mapping[str, int] | None = None
    dispersal: Mapping[str, int] | None = None
    phase_offset: int = 0
    label: str = ""

    def dispersal_of(self, file: str) -> int | None:
        """The file's IDA level ``m`` here, or ``None`` when unknown."""
        if self.dispersal is None:
            return None
        return self.dispersal.get(file)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SimulationError(
                f"segment start must be >= 0: {self.start}"
            )
        if not 0 <= self.phase_offset < self.program.data_cycle_length:
            raise SimulationError(
                f"phase offset must lie within the program's data "
                f"cycle [0, {self.program.data_cycle_length}): "
                f"{self.phase_offset}"
            )

    def phase(self, t: int) -> int:
        """The program phase airing at absolute slot ``t``."""
        return t - self.start + self.phase_offset

    def absolute(self, phase: int) -> int:
        """The absolute slot at which program ``phase`` airs."""
        return self.start - self.phase_offset + phase

    def period(self, file: str) -> int:
        """The file's update period in this segment (temporal only)."""
        if self.update_periods is None or file not in self.update_periods:
            raise SimulationError(
                f"segment at slot {self.start} has no update period "
                f"for {file!r}"
            )
        return self.update_periods[file]


@dataclass(frozen=True)
class SplicedRetrieval:
    """Outcome of a retrieval walked across an airing timeline.

    The :class:`~repro.sim.client.RetrievalResult` /
    :class:`~repro.rtdb.updates.VersionedRetrieval` essentials, plus
    ``segments_crossed`` - how many splice boundaries the walk spanned
    (0 = entirely within one program's tenure).
    """

    file: str
    completed: bool
    finish_slot: int
    latency: int | None
    segments_crossed: int
    age_at_completion: int | None = None
    torn_discards: int = 0


class AirSchedule:
    """An immutable timeline of broadcast programs spliced end to end."""

    __slots__ = ("_segments", "_starts")

    def __init__(self, segments: Sequence[Segment]) -> None:
        if not segments:
            raise SimulationError(
                "an air schedule needs at least one segment"
            )
        for earlier, later in zip(segments, segments[1:]):
            if later.start <= earlier.start:
                raise SimulationError(
                    f"segment starts must be strictly increasing: "
                    f"{earlier.start} then {later.start}"
                )
            cycle = earlier.program.data_cycle_length
            if (later.start - earlier.start) % cycle != 0:
                raise SimulationError(
                    f"splice at slot {later.start} is not on a "
                    f"data-cycle boundary of the outgoing program "
                    f"(starts {earlier.start}, cycle {cycle} slots)"
                )
        self._segments = tuple(segments)
        self._starts = tuple(segment.start for segment in segments)

    @property
    def segments(self) -> tuple[Segment, ...]:
        """The timeline's segments, in airing order."""
        return self._segments

    @property
    def on_air(self) -> Segment:
        """The newest segment (the program currently committed last)."""
        return self._segments[-1]

    @property
    def splice_slots(self) -> tuple[int, ...]:
        """Absolute slots at which a successor program took over."""
        return self._starts[1:]

    def epoch_of(self, t: int) -> int:
        """The index of the segment covering absolute slot ``t``."""
        if t < self._starts[0]:
            raise SimulationError(
                f"slot {t} precedes the airing timeline (first segment "
                f"starts at slot {self._starts[0]})"
            )
        return bisect_right(self._starts, t) - 1

    def segment_at(self, t: int) -> Segment:
        """The segment covering absolute slot ``t``."""
        return self._segments[self.epoch_of(t)]

    def content(self, t: int) -> SlotContent | None:
        """What actually airs at absolute slot ``t`` (None = idle)."""
        segment = self.segment_at(t)
        return segment.program.index.content(segment.phase(t))

    def spliced(self, segment: Segment) -> "AirSchedule":
        """A new timeline with ``segment`` appended at its start slot.

        Validates the splice invariant (strictly later, on an outgoing
        data-cycle boundary); the receiver is unchanged, so a rejected
        candidate costs nothing.
        """
        return AirSchedule(self._segments + (segment,))

    # ------------------------------------------------------------------
    # Retrieval across segments
    # ------------------------------------------------------------------

    def _occurrences(
        self, file: str, start: int, end: int
    ) -> Iterator[tuple[int, int, int]]:
        """Yield ``(abs_slot, block, epoch)`` services of ``file``.

        Walks ``[start, end)`` in absolute-slot order, jumping
        service-to-service along each segment's occurrence index and
        skipping segments that do not air the file.
        """
        first = self.epoch_of(start)
        for epoch in range(first, len(self._segments)):
            segment = self._segments[epoch]
            seg_end = (
                self._starts[epoch + 1]
                if epoch + 1 < len(self._segments)
                else end
            )
            hi = min(end, seg_end)
            if hi <= segment.start and epoch > first:
                break
            if file not in segment.program.files:
                continue
            lo = max(start, segment.start)
            for slot, block in segment.program.index.occurrences_from(
                file, segment.phase(lo)
            ):
                abs_slot = segment.absolute(slot)
                if abs_slot >= hi:
                    break
                yield abs_slot, block, epoch

    def _first_segment_with(self, file: str, start: int) -> Segment | None:
        for epoch in range(self.epoch_of(start), len(self._segments)):
            if file in self._segments[epoch].program.files:
                return self._segments[epoch]
        return None

    def _dispersal_basis(self, epoch: int, file: str) -> int:
        """The reconstruction-compatibility key for ``file`` in ``epoch``.

        The IDA level ``m`` when the segment declares it; the aired
        block count otherwise (a conservative stand-in - it also moves
        when only the fault budget ``r`` changed).
        """
        segment = self._segments[epoch]
        m = segment.dispersal_of(file)
        if m is not None:
            return m
        return segment.program.block_count(file)

    def retrieve(
        self,
        file: str,
        m_needed: int,
        *,
        start: int,
        faults: FaultModel | None = None,
        max_slots: int | None = None,
    ) -> SplicedRetrieval:
        """Collect ``m_needed`` distinct blocks of ``file`` from ``start``.

        The cross-segment analogue of :func:`repro.sim.client.retrieve`
        (IDA reads: any ``m`` distinct blocks suffice).  Held blocks
        survive a splice unless the file was re-dispersed at a
        different IDA level ``m``, in which case collection restarts
        and the discarded blocks are counted.  Raises
        :class:`~repro.errors.SimulationError` when no segment from
        ``start`` onward ever airs the file.
        """
        home = self._first_segment_with(file, start)
        if home is None:
            raise SimulationError(
                f"file {file!r} is not broadcast anywhere on the "
                f"timeline from slot {start}"
            )
        if max_slots is not None:
            horizon = max_slots
        else:
            horizon = default_horizon(home.program, m_needed)
        if horizon < 1:
            raise SimulationError(f"horizon must be >= 1: {horizon}")
        end = start + horizon
        fault_model = faults if faults is not None else NoFaults()

        held: set[int] = set()
        discards = 0
        prev_epoch: int | None = None
        prev_m: int | None = None
        first_epoch = self.epoch_of(start)
        for slot, block, epoch in self._occurrences(file, start, end):
            if fault_model.is_lost(slot):
                continue
            m_here = self._dispersal_basis(epoch, file)
            if prev_epoch is not None and epoch != prev_epoch:
                if m_here != prev_m and held:
                    discards += len(held)
                    held.clear()
            prev_epoch, prev_m = epoch, m_here
            held.add(block)
            if len(held) >= m_needed:
                return SplicedRetrieval(
                    file=file,
                    completed=True,
                    finish_slot=slot,
                    latency=slot - start + 1,
                    segments_crossed=self.epoch_of(slot) - first_epoch,
                    torn_discards=discards,
                )
        return SplicedRetrieval(
            file=file,
            completed=False,
            finish_slot=start + horizon - 1,
            latency=None,
            segments_crossed=(
                self.epoch_of(start + horizon - 1) - first_epoch
            ),
            torn_discards=discards,
        )

    def retrieve_versioned(
        self,
        file: str,
        m_needed: int,
        *,
        start: int,
        faults: FaultModel | None = None,
        max_slots: int | None = None,
    ) -> SplicedRetrieval:
        """Collect ``m_needed`` distinct blocks *of one version*.

        The cross-segment analogue of
        :func:`repro.rtdb.updates.retrieve_versioned`.  Version clocks
        are wall clocks: version boundaries fall at absolute multiples
        of the segment's update period, so a splice neither resets an
        item's age nor tears a read by itself - only a genuine version
        boundary (or a re-dispersal) discards held blocks.
        """
        home = self._first_segment_with(file, start)
        if home is None:
            raise SimulationError(
                f"file {file!r} is not broadcast anywhere on the "
                f"timeline from slot {start}"
            )
        if max_slots is not None:
            horizon = max_slots
        else:
            horizon = versioned_horizon(
                home.program, m_needed, home.period(file)
            )
            if horizon > MAX_DEFAULT_HORIZON:
                raise SimulationError(
                    f"default horizon for a versioned retrieval of "
                    f"{file!r} is {horizon} slots, past the "
                    f"{MAX_DEFAULT_HORIZON}-slot budget; pass "
                    f"max_slots to listen that long deliberately"
                )
        if horizon < 1:
            raise SimulationError(f"horizon must be >= 1: {horizon}")
        end = start + horizon
        fault_model = faults if faults is not None else NoFaults()

        held: set[int] = set()
        held_write: int | None = None
        discards = 0
        prev_epoch: int | None = None
        prev_m: int | None = None
        first_epoch = self.epoch_of(start)
        for slot, block, epoch in self._occurrences(file, start, end):
            if fault_model.is_lost(slot):
                continue
            segment = self._segments[epoch]
            m_here = self._dispersal_basis(epoch, file)
            if prev_epoch is not None and epoch != prev_epoch:
                if m_here != prev_m and held:
                    discards += len(held)
                    held.clear()
                    held_write = None
            prev_epoch, prev_m = epoch, m_here
            period = segment.period(file)
            write_slot = slot - slot % period
            if write_slot != held_write:
                if held:
                    discards += len(held)
                    held.clear()
                held_write = write_slot
            held.add(block)
            if len(held) >= m_needed:
                return SplicedRetrieval(
                    file=file,
                    completed=True,
                    finish_slot=slot,
                    latency=slot - start + 1,
                    segments_crossed=self.epoch_of(slot) - first_epoch,
                    age_at_completion=slot - write_slot,
                    torn_discards=discards,
                )
        return SplicedRetrieval(
            file=file,
            completed=False,
            finish_slot=start + horizon - 1,
            latency=None,
            segments_crossed=(
                self.epoch_of(start + horizon - 1) - first_epoch
            ),
            age_at_completion=None,
            torn_discards=discards,
        )

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:
        splices = ", ".join(str(slot) for slot in self.splice_slots)
        return (
            f"AirSchedule({len(self._segments)} segments"
            + (f", splices at [{splices}]" if splices else "")
            + ")"
        )
