"""repro: Pinwheel Scheduling for Fault-Tolerant Broadcast Disks.

A complete, from-scratch reproduction of Baruah & Bestavros,
"Pinwheel Scheduling for Fault-tolerant Broadcast Disks in Real-time
Database Systems" (BU-CS TR-1996-023 / ICDE 1997), organized as:

* :mod:`repro.core` - pinwheel scheduling theory: the task model, cyclic
  schedules, exact verification, a family of schedulers (harmonic,
  single-number reduction, double-integer reduction, two-task,
  three-task, exact, greedy), the pinwheel algebra R0-R5, transformation
  rules TR1/TR2, and the Equation 1/2 bandwidth bounds;
* :mod:`repro.ida` - Rabin's Information Dispersal Algorithm over
  GF(2^8) and Bestavros' adaptive AIDA;
* :mod:`repro.bdisk` - broadcast files, programs (flat, AIDA-flat,
  pinwheel-derived), bandwidth planning, the multidisk baseline, and the
  end-to-end designers;
* :mod:`repro.sim` - fault models, client retrieval, exact worst-case
  delay analysis (Lemmas 1-2, Figure 7), workloads, and metrics;
* :mod:`repro.rtdb` - temporal consistency, data items, operation modes,
  and read transactions;
* :mod:`repro.traffic` - discrete-event traffic simulation: open-loop
  client populations (arrival processes, session state machines,
  streaming metrics) sharded across cores;
* :mod:`repro.api` - the declarative front door: :class:`Scenario`
  specifications (JSON-round-trippable), the :class:`BroadcastEngine`
  facade, and batch sweeps over scenarios;
* :mod:`repro.sweep` - experiment orchestration: :class:`SweepSpec`
  grids over any scenario field, a content-addressed schedule
  solve-cache, a resumable JSONL run store, and one shared pool over
  cells and traffic shards.

Quickstart::

    from repro import FileSpec, Scenario, WorkloadSpec, run_scenario

    scenario = Scenario(
        name="radar-map",
        files=[
            FileSpec("radar", blocks=4, latency=2, fault_budget=2),
            FileSpec("map", blocks=6, latency=5, fault_budget=1),
        ],
        workload=WorkloadSpec(requests=100, horizon=500, seed=7),
    )
    result = run_scenario(scenario)
    print(result.summary())

The same scenario runs from a shell via ``repro run scenario.json``;
lower-level entry points (``solve``, ``design_program``,
``simulate_requests``) remain available for piecewise use.

See ``examples/`` for runnable scenarios and ``EXPERIMENTS.md`` for the
paper-versus-measured record.
"""

from repro.errors import (
    BandwidthError,
    BlockCodecError,
    DispersalError,
    InfeasibleError,
    ProgramError,
    ReproError,
    SchedulingError,
    SimulationError,
    SpecificationError,
    VerificationError,
)
from repro.core import (
    IDLE,
    BroadcastCondition,
    NiceConjunct,
    PinwheelCondition,
    PinwheelSystem,
    PinwheelTask,
    Schedule,
    bc,
    best_nice_conjunct,
    check_schedule,
    design_nice_system,
    necessary_bandwidth,
    pc,
    register_scheduler,
    registered_schedulers,
    scheduler_names,
    get_scheduler,
    SchedulerEntry,
    SolveReport,
    solve,
    sufficient_bandwidth_eq1,
    sufficient_bandwidth_eq2,
    verify_schedule,
)
from repro.ida import (
    AidaEncoder,
    Block,
    RedundancyPolicy,
    decode_block,
    disperse,
    encode_block,
    reconstruct,
)
from repro.bdisk import (
    BroadcastProgram,
    FileSpec,
    GeneralizedFileSpec,
    ProgramIndex,
    build_aida_flat_program,
    build_flat_program,
    build_multidisk_program,
    build_pinwheel_program,
    design_generalized_program,
    design_program,
    minimal_feasible_bandwidth,
    plan_bandwidth,
)
from repro.sim import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    NoFaults,
    retrieve,
    simulate_requests,
    worst_case_delay,
    worst_case_delay_table,
)
from repro.rtdb import (
    DataItem,
    ModeManager,
    OperationMode,
    ReadTransaction,
    TemporalConstraint,
    TemporalItemSpec,
    TemporalSpec,
    TransactionSpec,
    UpdatingServer,
    constraint_from_kinematics,
    execute_transaction,
    retrieve_versioned,
)
from repro.traffic import (
    TrafficMetrics,
    TrafficResult,
    TrafficSpec,
    simulate_traffic,
)
from repro.api import (
    BroadcastEngine,
    FaultSpec,
    Scenario,
    ScenarioResult,
    WorkloadSpec,
    run_scenario,
    run_scenarios,
)
from repro.sweep import (
    RunStore,
    SolveCache,
    SweepAxis,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.server import (
    AirSchedule,
    AsRunLog,
    BroadcastServer,
    FaultBudgetBump,
    ModeChange,
    MutationScript,
    ServerResult,
    SpliceRequirement,
    check_splice,
    find_splice_slot,
    mutation_from_dict,
    read_asrun,
    run_script,
    splice_is_safe,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "SpecificationError",
    "InfeasibleError",
    "SchedulingError",
    "VerificationError",
    "DispersalError",
    "BlockCodecError",
    "ProgramError",
    "BandwidthError",
    "SimulationError",
    # core
    "PinwheelTask",
    "PinwheelSystem",
    "Schedule",
    "IDLE",
    "PinwheelCondition",
    "BroadcastCondition",
    "NiceConjunct",
    "pc",
    "bc",
    "solve",
    "SolveReport",
    "SchedulerEntry",
    "register_scheduler",
    "registered_schedulers",
    "get_scheduler",
    "scheduler_names",
    "verify_schedule",
    "check_schedule",
    "best_nice_conjunct",
    "design_nice_system",
    "necessary_bandwidth",
    "sufficient_bandwidth_eq1",
    "sufficient_bandwidth_eq2",
    # ida
    "AidaEncoder",
    "Block",
    "RedundancyPolicy",
    "disperse",
    "reconstruct",
    "encode_block",
    "decode_block",
    # bdisk
    "FileSpec",
    "GeneralizedFileSpec",
    "BroadcastProgram",
    "ProgramIndex",
    "build_flat_program",
    "build_aida_flat_program",
    "build_pinwheel_program",
    "build_multidisk_program",
    "design_program",
    "design_generalized_program",
    "plan_bandwidth",
    "minimal_feasible_bandwidth",
    # sim
    "NoFaults",
    "BernoulliFaults",
    "BurstFaults",
    "AdversarialFaults",
    "retrieve",
    "simulate_requests",
    "worst_case_delay",
    "worst_case_delay_table",
    # rtdb
    "TemporalConstraint",
    "TemporalItemSpec",
    "TemporalSpec",
    "TransactionSpec",
    "UpdatingServer",
    "constraint_from_kinematics",
    "retrieve_versioned",
    "DataItem",
    "OperationMode",
    "ModeManager",
    "ReadTransaction",
    "execute_transaction",
    # traffic
    "TrafficMetrics",
    "TrafficResult",
    "TrafficSpec",
    "simulate_traffic",
    # api
    "Scenario",
    "FaultSpec",
    "WorkloadSpec",
    "BroadcastEngine",
    "ScenarioResult",
    "run_scenario",
    "run_scenarios",
    # sweep
    "RunStore",
    "SolveCache",
    "SweepAxis",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    # server
    "AirSchedule",
    "AsRunLog",
    "BroadcastServer",
    "FaultBudgetBump",
    "ModeChange",
    "MutationScript",
    "ServerResult",
    "SpliceRequirement",
    "check_splice",
    "find_splice_slot",
    "mutation_from_dict",
    "read_asrun",
    "run_script",
    "splice_is_safe",
]
