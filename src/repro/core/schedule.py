"""Cyclic schedules over a slotted resource.

A schedule assigns each time slot ``t`` (a non-negative integer) to at most
one owner, in accordance with the paper's Integral Boundary Constraint.  We
represent the infinite periodic schedule by one cycle: slot ``t`` is owned by
``cycle[t mod L]``.  The sentinel :data:`IDLE` marks unallocated slots (the
paper writes ``*`` in Example 1 and ``P(t) = 0`` in Section 4.1).

The class supports the window arithmetic the rest of the library needs:

* ``count_in_window(start, length)`` - occurrences of an owner in *any*
  window of the infinite schedule, computed from per-owner prefix sums in
  O(1) after O(L) preprocessing;
* ``min_in_any_window(owner, length)`` - the worst window, which is exactly
  what a ``pc`` condition bounds;
* ``max_gap(owner)`` - the largest spacing between consecutive services,
  which is the AIDA quantity ``Delta`` of Lemma 2.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SpecificationError

#: Sentinel owner for unallocated slots.
IDLE: None = None

OwnerKey = Hashable


class Schedule:
    """An immutable cyclic schedule.

    Parameters
    ----------
    cycle:
        The slot owners for one period.  ``IDLE`` (``None``) marks an
        unallocated slot.  The cycle must be non-empty.
    """

    __slots__ = ("_cycle", "_prefix", "_totals", "_positions")

    def __init__(self, cycle: Iterable[OwnerKey]) -> None:
        cycle_tuple = tuple(cycle)
        if not cycle_tuple:
            raise SpecificationError("schedule cycle must be non-empty")
        self._cycle: tuple[OwnerKey, ...] = cycle_tuple
        # Lazily-built per-owner caches.
        self._prefix: dict[OwnerKey, list[int]] = {}
        self._totals: dict[OwnerKey, int] = {}
        self._positions: dict[OwnerKey, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_residue_classes(
        cls,
        cycle_length: int,
        assignments: Mapping[OwnerKey, Sequence[tuple[int, int]]],
    ) -> "Schedule":
        """Build a schedule from residue-class assignments.

        ``assignments`` maps each owner to ``(offset, modulus)`` pairs; the
        owner receives every slot ``t`` with ``t = offset (mod modulus)``.
        This is the natural output format of the harmonic and reduction
        schedulers: giving a task ``a`` residue classes modulo ``b`` yields
        exactly ``a`` slots in *every* window of ``b`` consecutive slots.

        Raises
        ------
        SpecificationError
            If a modulus does not divide ``cycle_length`` (the result would
            not be periodic) or two classes collide on a slot.
        """
        slots: list[OwnerKey] = [IDLE] * cycle_length
        for owner, classes in assignments.items():
            for offset, modulus in classes:
                if modulus <= 0 or not 0 <= offset < modulus:
                    raise SpecificationError(
                        f"bad residue class ({offset}, {modulus}) "
                        f"for owner {owner!r}"
                    )
                if cycle_length % modulus != 0:
                    raise SpecificationError(
                        f"modulus {modulus} does not divide cycle length "
                        f"{cycle_length}"
                    )
                for slot in range(offset, cycle_length, modulus):
                    if slots[slot] is not IDLE:
                        raise SpecificationError(
                            f"slot {slot} assigned to both "
                            f"{slots[slot]!r} and {owner!r}"
                        )
                    slots[slot] = owner
        return cls(slots)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> tuple[OwnerKey, ...]:
        """One period of the schedule."""
        return self._cycle

    @property
    def cycle_length(self) -> int:
        """The period ``L``."""
        return len(self._cycle)

    def owner_at(self, t: int) -> OwnerKey:
        """The owner of slot ``t`` of the infinite schedule (``t >= 0``)."""
        if t < 0:
            raise SpecificationError(f"slot index must be >= 0, got {t}")
        return self._cycle[t % len(self._cycle)]

    def owners(self) -> tuple[OwnerKey, ...]:
        """Distinct non-idle owners, in order of first appearance."""
        seen: dict[OwnerKey, None] = {}
        for owner in self._cycle:
            if owner is not IDLE and owner not in seen:
                seen[owner] = None
        return tuple(seen)

    def idle_count(self) -> int:
        """Number of idle slots per cycle."""
        return sum(1 for owner in self._cycle if owner is IDLE)

    def utilization(self) -> float:
        """Fraction of slots per cycle that are allocated."""
        return 1.0 - self.idle_count() / len(self._cycle)

    # ------------------------------------------------------------------
    # Window arithmetic
    # ------------------------------------------------------------------

    def _prefix_for(self, owner: OwnerKey) -> list[int]:
        prefix = self._prefix.get(owner)
        if prefix is None:
            prefix = [0]
            for slot_owner in self._cycle:
                prefix.append(prefix[-1] + (1 if slot_owner == owner else 0))
            self._prefix[owner] = prefix
            self._totals[owner] = prefix[-1]
        return prefix

    def total(self, owner: OwnerKey) -> int:
        """Occurrences of ``owner`` per cycle."""
        self._prefix_for(owner)
        return self._totals[owner]

    def count_in_window(self, owner: OwnerKey, start: int, length: int) -> int:
        """Occurrences of ``owner`` in slots ``[start, start + length)``.

        Works on the infinite periodic extension, so ``start`` may be any
        non-negative integer and ``length`` may exceed the cycle length.
        """
        if length < 0:
            raise SpecificationError(f"window length must be >= 0: {length}")
        if start < 0:
            raise SpecificationError(f"window start must be >= 0: {start}")
        cycle_len = len(self._cycle)
        prefix = self._prefix_for(owner)
        total = self._totals[owner]

        def cumulative(upto: int) -> int:
            """Occurrences in slots [0, upto) of the infinite schedule."""
            full, rem = divmod(upto, cycle_len)
            return full * total + prefix[rem]

        return cumulative(start + length) - cumulative(start)

    def min_in_any_window(self, owner: OwnerKey, length: int) -> int:
        """Minimum occurrences of ``owner`` over all windows of ``length``.

        Because the schedule is periodic with period ``L``, the minimum over
        all windows of the infinite schedule equals the minimum over the
        ``L`` windows starting at ``0 .. L-1``.
        """
        cycle_len = len(self._cycle)
        return min(
            self.count_in_window(owner, start, length)
            for start in range(cycle_len)
        )

    def service_slots(self, owner: OwnerKey) -> tuple[int, ...]:
        """Slots within one cycle at which ``owner`` is served (sorted).

        This is one period of the paper's ``P:i`` sequence.
        """
        positions = self._positions.get(owner)
        if positions is None:
            positions = tuple(
                slot for slot, o in enumerate(self._cycle) if o == owner
            )
            self._positions[owner] = positions
        return positions

    def gaps(self, owner: OwnerKey) -> tuple[int, ...]:
        """Cyclic spacings between consecutive services of ``owner``.

        A gap of ``g`` means the next service comes ``g`` slots after the
        previous one (adjacent slots have gap 1).  The gaps sum to the cycle
        length.  An owner served once per cycle has the single gap ``L``.
        """
        positions = self.service_slots(owner)
        if not positions:
            return ()
        cycle_len = len(self._cycle)
        if len(positions) == 1:
            return (cycle_len,)
        spaced = [
            positions[i + 1] - positions[i] for i in range(len(positions) - 1)
        ]
        spaced.append(cycle_len - positions[-1] + positions[0])
        return tuple(spaced)

    def max_gap(self, owner: OwnerKey) -> int | None:
        """The largest service gap - Lemma 2's ``Delta`` for this owner.

        Returns ``None`` when the owner never appears.
        """
        gap_list = self.gaps(owner)
        return max(gap_list) if gap_list else None

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def rotated(self, offset: int) -> "Schedule":
        """The same infinite schedule started ``offset`` slots later."""
        cycle_len = len(self._cycle)
        offset %= cycle_len
        return Schedule(self._cycle[offset:] + self._cycle[:offset])

    def repeated(self, times: int) -> "Schedule":
        """A schedule whose cycle is this one repeated ``times`` times."""
        if times < 1:
            raise SpecificationError(f"repeat count must be >= 1: {times}")
        return Schedule(self._cycle * times)

    def relabel(self, mapping: Callable[[OwnerKey], OwnerKey]) -> "Schedule":
        """Apply ``mapping`` to every non-idle owner.

        This implements the paper's ``map(i', i)`` projection: virtual tasks
        introduced by rules R4/R5 are folded back onto the broadcast file
        they serve.  Distinct owners may map to the same owner.
        """
        return Schedule(
            IDLE if owner is IDLE else mapping(owner) for owner in self._cycle
        )

    def slots(self, horizon: int) -> Iterator[tuple[int, OwnerKey]]:
        """Yield ``(t, owner)`` for slots ``0 .. horizon - 1``."""
        cycle_len = len(self._cycle)
        for t in range(horizon):
            yield t, self._cycle[t % cycle_len]

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._cycle == other._cycle

    def __hash__(self) -> int:
        return hash(self._cycle)

    def __len__(self) -> int:
        return len(self._cycle)

    def __str__(self) -> str:
        rendered = ", ".join(
            "*" if owner is IDLE else str(owner) for owner in self._cycle
        )
        return f"[{rendered}]"

    def __repr__(self) -> str:
        return f"Schedule(cycle_length={len(self._cycle)}, cycle={self})"
