"""Channel partitioners: assigning files to parallel broadcast channels.

Striping a catalogue over ``k`` channels is the multiprocessor-pinwheel
problem: split the task set so every per-channel pinwheel instance stays
schedulable.  Exactly like :mod:`repro.core.registry` does for
schedulers, this module keeps a pluggable registry of *partitioners* -
deterministic callables that map ``(files, k)`` to a per-channel split -
so ``partition-then-solve`` designs can route through first-fit,
worst-fit, or any third-party strategy by name.

A partitioner only *proposes* a split; each channel is then solved by the
ordinary scheduler portfolio (with the configured policy, including
``exact-first`` fallbacks), so an unschedulable proposal fails loudly at
design time rather than silently degrading.

Built-ins:

* ``"worst-fit"`` - longest-processing-time style: files in decreasing
  density order, each to the currently least-loaded channel.  The
  default: it balances per-channel density, which keeps every channel
  inside the Chan & Chin feasibility region the longest.
* ``"first-fit"`` - decreasing density order, each file to the first
  channel whose load stays within density 1; falls back to the
  least-loaded channel when none fits (density 1 is the hard pinwheel
  feasibility ceiling, so "fits" means "may still be schedulable").
* ``"round-robin"`` - catalogue order, file ``i`` to channel ``i % k``;
  the simplest stripe, useful as a baseline and for reproducing
  hand-laid-out configurations.

All built-ins are deterministic: ties break on catalogue order, never on
hash order or randomness, so design fingerprints stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence, TYPE_CHECKING

from repro.errors import SpecificationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.bdisk.file import FileSpec, GeneralizedFileSpec

    AnyFile = FileSpec | GeneralizedFileSpec

#: A partitioner callable: ``fn(files, k) -> tuple[tuple[int, ...], ...]``
#: - ``k`` tuples of catalogue indices, every index in exactly one tuple.
PartitionerFn = Callable[[Sequence["AnyFile"], int], tuple[tuple[int, ...], ...]]


def file_density(spec: "AnyFile") -> Fraction:
    """A file's bandwidth-independent load for partition balancing.

    Regular files contribute their demand ``(m + r) / T``; generalized
    files the tightest of their induced conditions,
    ``max_j (m + j) / d(j)``.  Both are exact fractions, so orderings
    are deterministic.
    """
    latency_vector = getattr(spec, "latency_vector", None)
    if latency_vector is not None:
        return max(
            Fraction(spec.blocks + j, d_j)
            for j, d_j in enumerate(latency_vector)
        )
    return Fraction(spec.slots_per_window, spec.latency)


@dataclass(frozen=True)
class PartitionerEntry:
    """One registered partitioner: name, callable, one-line description."""

    name: str
    partitioner: PartitionerFn
    description: str

    def __str__(self) -> str:
        return f"{self.name}: {self.description}"


_REGISTRY: dict[str, PartitionerEntry] = {}


def register_partitioner(
    name: str, *, description: str = ""
) -> Callable[[PartitionerFn], PartitionerFn]:
    """Register a partitioner under ``name``; returns a pass-through decorator.

    Raises :class:`SpecificationError` on duplicate names - use
    :func:`unregister_partitioner` first to replace an entry deliberately.
    """
    if not name or not isinstance(name, str):
        raise SpecificationError(
            f"partitioner name must be a non-empty str: {name!r}"
        )

    def decorate(func: PartitionerFn) -> PartitionerFn:
        if name in _REGISTRY:
            raise SpecificationError(
                f"partitioner {name!r} is already registered"
            )
        _REGISTRY[name] = PartitionerEntry(
            name=name, partitioner=func, description=description
        )
        return func

    return decorate


def unregister_partitioner(name: str) -> None:
    """Remove ``name`` from the registry (for tests and replacements)."""
    if name not in _REGISTRY:
        raise SpecificationError(f"partitioner {name!r} is not registered")
    del _REGISTRY[name]


def get_partitioner(name: str) -> PartitionerEntry:
    """Look a registered partitioner up by name.

    Raises :class:`SpecificationError` for unknown names, listing the
    registered ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SpecificationError(
            f"unknown partitioner {name!r} (registered: {known})"
        ) from None


def partitioner_names() -> tuple[str, ...]:
    """All registered partitioner names, sorted."""
    return tuple(sorted(_REGISTRY))


def _check_instance(files: Sequence["AnyFile"], k: int) -> None:
    if k < 1:
        raise SpecificationError(f"channel count must be >= 1: {k}")
    if len(files) < k:
        raise SpecificationError(
            f"cannot stripe {len(files)} file(s) over {k} channels: "
            f"every channel must carry at least one file (use "
            f"'replicated' assignment, or fewer channels)"
        )


def _fill_empty(
    bins: list[list[int]], loads: list[Fraction], order: Sequence[int],
    densities: dict[int, Fraction],
) -> None:
    """Steal the lightest tail files so no channel is left empty.

    Density-ordered packing can leave trailing channels empty when one
    file dominates; a pinwheel channel with no tasks is meaningless, so
    rebalance deterministically: move the lowest-density file out of the
    currently fullest multi-file bin into each empty one.
    """
    for target, bin_ in enumerate(bins):
        if bin_:
            continue
        donors = [i for i, b in enumerate(bins) if len(b) > 1]
        donor = max(donors, key=lambda i: (loads[i], -i))
        victim = min(bins[donor], key=lambda idx: (densities[idx], -order.index(idx)))
        bins[donor].remove(victim)
        loads[donor] -= densities[victim]
        bins[target].append(victim)
        loads[target] += densities[victim]


def _density_order(files: Sequence["AnyFile"]) -> tuple[list[int], dict[int, Fraction]]:
    densities = {i: file_density(spec) for i, spec in enumerate(files)}
    order = sorted(range(len(files)), key=lambda i: (-densities[i], i))
    return order, densities


@register_partitioner(
    "worst-fit",
    description="decreasing density, each file to the least-loaded channel",
)
def worst_fit(
    files: Sequence["AnyFile"], k: int
) -> tuple[tuple[int, ...], ...]:
    """Longest-processing-time balance: minimizes the peak channel density."""
    _check_instance(files, k)
    order, densities = _density_order(files)
    bins: list[list[int]] = [[] for _ in range(k)]
    loads = [Fraction(0)] * k
    for idx in order:
        target = min(range(k), key=lambda c: (loads[c], c))
        bins[target].append(idx)
        loads[target] += densities[idx]
    _fill_empty(bins, loads, order, densities)
    return tuple(tuple(sorted(bin_)) for bin_ in bins)


@register_partitioner(
    "first-fit",
    description="decreasing density, first channel that stays within "
    "density 1 (least-loaded fallback)",
)
def first_fit(
    files: Sequence["AnyFile"], k: int
) -> tuple[tuple[int, ...], ...]:
    """First-fit-decreasing against the density-1 feasibility ceiling."""
    _check_instance(files, k)
    order, densities = _density_order(files)
    bins: list[list[int]] = [[] for _ in range(k)]
    loads = [Fraction(0)] * k
    for idx in order:
        target = next(
            (c for c in range(k) if loads[c] + densities[idx] <= 1),
            None,
        )
        if target is None:
            target = min(range(k), key=lambda c: (loads[c], c))
        bins[target].append(idx)
        loads[target] += densities[idx]
    _fill_empty(bins, loads, order, densities)
    return tuple(tuple(sorted(bin_)) for bin_ in bins)


@register_partitioner(
    "round-robin",
    description="catalogue order, file i to channel i mod k",
)
def round_robin(
    files: Sequence["AnyFile"], k: int
) -> tuple[tuple[int, ...], ...]:
    """The plain stripe: deterministic, layout-preserving, unbalanced."""
    _check_instance(files, k)
    bins: list[list[int]] = [[] for _ in range(k)]
    for idx in range(len(files)):
        bins[idx % k].append(idx)
    return tuple(tuple(bin_) for bin_ in bins)


def partition_files(
    files: Sequence["AnyFile"], k: int, *, partitioner: str = "worst-fit"
) -> tuple[tuple[int, ...], ...]:
    """Split ``files`` over ``k`` channels with the named partitioner.

    Returns ``k`` tuples of catalogue indices.  The result is validated:
    every index appears exactly once and no channel is empty, whatever
    the (possibly third-party) partitioner proposed.
    """
    entry = get_partitioner(partitioner)
    bins = entry.partitioner(files, k)
    if len(bins) != k:
        raise SpecificationError(
            f"partitioner {partitioner!r} returned {len(bins)} channel(s) "
            f"for k={k}"
        )
    seen = sorted(idx for bin_ in bins for idx in bin_)
    if seen != list(range(len(files))):
        raise SpecificationError(
            f"partitioner {partitioner!r} must assign every file to "
            f"exactly one channel (got index multiset {seen})"
        )
    if any(not bin_ for bin_ in bins):
        raise SpecificationError(
            f"partitioner {partitioner!r} left a channel empty for "
            f"{len(files)} file(s) over {k} channels"
        )
    return tuple(tuple(bin_) for bin_ in bins)
