"""Exact verification of schedules against pinwheel / broadcast conditions.

Schedulers in this library never return an unverified schedule: whatever
clever reduction produced a candidate cycle, the final word is an exact
sliding-window check performed here.  The checker exploits periodicity -
the minimum service count over all windows of length ``w`` in the infinite
schedule equals the minimum over the ``L`` windows starting inside one
cycle - so verification is ``O(L)`` per condition after ``O(L)`` prefix-sum
preprocessing (see :meth:`repro.core.schedule.Schedule.count_in_window`).

Two entry points are provided: :func:`check_schedule` returns a structured
:class:`VerificationReport` (used by tests and benches to show witnesses),
and :func:`verify_schedule` raises :class:`repro.errors.VerificationError`
on the first violation (used inside schedulers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import VerificationError
from repro.core.conditions import (
    BroadcastCondition,
    ConditionKey,
    NiceConjunct,
    PinwheelCondition,
)
from repro.core.schedule import Schedule

Condition = PinwheelCondition | BroadcastCondition


@dataclass(frozen=True, slots=True)
class Violation:
    """A single violated window: the condition, window start, and count."""

    condition: Condition
    window_start: int
    window_length: int
    required: int
    observed: int

    def __str__(self) -> str:
        return (
            f"{self.condition} violated on window "
            f"[{self.window_start}, {self.window_start + self.window_length})"
            f": needed {self.required}, saw {self.observed}"
        )


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of checking a schedule against a set of conditions."""

    checked: tuple[Condition, ...]
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        """True when every condition held on every window."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return f"OK ({len(self.checked)} conditions verified)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _worst_window(
    schedule: Schedule, owner: ConditionKey, length: int
) -> tuple[int, int]:
    """Return ``(start, count)`` of the sparsest window of ``length``."""
    worst_start = 0
    worst_count = schedule.count_in_window(owner, 0, length)
    for start in range(1, schedule.cycle_length):
        count = schedule.count_in_window(owner, start, length)
        if count < worst_count:
            worst_start, worst_count = start, count
    return worst_start, worst_count


def satisfies_pc(schedule: Schedule, condition: PinwheelCondition) -> bool:
    """Whether the schedule satisfies one pinwheel condition exactly."""
    __, count = _worst_window(schedule, condition.task, condition.b)
    return count >= condition.a


def satisfies_bc(schedule: Schedule, condition: BroadcastCondition) -> bool:
    """Whether the schedule satisfies one broadcast-file condition.

    Uses the Equation 3 expansion: every ``pc(i, m + j, d(j))`` must hold.
    """
    return all(satisfies_pc(schedule, sub) for sub in condition.expand())


def _iter_pc(
    conditions: Iterable[Condition],
) -> Iterable[tuple[Condition, PinwheelCondition]]:
    """Yield ``(original, pc)`` pairs, expanding bc conditions via Eq. 3."""
    for condition in conditions:
        if isinstance(condition, BroadcastCondition):
            for sub in condition.expand():
                yield condition, sub
        elif isinstance(condition, PinwheelCondition):
            yield condition, condition
        else:
            raise TypeError(f"unsupported condition type: {condition!r}")


def check_schedule(
    schedule: Schedule,
    conditions: Iterable[Condition],
    *,
    max_violations: int | None = None,
) -> VerificationReport:
    """Check every condition, returning a structured report.

    Parameters
    ----------
    schedule:
        The cyclic schedule (or broadcast program projected onto file keys).
    conditions:
        ``pc`` and/or ``bc`` conditions; ``bc`` is expanded per Equation 3.
    max_violations:
        Stop collecting after this many violations (``None`` = collect all).
    """
    checked: list[Condition] = []
    violations: list[Violation] = []
    for original, sub in _iter_pc(conditions):
        if not checked or checked[-1] is not original:
            checked.append(original)
        start, count = _worst_window(schedule, sub.task, sub.b)
        if count < sub.a:
            violations.append(
                Violation(original, start, sub.b, sub.a, count)
            )
            if max_violations is not None and len(violations) >= max_violations:
                break
    return VerificationReport(tuple(checked), tuple(violations))


def verify_schedule(
    schedule: Schedule, conditions: Iterable[Condition]
) -> None:
    """Raise :class:`VerificationError` if any condition is violated."""
    report = check_schedule(schedule, conditions, max_violations=1)
    if not report.ok:
        raise VerificationError(str(report.violations[0]))


def verify_nice_conjunct(schedule: Schedule, conjunct: NiceConjunct) -> None:
    """Verify a schedule over (virtual) task keys against a nice conjunct."""
    verify_schedule(schedule, conjunct.conditions)


def project_to_files(schedule: Schedule, conjunct: NiceConjunct) -> Schedule:
    """Fold virtual helper tasks back onto their files (``map(i', i)``).

    The returned schedule's owners are file keys, suitable for checking the
    original ``bc`` conditions or for building a broadcast program.
    """
    return schedule.relabel(conjunct.file_of)


def brute_force_min_in_window(
    slots: Sequence[ConditionKey], owner: ConditionKey, length: int
) -> int:
    """Naive reference implementation used to cross-check the fast path.

    Treats ``slots`` as one period of a cyclic schedule and scans every
    window start explicitly, counting occurrences by iteration.  Quadratic;
    only for tests.
    """
    period = len(slots)
    best: int | None = None
    for start in range(period):
        count = sum(
            1 for k in range(length) if slots[(start + k) % period] == owner
        )
        best = count if best is None else min(best, count)
    return best if best is not None else 0
