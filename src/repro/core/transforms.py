"""Transformation rules TR1/TR2 and the Section 4.2 selection strategy.

The generalized broadcast-disk designer must turn each broadcast-file
condition ``bc(i, m, d)`` into a *nice* conjunct of pinwheel conditions -
one condition per (possibly virtual) task - of minimal density, because the
Chan & Chin scheduler's test is density-based.  The paper conjectures the
optimal conversion is NP-hard and gives heuristics; we implement all of
them and pick the best per file:

* **TR1**: the single unit-demand condition
  ``pc(i, 1, min_j floor(d(j) / (m + j)))``;
* **TR2**: ``pc(i, m, d(0))`` plus one unit helper
  ``pc(i_j, 1, d(j))`` per fault level, each mapped onto file ``i``;
* **TR2-reduced** (the Example 4 manipulation): reduce the base to
  ``pc(m/g, d(0)/g)`` with ``g = gcd(m, d(0))`` (stronger by R1, same
  density) and derive each fault level with rule R5, whose helpers are
  cheaper than TR2's;
* **merge** (the Examples 5/6 simplification): search for one single
  condition that rule-implies every expanded conjunct, via
  :func:`repro.core.algebra.pc_implies`.

Every candidate is *sound by construction* - scheduling it satisfies the
original ``bc`` - and the selection simply takes the minimum density.
``benchmarks/bench_examples_density.py`` replays Examples 2-6 through this
module and compares against the paper's reported densities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import SpecificationError
from repro.core.algebra import pc_implies, rule_r5
from repro.core.conditions import (
    BroadcastCondition,
    ConditionKey,
    NiceConjunct,
    PinwheelCondition,
    virtual_key,
)


@dataclass(frozen=True)
class TransformCandidate:
    """A nice conjunct implying a ``bc`` condition, with provenance."""

    strategy: str
    conjunct: NiceConjunct

    @property
    def density(self) -> Fraction:
        return self.conjunct.density

    def __str__(self) -> str:
        return (
            f"{self.strategy}: {self.conjunct} "
            f"(density {float(self.density):.4f})"
        )


def normalized_vector(condition: BroadcastCondition) -> BroadcastCondition:
    """Tighten the latency vector to be non-decreasing.

    Replacing ``d(j)`` by ``min(d(j), d(j+1), ..., d(r))`` only strengthens
    the condition (smaller windows), so any program for the result
    satisfies the original; and a non-decreasing vector is what TR2's
    stacking argument needs.  Vectors that are already non-decreasing (the
    model's natural case) are returned unchanged.
    """
    tightened = list(condition.d)
    for j in range(len(tightened) - 2, -1, -1):
        tightened[j] = min(tightened[j], tightened[j + 1])
    if tuple(tightened) == condition.d:
        return condition
    return BroadcastCondition(condition.file, condition.m, tightened)


def tr1(condition: BroadcastCondition) -> TransformCandidate:
    """Transformation rule TR1: one unit-demand condition.

    ``bc(i, m, d) <= pc(i, 1, min_j floor(d(j) / (m + j)))``.
    Always applicable (``bc`` validation guarantees the window >= 1).
    """
    window = min(
        latency // (condition.m + j) for j, latency in enumerate(condition.d)
    )
    cond = PinwheelCondition(condition.file, 1, window)
    return TransformCandidate("TR1", NiceConjunct((cond,), provenance="TR1"))


def tr2(condition: BroadcastCondition) -> TransformCandidate:
    """Transformation rule TR2: base condition plus unit helpers.

    ``bc(i, m, d) <= pc(i, m, d(0)) ^ AND_j pc(i_j, 1, d(j)) ^ map(i_j, i)``.
    """
    tight = normalized_vector(condition)
    base = PinwheelCondition(tight.file, tight.m, tight.d[0])
    conditions = [base]
    mapping: dict[ConditionKey, ConditionKey] = {}
    for j in range(1, len(tight.d)):
        helper_task = virtual_key(tight.file, j)
        conditions.append(PinwheelCondition(helper_task, 1, tight.d[j]))
        mapping[helper_task] = tight.file
    return TransformCandidate(
        "TR2", NiceConjunct(tuple(conditions), mapping, provenance="TR2")
    )


def tr2_reduced(condition: BroadcastCondition) -> TransformCandidate:
    """TR2 with an R1-reduced base and R5-derived helpers (Example 4).

    The base ``pc(m, d(0))`` is strengthened - at unchanged density - to
    ``pc(m/g, d(0)/g)`` with ``g = gcd(m, d(0))``.  Each fault level ``j``
    is then derived through rule R5, whose helper ``pc(x, n * d(0)/g)``
    is often much lighter than TR2's ``pc(1, d(j))`` (and absent entirely
    when the reduced base already covers the level).
    """
    tight = normalized_vector(condition)
    g = math.gcd(tight.m, tight.d[0])
    base = PinwheelCondition(tight.file, tight.m // g, tight.d[0] // g)
    conditions = [base]
    mapping: dict[ConditionKey, ConditionKey] = {}
    for j in range(1, len(tight.d)):
        target = PinwheelCondition(tight.file, tight.m + j, tight.d[j])
        helper, helper_map = rule_r5(base, target, helper_index=j)
        if helper is not None:
            conditions.append(helper)
            mapping.update(helper_map)
    return TransformCandidate(
        "TR2-reduced",
        NiceConjunct(tuple(conditions), mapping, provenance="TR2-reduced"),
    )


def merge_single(condition: BroadcastCondition) -> TransformCandidate | None:
    """Search for one condition implying the whole Equation 3 expansion.

    Candidates are the gcd-reduced forms of each expanded conjunct (the
    reduction is density-free strengthening by R1).  Returns the lightest
    candidate that rule-implies every conjunct, or ``None`` when no single
    condition works.  Reproduces the Example 5 and Example 6 conversions.
    """
    expanded = condition.expand()
    best: PinwheelCondition | None = None
    for cond in expanded:
        g = math.gcd(cond.a, cond.b)
        candidate = PinwheelCondition(cond.task, cond.a // g, cond.b // g)
        if all(pc_implies(candidate, other) for other in expanded):
            if best is None or candidate.density < best.density:
                best = candidate
    if best is None:
        return None
    return TransformCandidate(
        "merge", NiceConjunct((best,), provenance="merge")
    )


#: All per-file strategies, in report order.
_STRATEGIES = (merge_single, tr1, tr2, tr2_reduced)


def all_candidates(
    condition: BroadcastCondition,
) -> list[TransformCandidate]:
    """Every applicable strategy's candidate, in report order."""
    results = []
    for strategy in _STRATEGIES:
        candidate = strategy(condition)
        if candidate is not None:
            results.append(candidate)
    return results


def best_nice_conjunct(condition: BroadcastCondition) -> TransformCandidate:
    """The Section 4.2 strategy: evaluate all candidates, keep the lightest.

    Ties favour fewer conditions (cheaper to schedule), then the strategy
    order ``merge, TR1, TR2, TR2-reduced``.
    """
    candidates = all_candidates(condition)
    if not candidates:
        raise SpecificationError(
            f"no transformation strategy applies to {condition}"
        )
    return min(
        candidates, key=lambda c: (c.density, len(c.conjunct.conditions))
    )


def design_nice_system(
    conditions: Iterable[BroadcastCondition],
) -> tuple[NiceConjunct, list[TransformCandidate]]:
    """Convert a whole broadcast-file system to one nice conjunct.

    Each file is converted independently with :func:`best_nice_conjunct`;
    the per-file conjuncts (over disjoint task keys) are merged.  Returns
    the combined conjunct and the chosen per-file candidates, so callers
    can report per-file densities and provenance.

    Raises
    ------
    SpecificationError
        If two files share a key (merging would not be nice).
    """
    condition_list = list(conditions)
    files = [c.file for c in condition_list]
    if len(set(files)) != len(files):
        raise SpecificationError(f"duplicate file keys in {files!r}")
    chosen: list[TransformCandidate] = []
    combined: NiceConjunct | None = None
    for condition in condition_list:
        candidate = best_nice_conjunct(condition)
        chosen.append(candidate)
        combined = (
            candidate.conjunct
            if combined is None
            else combined.merge(candidate.conjunct)
        )
    if combined is None:
        raise SpecificationError("no broadcast conditions supplied")
    return combined, chosen


def density_report(
    condition: BroadcastCondition,
) -> list[tuple[str, Fraction]]:
    """``(strategy, density)`` rows for every candidate plus the bound.

    Convenience for the Examples 2-6 bench: the first row is the density
    lower bound ``max_j (m + j) / d(j)`` against which the paper measures
    each transformation.
    """
    rows: list[tuple[str, Fraction]] = [
        ("lower-bound", condition.density_lower_bound)
    ]
    rows.extend(
        (candidate.strategy, candidate.density)
        for candidate in all_candidates(condition)
    )
    return rows
