"""Pinwheel scheduling theory - the paper's primary contribution.

This subpackage implements:

* the pinwheel task model of Holte et al. (tasks ``(i, a, b)`` that need the
  shared resource for at least ``a`` out of every ``b`` consecutive slots),
* cyclic schedules and exact sliding-window verification,
* the condition language of the paper's Section 4 (``pc`` pinwheel
  conditions, ``bc`` broadcast-file conditions, conjuncts, *nice* conjuncts),
* the pinwheel algebra (rules R0-R5) and transformation rules TR1/TR2,
* a family of schedulers (harmonic residue allocation, single-number
  reduction, double-integer reduction, two-task, three-task, exact search,
  greedy EDF) and a portfolio solver that always verifies its output,
* the bandwidth bounds of Equations 1 and 2.

The public names re-exported here form the stable API of ``repro.core``.
"""

from repro.core.task import PinwheelTask, PinwheelSystem
from repro.core.schedule import IDLE, Schedule
from repro.core.conditions import (
    PinwheelCondition,
    BroadcastCondition,
    NiceConjunct,
    pc,
    bc,
    virtual_key,
)
from repro.core.verify import (
    VerificationReport,
    satisfies_pc,
    satisfies_bc,
    verify_schedule,
    check_schedule,
)
from repro.core.algebra import (
    rule_r0,
    rule_r1,
    rule_r2,
    rule_r3,
    rule_r4,
    rule_r5,
    pc_implies,
    strengthen_r3,
)
from repro.core.transforms import (
    TransformCandidate,
    tr1,
    tr2,
    tr2_reduced,
    merge_single,
    best_nice_conjunct,
    design_nice_system,
)
from repro.core.bounds import (
    CHAN_CHIN_DENSITY,
    SINGLE_REDUCTION_DENSITY,
    THREE_TASK_DENSITY,
    TWO_TASK_DENSITY,
    density_lower_bound,
    necessary_bandwidth,
    sufficient_bandwidth_eq1,
    sufficient_bandwidth_eq2,
)
from repro.core.harmonic import schedule_harmonic
from repro.core.single_reduction import (
    specialize_single,
    schedule_single_reduction,
)
from repro.core.double_reduction import (
    specialize_double,
    schedule_double_reduction,
)
from repro.core.two_task import schedule_two_tasks
from repro.core.three_task import schedule_three_tasks
from repro.core.exact import schedule_exact, is_feasible_exact
from repro.core.greedy import schedule_greedy
from repro.core.registry import (
    SchedulerEntry,
    get_scheduler,
    plan_for,
    register_scheduler,
    registered_schedulers,
    scheduler_names,
    unregister_scheduler,
)
from repro.core.solver import solve, solve_nice_conjunct, SolveReport
from repro.core.fingerprint import (
    canonical_json,
    fingerprint,
    system_fingerprint,
)

__all__ = [
    "canonical_json",
    "fingerprint",
    "system_fingerprint",
    "PinwheelTask",
    "PinwheelSystem",
    "IDLE",
    "Schedule",
    "PinwheelCondition",
    "BroadcastCondition",
    "NiceConjunct",
    "pc",
    "bc",
    "virtual_key",
    "VerificationReport",
    "satisfies_pc",
    "satisfies_bc",
    "verify_schedule",
    "check_schedule",
    "rule_r0",
    "rule_r1",
    "rule_r2",
    "rule_r3",
    "rule_r4",
    "rule_r5",
    "pc_implies",
    "strengthen_r3",
    "TransformCandidate",
    "tr1",
    "tr2",
    "tr2_reduced",
    "merge_single",
    "best_nice_conjunct",
    "design_nice_system",
    "CHAN_CHIN_DENSITY",
    "SINGLE_REDUCTION_DENSITY",
    "THREE_TASK_DENSITY",
    "TWO_TASK_DENSITY",
    "density_lower_bound",
    "necessary_bandwidth",
    "sufficient_bandwidth_eq1",
    "sufficient_bandwidth_eq2",
    "schedule_harmonic",
    "specialize_single",
    "schedule_single_reduction",
    "specialize_double",
    "schedule_double_reduction",
    "schedule_two_tasks",
    "schedule_three_tasks",
    "schedule_exact",
    "is_feasible_exact",
    "schedule_greedy",
    "SchedulerEntry",
    "register_scheduler",
    "unregister_scheduler",
    "get_scheduler",
    "registered_schedulers",
    "scheduler_names",
    "plan_for",
    "solve",
    "solve_nice_conjunct",
    "SolveReport",
]
