"""Greedy EDF-style pinwheel scheduling with cycle detection.

The heuristic treats a unit-demand pinwheel task ``(1, b)`` as a
distance-constrained task whose *virtual deadline* is ``b - 1`` slots after
its last service, and always serves the task with the smallest remaining
slack (ties: smaller window, then declaration order).  The walk is
deterministic over a finite state space, so it either misses a deadline
(failure) or revisits a state; the slice between the two visits is a valid
cyclic schedule, which is verified before being returned.

General demands ``(a, b)`` are first normalized to ``(1, floor(b / a))``
via rule R3, which is sound (the normalized condition implies the original)
but may inflate density; the verification step checks the *original*
windows regardless.

EDF is not optimal for pinwheel systems (no greedy rule is), but it is
fast, needs no parameters, and in practice schedules the majority of
random instances with density well above the reduction schedulers'
guarantees - a useful portfolio member and a baseline the benchmarks
compare against.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.core.schedule import Schedule
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.core.conditions import PinwheelCondition

#: Default cap on slots simulated before concluding the walk is stuck.
DEFAULT_STEP_BUDGET = 1_000_000


def schedule_greedy(
    system: PinwheelSystem,
    *,
    step_budget: int = DEFAULT_STEP_BUDGET,
    verify: bool = True,
) -> Schedule:
    """Schedule by deterministic EDF walk + state-recurrence cycle cut.

    Raises
    ------
    SchedulingError
        If a virtual deadline is missed or the step budget is exhausted
        before a state recurs (for valid inputs the walk must recur within
        ``prod b_i`` steps, so the budget only bites on huge instances).
    """
    tasks = system.tasks
    if not tasks:
        raise SchedulingError("cannot schedule an empty system")
    normalized = [t.normalized() for t in tasks]
    windows = [t.b for t in normalized]
    idents = [t.ident for t in normalized]
    n = len(normalized)

    # Tie-breaking matters when several deadlines align.  No single rule
    # dominates (EDF is not optimal for pinwheel systems), so the walk is
    # attempted with a small portfolio of deterministic variants:
    # rarer-task-first, frequent-task-first, and staggered initial phases
    # that desynchronize the deadlines of equal windows.
    variants: list[tuple[int, list[int]]] = [
        (-1, [0] * n),
        (+1, [0] * n),
        (-1, [min(i, windows[i] - 1) for i in range(n)]),
    ]

    last_error: SchedulingError | None = None
    for sign, initial in variants:
        try:
            return _walk(
                tasks, windows, idents, sign, initial, step_budget, verify
            )
        except SchedulingError as error:
            last_error = error
    assert last_error is not None
    raise last_error


def _walk(
    tasks,
    windows: list[int],
    idents: list,
    sign: int,
    initial: list[int],
    step_budget: int,
    verify: bool,
) -> Schedule:
    """One deterministic EDF walk; see :func:`schedule_greedy`."""
    n = len(windows)

    def pick(since: list[int]) -> int:
        best = None
        best_key = None
        for i in range(n):
            key = (windows[i] - 1 - since[i], sign * windows[i], i)
            if best_key is None or key < best_key:
                best, best_key = i, key
        assert best is not None
        return best

    since = list(initial)
    seen: dict[tuple[int, ...], int] = {tuple(since): 0}
    owners: list[int] = []

    for step in range(step_budget):
        chosen = pick(since)
        owners.append(chosen)
        for i in range(n):
            if i == chosen:
                since[i] = 0
            else:
                since[i] += 1
                if since[i] >= windows[i]:
                    raise SchedulingError(
                        f"greedy EDF missed the window of task "
                        f"{idents[i]!r} (window {windows[i]}, normalized "
                        f"from ({tasks[i].a}, {tasks[i].b})) at slot "
                        f"{step}"
                    )
        state = tuple(since)
        if state in seen:
            start = seen[state]
            cycle = owners[start : step + 1]
            schedule = Schedule(idents[index] for index in cycle)
            if verify:
                verify_schedule(
                    schedule,
                    [
                        PinwheelCondition(t.ident, t.a, t.b)
                        for t in tasks
                    ],
                )
            return schedule
        seen[state] = step + 1
    raise SchedulingError(
        f"greedy EDF exhausted its step budget ({step_budget}) without "
        f"a recurring state"
    )


from repro.core.registry import register_scheduler

register_scheduler(
    "greedy",
    applicable=lambda system: len(system) >= 1,
    cost=30,
    description="deterministic EDF walk with state-recurrence cycle cut",
)(schedule_greedy)
