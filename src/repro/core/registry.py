"""A pluggable registry of pinwheel schedulers.

Every scheduler in the library self-registers here (at the bottom of its
defining module) with a *name*, an *applicability predicate*, a *cost
hint*, and a *completeness flag*.  The portfolio front-end
(:func:`repro.core.solver.solve`) is a thin policy over this registry:

* ``policy="auto"`` - the registry's applicable entries in cost order,
  truncated after the first *complete* scheduler (a complete scheduler
  decides feasibility outright on its domain, so trying anything after it
  is pointless).  This reproduces the classic routing exactly: two/three
  task systems go to their complete special-case solvers, everything else
  walks double-reduction -> single-reduction -> greedy (-> exact when the
  state space is small enough).
* ``policy="exact-first"`` - the exhaustive search first (when the
  instance is small enough for it), then the auto chain.
* ``policy=("greedy", "exact")`` - an explicit sequence of registered
  names, tried in the given order; inapplicable entries are skipped and
  recorded in the report.

Third-party schedulers plug in with :func:`register_scheduler`; the CLI's
``repro schedulers`` subcommand prints the live registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TYPE_CHECKING

from repro.errors import SpecificationError
from repro.core.task import PinwheelSystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.schedule import Schedule

#: A scheduler callable: ``scheduler(system, *, verify=True) -> Schedule``.
SchedulerFn = Callable[..., "Schedule"]

#: Built-in policy names accepted by :func:`plan_for` and ``solve``.
POLICIES = ("auto", "exact-first")


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduler.

    Attributes
    ----------
    name:
        Registry key; also the ``method`` string in
        :class:`repro.core.solver.SolveReport`.
    scheduler:
        The callable, with signature ``scheduler(system, *, verify=True)``.
    applicable:
        Capability predicate: can this scheduler be *attempted* on the
        system at all (it may still fail on feasible-but-hard instances
        unless ``complete``).
    cost:
        Ordering hint for the auto policy - cheaper entries are tried
        first.
    complete:
        True when the scheduler *decides* feasibility on every system it
        is applicable to: failure proves infeasibility, so the auto plan
        stops after it.
    description:
        One line for ``repro schedulers``.
    """

    name: str
    scheduler: SchedulerFn
    applicable: Callable[[PinwheelSystem], bool]
    cost: int
    complete: bool
    description: str

    def __str__(self) -> str:
        kind = "complete" if self.complete else "heuristic"
        return f"{self.name} (cost {self.cost}, {kind}): {self.description}"


_REGISTRY: dict[str, SchedulerEntry] = {}

#: Modules whose import registers the built-in schedulers.
_BUILTIN_MODULES = (
    "repro.core.two_task",
    "repro.core.three_task",
    "repro.core.double_reduction",
    "repro.core.single_reduction",
    "repro.core.greedy",
    "repro.core.exact",
    "repro.core.harmonic",
)


_populated = False


def _ensure_populated() -> None:
    """Import the built-in scheduler modules (registration side effect)."""
    global _populated
    if _populated:
        return
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _populated = True


def register_scheduler(
    name: str,
    *,
    applicable: Callable[[PinwheelSystem], bool],
    cost: int,
    complete: bool = False,
    description: str = "",
) -> Callable[[SchedulerFn], SchedulerFn]:
    """Register a scheduler under ``name``; returns a pass-through decorator.

    Raises :class:`SpecificationError` on duplicate names - use
    :func:`unregister_scheduler` first to replace an entry deliberately.
    """
    if not name or not isinstance(name, str):
        raise SpecificationError(f"scheduler name must be a non-empty str: {name!r}")

    def decorate(func: SchedulerFn) -> SchedulerFn:
        if name in _REGISTRY:
            raise SpecificationError(
                f"scheduler {name!r} is already registered"
            )
        _REGISTRY[name] = SchedulerEntry(
            name=name,
            scheduler=func,
            applicable=applicable,
            cost=cost,
            complete=complete,
            description=description,
        )
        return func

    return decorate


def unregister_scheduler(name: str) -> None:
    """Remove ``name`` from the registry (for tests and replacements)."""
    if name not in _REGISTRY:
        raise SpecificationError(f"scheduler {name!r} is not registered")
    del _REGISTRY[name]


def get_scheduler(name: str) -> SchedulerEntry:
    """Look a registered scheduler up by name.

    Raises :class:`SpecificationError` for unknown names, listing the
    registered ones.
    """
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SpecificationError(
            f"unknown scheduler {name!r} (registered: {known})"
        ) from None


def scheduler_names() -> tuple[str, ...]:
    """All registered names, in auto-policy (cost) order."""
    return tuple(entry.name for entry in registered_schedulers())


def registered_schedulers() -> tuple[SchedulerEntry, ...]:
    """All registered entries, sorted by ``(cost, name)``."""
    _ensure_populated()
    return tuple(
        sorted(_REGISTRY.values(), key=lambda e: (e.cost, e.name))
    )


def _auto_plan(system: PinwheelSystem) -> tuple[SchedulerEntry, ...]:
    plan: list[SchedulerEntry] = []
    for entry in registered_schedulers():
        if not entry.applicable(system):
            continue
        plan.append(entry)
        if entry.complete:
            break
    return tuple(plan)


def plan_for(
    system: PinwheelSystem,
    policy: str | Sequence[str] = "auto",
) -> tuple[SchedulerEntry, ...]:
    """The ordered scheduler entries a policy would try on ``system``.

    ``policy`` is ``"auto"``, ``"exact-first"``, or a sequence of
    registered scheduler names.  Explicit sequences are returned verbatim
    (the caller decides how to treat inapplicable entries); the built-in
    policies pre-filter by applicability.
    """
    if isinstance(policy, str):
        if policy == "auto":
            return _auto_plan(system)
        if policy == "exact-first":
            exact = get_scheduler("exact")
            plan = [e for e in _auto_plan(system) if e.name != "exact"]
            if exact.applicable(system):
                plan.insert(0, exact)
            return tuple(plan)
        raise SpecificationError(
            f"unknown scheduler policy {policy!r} "
            f"(expected one of {POLICIES} or a sequence of names)"
        )
    names: Iterable[str] = tuple(policy)
    if not names:
        raise SpecificationError("scheduler policy list must not be empty")
    return tuple(get_scheduler(name) for name in names)
