"""Double-integer reduction scheduler ``Sx`` (after Chan & Chin [12, 13]).

Chan & Chin improved the single-number reduction by specializing windows
onto a richer base set.  We implement the reduction in their spirit:

* **Base set** ``B(x) = {x * 2**j} U {3x * 2**j}`` - two interleaved
  geometric chains.  Consecutive elements of ``B(x)`` are within a factor
  of 3/2 of each other from ``2x`` upward, so specialization loses far less
  density than the pure power-of-two chain.
* **Exact scheduling of specialized systems** by hierarchical residue-class
  *tree* allocation.  A node represents a residue class ``(offset mod M)``.
  A node of modulus ``x * 2**j`` may be split into two children of modulus
  ``x * 2**(j+1)`` or three children of modulus ``3x * 2**j``; a node of
  modulus ``3x * 2**j`` may only be split by two.  Along any root-to-leaf
  path at most one 3-split occurs, so every modulus stays inside ``B(x)``.
* **Base search**: all bases at which some window specializes exactly are
  tried in order of increasing specialized density.

The scheduler is *sound by construction + verification*: residue classes
give exact window counts, and the final schedule is verified against the
original windows.  The paper uses Chan & Chin as a black box "density <=
7/10 implies schedulable"; the test suite and
``benchmarks/bench_scheduler_thresholds.py`` validate this implementation
at that operating point on randomized instances (see DESIGN.md,
Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.errors import SchedulingError, SpecificationError
from repro.core.schedule import Schedule
from repro.core.task import PinwheelSystem, PinwheelTask
from repro.core.verify import verify_schedule
from repro.core.conditions import PinwheelCondition

#: The Chan & Chin density bound the paper quotes (Section 3.1).
CHAN_CHIN_BOUND = Fraction(7, 10)


def double_specialize_window(window: int, base: int) -> int:
    """Largest element of ``B(base)`` that is at most ``window``."""
    if window < base:
        raise SpecificationError(
            f"window {window} smaller than base {base}"
        )
    best = base
    value = base
    while value <= window:
        best = value
        value *= 2
    value = 3 * base
    while value <= window:
        best = max(best, value)
        value *= 2
    return best


def specialize_double(system: PinwheelSystem, base: int) -> PinwheelSystem:
    """Specialize every window of ``system`` onto ``B(base)``."""
    return PinwheelSystem(
        PinwheelTask(t.ident, t.a, double_specialize_window(t.b, base))
        for t in system.tasks
    )


def candidate_bases(windows: Iterable[int]) -> list[int]:
    """Bases at which some window specializes exactly onto ``B(x)``.

    The specialized density, as a function of the base ``x``, changes only
    where some ``b_i`` equals ``x * 2**j`` or ``3x * 2**j``; it therefore
    suffices to try ``b_i >> j`` and ``(b_i // 3) >> j``.
    """
    window_list = list(windows)
    if not window_list:
        raise SpecificationError("no windows supplied")
    smallest = min(window_list)
    bases: set[int] = set()
    for window in window_list:
        for seed in (window, window // 3):
            value = seed
            while value >= 1:
                if value <= smallest:
                    bases.add(value)
                value //= 2
    return sorted(bases)


@dataclass(frozen=True, slots=True)
class _Node:
    """A residue class in the allocation tree.

    ``offset mod modulus``; ``tri`` records whether a 3-split occurred on
    the path from the root (at most one is allowed).
    """

    offset: int
    modulus: int
    tri: bool

    def split(self, factor: int) -> list["_Node"]:
        tri = self.tri or factor == 3
        return [
            _Node(self.offset + k * self.modulus, factor * self.modulus, tri)
            for k in range(factor)
        ]


def _classify(window: int, base: int) -> tuple[int, bool]:
    """Return ``(level j, tri?)`` such that ``window = base * 2**j`` or
    ``3 * base * 2**j``."""
    for tri, stem in ((False, base), (True, 3 * base)):
        value, level = stem, 0
        while value <= window:
            if value == window:
                return level, tri
            value *= 2
            level += 1
    raise SpecificationError(
        f"window {window} is not in the base set of {base}"
    )


def allocate_double(
    system: PinwheelSystem, base: int
) -> dict[object, list[tuple[int, int]]]:
    """Allocate residue classes for a ``B(base)``-specialized system.

    Level-by-level greedy: at level ``j`` the pure pool (modulus
    ``base * 2**j``) first serves pure demand; tri demand (modulus
    ``3 * base * 2**j``) is served from the tri pool, converting as few
    pure nodes as possible (each conversion 3-splits one pure node).
    Leftovers are 2-split into the next level's pools.

    Raises :class:`SchedulingError` when a pool runs dry.
    """
    demands_pure: dict[int, list[PinwheelTask]] = {}
    demands_tri: dict[int, list[PinwheelTask]] = {}
    max_level = 0
    for task in system.tasks:
        level, tri = _classify(task.b, base)
        target = demands_tri if tri else demands_pure
        target.setdefault(level, []).append(task)
        max_level = max(max_level, level)

    pool_pure: list[_Node] = [_Node(off, base, False) for off in range(base)]
    pool_tri: list[_Node] = []
    assignments: dict[object, list[tuple[int, int]]] = {}

    def take(pool: list[_Node], tasks: list[PinwheelTask], kind: str) -> None:
        for task in tasks:
            if len(pool) < task.a:
                raise SchedulingError(
                    f"double reduction (base {base}): {kind} pool exhausted "
                    f"for task {task.ident!r} (needs {task.a}, "
                    f"has {len(pool)})"
                )
            taken = [pool.pop() for _ in range(task.a)]
            assignments[task.ident] = [
                (node.offset, node.modulus) for node in taken
            ]

    for level in range(max_level + 1):
        take(pool_pure, demands_pure.get(level, []), "pure")
        tri_need = sum(t.a for t in demands_tri.get(level, []))
        shortfall = tri_need - len(pool_tri)
        if shortfall > 0:
            conversions = -(-shortfall // 3)  # ceil division
            if conversions > len(pool_pure):
                raise SchedulingError(
                    f"double reduction (base {base}): cannot convert "
                    f"{conversions} pure nodes at level {level} "
                    f"(only {len(pool_pure)} free)"
                )
            for _ in range(conversions):
                pool_tri.extend(pool_pure.pop().split(3))
        take(pool_tri, demands_tri.get(level, []), "tri")
        if level < max_level:
            pool_pure = [
                child for node in pool_pure for child in node.split(2)
            ]
            pool_tri = [
                child for node in pool_tri for child in node.split(2)
            ]
    return assignments


def _cycle_length(assignments: dict[object, list[tuple[int, int]]]) -> int:
    """Least common multiple of every assigned modulus."""
    import math

    length = 1
    for classes in assignments.values():
        for _, modulus in classes:
            length = math.lcm(length, modulus)
    return length


def schedule_double_reduction(
    system: PinwheelSystem, *, base: int | None = None, verify: bool = True
) -> Schedule:
    """Schedule via double-integer reduction.

    Tries candidate bases in order of increasing specialized density until
    the tree allocation succeeds; verifies the result against the original
    windows.  Raises :class:`SchedulingError` if every base fails.
    """
    if base is not None:
        bases = [base]
    else:
        ranked = []
        for candidate in candidate_bases(t.b for t in system.tasks):
            try:
                density = specialize_double(system, candidate).density
            except SpecificationError:
                # Some window shrank below its requirement at this base.
                continue
            if density <= 1:
                ranked.append((density, candidate))
        ranked.sort()
        bases = [candidate for _, candidate in ranked]
        if not bases:
            raise SchedulingError(
                f"double reduction: no base brings specialized density "
                f"under 1 (original density {float(system.density):.4f})"
            )

    last_error: SchedulingError | None = None
    for chosen in bases:
        try:
            specialized = specialize_double(system, chosen)
        except SpecificationError as error:
            last_error = SchedulingError(
                f"double reduction: base {chosen} unusable: {error}"
            )
            continue
        if specialized.density > 1:
            continue
        try:
            assignments = allocate_double(specialized, chosen)
        except SchedulingError as error:
            last_error = error
            continue
        schedule = Schedule.from_residue_classes(
            _cycle_length(assignments), assignments
        )
        if verify:
            verify_schedule(
                schedule,
                [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
            )
        return schedule
    raise last_error or SchedulingError(
        "double reduction: all candidate bases failed"
    )


from repro.core.registry import register_scheduler

register_scheduler(
    "double-reduction",
    applicable=lambda system: len(system) >= 1,
    cost=10,
    description=(
        "double-integer reduction (Chan & Chin; guaranteed below "
        "density 7/10)"
    ),
)(schedule_double_reduction)
