"""Canonical content hashing for pinwheel instances.

Parameter sweeps routinely vary fault and traffic knobs while leaving
the scheduled pinwheel instance untouched; a *fingerprint* is what lets
a solve-cache notice that.  Two requirements shape the encoding:

* **stable across processes** - the hash must not depend on interpreter
  state (``PYTHONHASHSEED``, dict insertion order, object identity), so
  the canonical form is JSON with sorted keys and compact separators,
  digested with SHA-256;
* **order-preserving over tasks** - schedulers break ties by declaration
  order, so two systems with the same tasks in different orders may
  legitimately solve to different schedules.  ``system_fingerprint``
  therefore hashes the task *sequence*, not the task *set*.

:func:`fingerprint` is the generic entry point (any JSON-able payload,
plus tuples, :class:`~fractions.Fraction`, and arbitrary hashables via
tagged encodings); :func:`system_fingerprint` applies it to a
:class:`~repro.core.task.PinwheelSystem`.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Any

from repro.core.task import PinwheelSystem


def _canonical(payload: Any) -> Any:
    """Reduce ``payload`` to plain JSON types, deterministically.

    Dicts keep their keys (stringified) and rely on ``sort_keys`` for
    order independence; sequences stay ordered; non-JSON scalars get a
    tagged list encoding so e.g. the string ``"1/2"`` and the fraction
    ``1/2`` cannot collide.
    """
    if payload is None or isinstance(payload, (str, int, float, bool)):
        return payload
    if isinstance(payload, Fraction):
        return ["fraction", payload.numerator, payload.denominator]
    if isinstance(payload, dict):
        return {str(key): _canonical(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [_canonical(item) for item in payload]
    if isinstance(payload, (set, frozenset)):
        return ["set", sorted(repr(item) for item in payload)]
    if isinstance(payload, bytes):
        return ["bytes", payload.hex()]
    # Task identities may be arbitrary hashables (virtual-task tuples are
    # handled above); repr is deterministic for the remaining stdlib
    # scalars worth supporting.
    return ["repr", repr(payload)]


def canonical_json(payload: Any) -> str:
    """The canonical JSON text :func:`fingerprint` digests."""
    return json.dumps(
        _canonical(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def system_fingerprint(system: PinwheelSystem) -> str:
    """Content fingerprint of a pinwheel system.

    Hashes the ordered ``(ident, a, b)`` sequence: task order is part of
    the instance identity because scheduler tie-breaking is
    order-sensitive (see the module docstring).
    """
    return fingerprint(
        ["pinwheel-system", [[t.ident, t.a, t.b] for t in system.tasks]]
    )
