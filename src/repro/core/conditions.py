"""The condition language of Section 4.1.

The paper defines two kinds of conditions on a broadcast program ``P``:

* the *pinwheel task condition* ``pc(i, a, b)``: the service sequence
  ``P:i`` contains at least ``a`` out of every ``b`` consecutive slots;
* the *broadcast file condition* ``bc(i, m, d)`` for a file of ``m`` blocks
  with latency vector ``d = [d(0), ..., d(r)]``: ``P:i`` contains at least
  ``m + j`` out of every ``d(j)`` consecutive slots, for every ``j``.

Equation 3 of the paper states the fundamental expansion::

    bc(i, m, d)  ==  AND_j  pc(i, m + j, d(j))

which :meth:`BroadcastCondition.expand` implements.

A *conjunct* is a set of conditions that must hold simultaneously.  A
conjunct of pinwheel conditions is *nice* (Definition 1) when no task
carries more than one condition - the form the Chan & Chin scheduler needs.
Nice conjuncts produced by rules R4/R5 introduce *virtual* tasks that are
``map``-ped back onto the original file; :class:`NiceConjunct` carries that
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import SpecificationError
from repro.core.task import PinwheelSystem, PinwheelTask

ConditionKey = Hashable


@dataclass(frozen=True, slots=True)
class PinwheelCondition:
    """``pc(task, a, b)``: at least ``a`` service slots in every ``b``."""

    task: ConditionKey
    a: int
    b: int

    def __post_init__(self) -> None:
        if not isinstance(self.a, int) or not isinstance(self.b, int):
            raise SpecificationError(
                f"pc parameters must be integers: a={self.a!r}, b={self.b!r}"
            )
        if self.a < 1:
            raise SpecificationError(f"pc requirement a={self.a} must be >= 1")
        if self.b < self.a:
            raise SpecificationError(
                f"pc({self.task!r}, {self.a}, {self.b}) is unsatisfiable: "
                f"window smaller than requirement"
            )

    @property
    def density(self) -> Fraction:
        """Exact density ``a / b``."""
        return Fraction(self.a, self.b)

    def as_task(self) -> PinwheelTask:
        """The pinwheel task whose scheduling satisfies this condition."""
        return PinwheelTask(self.task, self.a, self.b)

    def __str__(self) -> str:
        return f"pc({self.task}, {self.a}, {self.b})"


@dataclass(frozen=True, slots=True)
class BroadcastCondition:
    """``bc(file, m, d)``: the generalized fault-tolerant file condition.

    ``d[j]`` is the largest tolerable latency (in slots) when ``j`` faults
    occur; under ``j`` faults the client needs ``m + j`` distinct block
    slots within ``d[j]``.  The vector length minus one is the maximum
    number of tolerated faults ``r``.
    """

    file: ConditionKey
    m: int
    d: tuple[int, ...]

    def __init__(
        self, file: ConditionKey, m: int, d: Iterable[int]
    ) -> None:
        object.__setattr__(self, "file", file)
        object.__setattr__(self, "m", m)
        object.__setattr__(self, "d", tuple(d))
        self._validate()

    def _validate(self) -> None:
        if not isinstance(self.m, int) or self.m < 1:
            raise SpecificationError(
                f"bc({self.file!r}): size m={self.m!r} must be a positive int"
            )
        if not self.d:
            raise SpecificationError(
                f"bc({self.file!r}): latency vector must be non-empty"
            )
        for j, latency in enumerate(self.d):
            if not isinstance(latency, int) or latency < 1:
                raise SpecificationError(
                    f"bc({self.file!r}): d({j})={latency!r} must be a "
                    f"positive int"
                )
            if latency < self.m + j:
                raise SpecificationError(
                    f"bc({self.file!r}): d({j})={latency} cannot accommodate "
                    f"{self.m + j} block slots"
                )

    @property
    def r(self) -> int:
        """Maximum number of tolerated faults (``len(d) - 1``)."""
        return len(self.d) - 1

    def expand(self) -> tuple[PinwheelCondition, ...]:
        """Equation 3: ``bc(i, m, d) == AND_j pc(i, m + j, d(j))``."""
        return tuple(
            PinwheelCondition(self.file, self.m + j, latency)
            for j, latency in enumerate(self.d)
        )

    @property
    def density_lower_bound(self) -> Fraction:
        """``max_j (m + j) / d(j)`` - no implying nice conjunct can be
        less dense than this (Section 4.2)."""
        return max(
            Fraction(self.m + j, latency) for j, latency in enumerate(self.d)
        )

    def __str__(self) -> str:
        vector = ", ".join(str(x) for x in self.d)
        return f"bc({self.file}, {self.m}, [{vector}])"


def pc(task: ConditionKey, a: int, b: int) -> PinwheelCondition:
    """Shorthand constructor matching the paper's ``pc(i, a, b)``."""
    return PinwheelCondition(task, a, b)


def bc(file: ConditionKey, m: int, d: Iterable[int]) -> BroadcastCondition:
    """Shorthand constructor matching the paper's ``bc(i, m, d)``."""
    return BroadcastCondition(file, m, d)


def virtual_key(file: ConditionKey, index: int) -> tuple:
    """The identity of the ``index``-th virtual helper task for ``file``.

    Rules R4/R5 and TR2 introduce tasks that are scheduled separately but
    broadcast blocks of the same file (the paper's ``map(i', i)``).  We keep
    them distinguishable - and reliably mappable back - by using structured
    tuples rather than string mangling.
    """
    return ("virtual", file, index)


@dataclass(frozen=True)
class NiceConjunct:
    """A nice conjunct of pinwheel conditions plus its task-to-file map.

    Attributes
    ----------
    conditions:
        One :class:`PinwheelCondition` per (possibly virtual) task.
    mapping:
        Maps every task key appearing in ``conditions`` to the file it
        broadcasts for.  Real tasks map to themselves.
    provenance:
        Human-readable note on which transformation produced the conjunct
        (e.g. ``"TR1"``; useful in benches reproducing Examples 2-6).
    """

    conditions: tuple[PinwheelCondition, ...]
    mapping: Mapping[ConditionKey, ConditionKey] = field(default_factory=dict)
    provenance: str = ""

    def __post_init__(self) -> None:
        keys = [cond.task for cond in self.conditions]
        if len(set(keys)) != len(keys):
            duplicates = {k for k in keys if keys.count(k) > 1}
            raise SpecificationError(
                f"conjunct is not nice: duplicated task keys {duplicates!r}"
            )
        mapping = dict(self.mapping)
        for key in keys:
            mapping.setdefault(key, key)
        object.__setattr__(self, "mapping", mapping)

    @property
    def density(self) -> Fraction:
        """Total density of the conjunct (the Chan & Chin test quantity)."""
        return sum((c.density for c in self.conditions), Fraction(0))

    def file_of(self, task: ConditionKey) -> ConditionKey:
        """The file a (possibly virtual) task broadcasts for."""
        return self.mapping[task]

    def as_system(self) -> PinwheelSystem:
        """The pinwheel task system to hand to a scheduler."""
        return PinwheelSystem(c.as_task() for c in self.conditions)

    def merge(self, other: "NiceConjunct") -> "NiceConjunct":
        """Union of two nice conjuncts over disjoint task-key sets."""
        mine = {c.task for c in self.conditions}
        theirs = {c.task for c in other.conditions}
        overlap = mine & theirs
        if overlap:
            raise SpecificationError(
                f"cannot merge conjuncts sharing task keys {overlap!r}"
            )
        provenance = "; ".join(p for p in (self.provenance, other.provenance) if p)
        return NiceConjunct(
            self.conditions + other.conditions,
            {**self.mapping, **other.mapping},
            provenance,
        )

    def __iter__(self) -> Iterator[PinwheelCondition]:
        return iter(self.conditions)

    def __len__(self) -> int:
        return len(self.conditions)

    def __str__(self) -> str:
        parts = []
        for cond in self.conditions:
            target = self.mapping[cond.task]
            if target != cond.task:
                parts.append(f"{cond} ^ map({cond.task}, {target})")
            else:
                parts.append(str(cond))
        return " ^ ".join(parts)
