"""Portfolio front-end for pinwheel scheduling.

``solve`` is the one function most callers need: it routes a pinwheel
system through the library's schedulers in a sensible order, verifies the
winning schedule against the *original* conditions, and reports which
method succeeded (benches use the report to compare methods).

Routing:

1. density > 1 - provably infeasible, rejected immediately;
2. one task - trivial (serve every slot);
3. two tasks - the complete balanced-word scheduler;
4. three tasks - the Lin & Lin portfolio (exact-first);
5. otherwise - double-integer reduction (Chan & Chin operating point,
   density <= 7/10), then single-number reduction, then greedy EDF, then -
   for small instances - the exact search as a last resort.

Every returned schedule has been verified; a
:class:`repro.errors.SchedulingError` from ``solve`` means "this portfolio
gave up", never "unverified result".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleError, SchedulingError
from repro.core.conditions import NiceConjunct, PinwheelCondition
from repro.core.double_reduction import schedule_double_reduction
from repro.core.exact import schedule_exact
from repro.core.greedy import schedule_greedy
from repro.core.schedule import Schedule
from repro.core.single_reduction import schedule_single_reduction
from repro.core.task import PinwheelSystem
from repro.core.three_task import schedule_three_tasks
from repro.core.two_task import schedule_two_tasks
from repro.core.verify import verify_schedule

#: Instances whose unit-demand state space is below this may try exact.
_EXACT_PRODUCT_LIMIT = 2_000_000


@dataclass(frozen=True)
class SolveReport:
    """Outcome of :func:`solve`.

    Attributes
    ----------
    schedule:
        The verified cyclic schedule.
    method:
        Name of the scheduler that produced it.
    attempts:
        ``(method, outcome)`` pairs in the order tried; the last entry is
        the winner.
    """

    schedule: Schedule
    method: str
    attempts: tuple[tuple[str, str], ...]

    def __str__(self) -> str:
        return (
            f"solved by {self.method} "
            f"(cycle length {self.schedule.cycle_length}, "
            f"{len(self.attempts)} attempt(s))"
        )


def _methods_for(system: PinwheelSystem) -> list[tuple[str, object]]:
    if len(system) == 2:
        return [("two-task", schedule_two_tasks)]
    if len(system) == 3:
        return [("three-task", schedule_three_tasks)]
    methods: list[tuple[str, object]] = [
        ("double-reduction", schedule_double_reduction),
        ("single-reduction", schedule_single_reduction),
        ("greedy", schedule_greedy),
    ]
    product = 1
    for task in system.tasks:
        product *= task.normalized().b
    if all(t.a == 1 for t in system.tasks) and product <= _EXACT_PRODUCT_LIMIT:
        methods.append(("exact", schedule_exact))
    return methods


def solve(system: PinwheelSystem, *, verify: bool = True) -> SolveReport:
    """Schedule ``system`` with the portfolio, returning a report.

    Raises
    ------
    InfeasibleError
        When density exceeds 1, or a complete sub-solver proves
        infeasibility.
    SchedulingError
        When every portfolio member fails (instance may or may not be
        feasible).
    """
    if len(system) == 0:
        raise SchedulingError("cannot schedule an empty system")
    if system.density > 1:
        raise InfeasibleError(
            f"system density {float(system.density):.4f} exceeds 1",
            density=float(system.density),
        )

    if len(system) == 1:
        task = system.tasks[0]
        schedule = Schedule([task.ident])
        if verify:
            verify_schedule(
                schedule, [PinwheelCondition(task.ident, task.a, task.b)]
            )
        return SolveReport(schedule, "trivial", (("trivial", "ok"),))

    attempts: list[tuple[str, str]] = []
    for name, scheduler in _methods_for(system):
        try:
            schedule = scheduler(system, verify=verify)
        except InfeasibleError:
            raise
        except SchedulingError as error:
            attempts.append((name, f"failed: {error}"))
            continue
        attempts.append((name, "ok"))
        return SolveReport(schedule, name, tuple(attempts))
    raise SchedulingError(
        "portfolio exhausted: "
        + "; ".join(f"{name} -> {outcome}" for name, outcome in attempts)
    )


def solve_nice_conjunct(
    conjunct: NiceConjunct, *, verify: bool = True
) -> SolveReport:
    """Schedule the task system of a nice conjunct.

    The schedule's owners are the conjunct's (possibly virtual) task keys;
    use :func:`repro.core.verify.project_to_files` to fold helpers back
    onto files.
    """
    return solve(conjunct.as_system(), verify=verify)
