"""Portfolio front-end for pinwheel scheduling.

``solve`` is the one function most callers need: it routes a pinwheel
system through the library's schedulers, verifies the winning schedule
against the *original* conditions, and reports which method succeeded
(benches use the report to compare methods).

Since the scheduler-registry redesign, the routing is a thin *policy*
over :mod:`repro.core.registry`:

* ``policy="auto"`` (the default) reproduces the classic portfolio:

  1. density > 1 - provably infeasible, rejected immediately;
  2. one task - trivial (serve every slot);
  3. two tasks - the complete balanced-word scheduler;
  4. three tasks - the Lin & Lin portfolio (exact-first);
  5. otherwise - double-integer reduction (Chan & Chin operating point,
     density <= 7/10), then single-number reduction, then greedy EDF,
     then - for small unit-demand instances - the exact search as a last
     resort (harmonic residue allocation closes the chain-shaped tail).

* ``policy="exact-first"`` front-loads the exhaustive search on instances
  small enough for it;
* an explicit sequence of registered names (``policy=("greedy",)``) is
  tried in the given order, skipping inapplicable entries.

Every returned schedule has been verified; a
:class:`repro.errors.SchedulingError` from ``solve`` means "this portfolio
gave up", never "unverified result".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InfeasibleError, SchedulingError
from repro.obs import telemetry as obs
from repro.core.conditions import NiceConjunct, PinwheelCondition
from repro.core.registry import plan_for
from repro.core.schedule import Schedule
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule


@dataclass(frozen=True)
class SolveReport:
    """Outcome of :func:`solve`.

    Attributes
    ----------
    schedule:
        The verified cyclic schedule.
    method:
        Name of the scheduler that produced it.
    attempts:
        ``(method, outcome)`` pairs in the order tried; the last entry is
        the winner.
    """

    schedule: Schedule
    method: str
    attempts: tuple[tuple[str, str], ...]

    def __str__(self) -> str:
        return (
            f"solved by {self.method} "
            f"(cycle length {self.schedule.cycle_length}, "
            f"{len(self.attempts)} attempt(s))"
        )


def solve(
    system: PinwheelSystem,
    *,
    verify: bool = True,
    policy: str | Sequence[str] = "auto",
) -> SolveReport:
    """Schedule ``system`` with the portfolio, returning a report.

    Parameters
    ----------
    system:
        The pinwheel system to schedule.
    verify:
        Verify the winning schedule against the original conditions
        (default; disable only in tight inner loops).
    policy:
        ``"auto"``, ``"exact-first"``, or an explicit sequence of
        registered scheduler names (see :mod:`repro.core.registry`).
        Empty and single-task systems are handled before the policy is
        consulted.

    Raises
    ------
    InfeasibleError
        When density exceeds 1, or a complete sub-solver proves
        infeasibility.
    SchedulingError
        When every portfolio member fails (instance may or may not be
        feasible).
    """
    if len(system) == 0:
        raise SchedulingError("cannot schedule an empty system")
    if system.density > 1:
        raise InfeasibleError(
            f"system density {float(system.density):.4f} exceeds 1",
            density=float(system.density),
        )

    if len(system) == 1:
        task = system.tasks[0]
        schedule = Schedule([task.ident])
        if verify:
            verify_schedule(
                schedule, [PinwheelCondition(task.ident, task.a, task.b)]
            )
        return SolveReport(schedule, "trivial", (("trivial", "ok"),))

    # Built-in policies pre-filter by applicability; explicit name lists
    # are returned verbatim, so inapplicable entries are skipped here
    # (and recorded) rather than crashing inside a scheduler.
    prefiltered = isinstance(policy, str)
    conditions = [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks]
    attempts: list[tuple[str, str]] = []
    tel = obs.current()
    with obs.span("solve", tasks=len(system)):
        for entry in plan_for(system, policy):
            if not prefiltered and not entry.applicable(system):
                attempts.append((entry.name, "skipped: not applicable"))
                continue
            # Per-scheduler attempt accounting; the perf_counter pair only
            # runs when a registry is active, so the disabled path is the
            # plain scheduler call.
            begin = time.perf_counter() if tel is not None else 0.0
            try:
                # Schedulers skip their own (redundant) final verification;
                # the winner is verified once below, so the guarantee holds
                # uniformly for built-ins and third-party registrations.
                schedule = entry.scheduler(system, verify=False)
            except InfeasibleError:
                if tel is not None:
                    _record_attempt(tel, entry.name, "infeasible", begin)
                raise
            except SchedulingError as error:
                if tel is not None:
                    _record_attempt(tel, entry.name, "failed", begin)
                attempts.append((entry.name, f"failed: {error}"))
                continue
            if tel is not None:
                _record_attempt(tel, entry.name, "ok", begin)
            if verify:
                verify_schedule(schedule, conditions)
            attempts.append((entry.name, "ok"))
            return SolveReport(schedule, entry.name, tuple(attempts))
    raise SchedulingError(
        "portfolio exhausted: "
        + "; ".join(f"{name} -> {outcome}" for name, outcome in attempts)
    )


def _record_attempt(
    tel: "obs.Telemetry", scheduler: str, outcome: str, begin: float
) -> None:
    tel.inc("solve.attempts", scheduler=scheduler)
    if outcome == "ok":
        tel.inc("solve.successes", scheduler=scheduler)
    else:
        tel.inc("solve.failures", scheduler=scheduler, outcome=outcome)
    tel.observe(
        "solve.seconds",
        time.perf_counter() - begin,
        bounds=obs.TIME_BOUNDS,
        unit="s",
        stability="volatile",
        scheduler=scheduler,
    )


def solve_nice_conjunct(
    conjunct: NiceConjunct,
    *,
    verify: bool = True,
    policy: str | Sequence[str] = "auto",
) -> SolveReport:
    """Schedule the task system of a nice conjunct.

    The schedule's owners are the conjunct's (possibly virtual) task keys;
    use :func:`repro.core.verify.project_to_files` to fold helpers back
    onto files.
    """
    return solve(conjunct.as_system(), verify=verify, policy=policy)
