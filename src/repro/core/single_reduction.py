"""Single-number reduction scheduler ``Sa`` (Holte et al. [19]).

The idea behind the original pinwheel scheduler: pick a *base* ``x`` and
specialize every window ``b`` down to the largest ``x * 2**j <= b``.  The
specialized windows form a divisibility chain, which
:mod:`repro.core.harmonic` schedules exactly whenever the specialized
density is at most 1.  Since specialization at most halves a window
(``b' > b / 2``), the specialized density is strictly less than twice the
original - so **any system with density at most 1/2 is schedulable** this
way, the classical Holte et al. guarantee the paper cites in Section 3.1.

Beyond the textbook ``x = min_i b_i`` choice, :func:`best_single_base`
searches all candidate bases of the form ``b_i / 2**j`` (the only places
the specialized density can change) and keeps the best, which schedules
many systems well above density 1/2 in practice.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.errors import SchedulingError, SpecificationError
from repro.core.harmonic import schedule_harmonic, specialize_to_chain
from repro.core.schedule import Schedule
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.core.conditions import PinwheelCondition

#: Density below which ``Sa`` is guaranteed to succeed.
GUARANTEED_DENSITY = Fraction(1, 2)


def candidate_bases(windows: Iterable[int]) -> list[int]:
    """All bases at which some window specializes exactly.

    For base ``x``, window ``b`` maps to ``x * 2**floor(log2(b / x))``; as
    ``x`` sweeps downward the image changes only when ``x`` passes some
    ``b_i / 2**j``.  It therefore suffices to try integer candidates
    ``b_i >> j`` no larger than the smallest window.
    """
    window_list = list(windows)
    if not window_list:
        raise SpecificationError("no windows supplied")
    smallest = min(window_list)
    bases: set[int] = set()
    for window in window_list:
        value = window
        while value >= 1:
            if value <= smallest:
                bases.add(value)
            value //= 2
    return sorted(bases, reverse=True)


def specialize_single(system: PinwheelSystem, base: int) -> PinwheelSystem:
    """Specialize every window to the chain ``{base * 2**j}``.

    Exposed separately so benches can inspect the density inflation that
    the reduction causes.
    """
    return specialize_to_chain(system, base)


def best_single_base(system: PinwheelSystem) -> tuple[int, Fraction]:
    """The base minimizing specialized density, with that density.

    Bases for which some window would shrink below its task's requirement
    (making the specialized task unsatisfiable) are skipped.
    """
    best: tuple[int, Fraction] | None = None
    for base in candidate_bases(t.b for t in system.tasks):
        try:
            density = specialize_single(system, base).density
        except SpecificationError:
            continue
        if best is None or density < best[1]:
            best = (base, density)
    if best is None:
        raise SchedulingError(
            "single-number reduction: no base yields a satisfiable "
            "specialization (some window shrinks below its requirement)"
        )
    return best


def schedule_single_reduction(
    system: PinwheelSystem, *, base: int | None = None, verify: bool = True
) -> Schedule:
    """Schedule via single-number reduction.

    Parameters
    ----------
    system:
        The pinwheel system.  Guaranteed to succeed when density <= 1/2;
        often succeeds above that thanks to the base search.
    base:
        Force a specific chain base (otherwise the best base is searched).
    verify:
        Verify the schedule against the *original* windows before returning
        (the specialized windows are strictly stronger, so this should
        never fail; it guards against implementation bugs).

    Raises
    ------
    SchedulingError
        If no candidate base yields a specialized density <= 1.
    """
    if base is not None:
        try:
            chosen, density = base, specialize_single(system, base).density
        except SpecificationError as error:
            raise SchedulingError(
                f"single-number reduction: base {base} is unusable: {error}"
            ) from error
    else:
        chosen, density = best_single_base(system)
    if density > 1:
        raise SchedulingError(
            f"single-number reduction failed: best specialized density "
            f"{float(density):.4f} > 1 (original "
            f"{float(system.density):.4f}; guarantee holds only below "
            f"{float(GUARANTEED_DENSITY)})"
        )
    specialized = specialize_single(system, chosen)
    schedule = schedule_harmonic(specialized, verify=False)
    if verify:
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )
    return schedule


from repro.core.registry import register_scheduler

register_scheduler(
    "single-reduction",
    applicable=lambda system: len(system) >= 1,
    cost=20,
    description=(
        "single-number reduction with base search (guaranteed below "
        "density 1/2)"
    ),
)(schedule_single_reduction)
