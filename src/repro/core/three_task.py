"""Three-task pinwheel scheduling (after Lin & Lin [27]).

Lin & Lin designed an algorithm that schedules every three-task pinwheel
system with density at most 5/6, and that bound is tight: the paper's
Example 1 exhibits ``{(1, 2), (1, 3), (1, n)}`` - density ``5/6 + 1/n`` -
which is infeasible for every finite ``n`` (slots alternate between tasks
1 and 2 forever, starving task 3).

We implement the same *contract* as a verified portfolio (see DESIGN.md,
Substitutions): an exact lasso search decides small instances outright,
and the reduction schedulers cover large-window instances.  The exact
component makes this module *complete* (never wrong, in either direction)
whenever the state budget suffices - which includes every witness family
instance used in the paper and the test suite.

The density-5/6 frontier is validated empirically in
``benchmarks/bench_scheduler_thresholds.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import InfeasibleError, SchedulingError, SpecificationError
from repro.core.double_reduction import schedule_double_reduction
from repro.core.exact import is_feasible_exact, schedule_exact
from repro.core.greedy import schedule_greedy
from repro.core.schedule import Schedule
from repro.core.single_reduction import schedule_single_reduction
from repro.core.task import PinwheelSystem

#: Lin & Lin's guaranteed density bound for three tasks.
LIN_LIN_BOUND = Fraction(5, 6)

#: Upper bound on ``prod b_i`` for which the exact search is attempted.
_EXACT_PRODUCT_LIMIT = 3_000_000


def _exact_is_tractable(system: PinwheelSystem) -> bool:
    if all(t.a == 1 for t in system.tasks):
        product = 1
        for task in system.tasks:
            product *= task.b
        return product <= _EXACT_PRODUCT_LIMIT
    # Masked search: 2**(sum of windows) states - only tiny windows.
    return sum(t.b for t in system.tasks) <= 42


def schedule_three_tasks(
    system: PinwheelSystem, *, verify: bool = True
) -> Schedule:
    """Schedule a three-task system.

    Complete (schedules or proves infeasible) when the exact search is
    tractable; otherwise falls back to the reduction schedulers and greedy
    EDF, raising :class:`SchedulingError` if all fail.

    Raises
    ------
    InfeasibleError
        If density exceeds 1, or the exact search proves infeasibility.
    """
    if len(system) != 3:
        raise SpecificationError(
            f"schedule_three_tasks needs exactly 3 tasks, got {len(system)}"
        )
    if system.density > 1:
        raise InfeasibleError(
            f"three-task system with density {float(system.density):.4f} "
            f"> 1 is infeasible",
            density=float(system.density),
        )

    failures: list[str] = []
    if _exact_is_tractable(system):
        try:
            if not is_feasible_exact(system):
                raise InfeasibleError(
                    f"three-task system {system!r} proven infeasible by "
                    f"exact search",
                    density=float(system.density),
                )
            return schedule_exact(system, verify=verify)
        except SchedulingError as error:  # budget - fall through
            failures.append(f"exact: {error}")

    for name, scheduler in (
        ("double-reduction", schedule_double_reduction),
        ("single-reduction", schedule_single_reduction),
        ("greedy", schedule_greedy),
    ):
        try:
            return scheduler(system, verify=verify)
        except SchedulingError as error:
            failures.append(f"{name}: {error}")

    hint = (
        " (density exceeds the Lin & Lin 5/6 guarantee)"
        if system.density > LIN_LIN_BOUND
        else ""
    )
    raise SchedulingError(
        f"three-task portfolio failed{hint}: " + "; ".join(failures)
    )


from repro.core.registry import register_scheduler

register_scheduler(
    "three-task",
    applicable=lambda system: len(system) == 3,
    cost=0,
    complete=True,
    description="Lin & Lin exact-first portfolio for three-task systems",
)(schedule_three_tasks)
