"""Density thresholds and the bandwidth bounds of Equations 1 and 2.

Section 3.2 of the paper reduces broadcast-disk bandwidth allocation to
pinwheel scheduling: given files ``F_i`` of ``m_i`` blocks with latency
``T_i`` seconds, a channel of bandwidth ``B`` blocks/second supports the
system iff the pinwheel system ``{(i, m_i, B * T_i)}`` is schedulable.
Since Chan & Chin schedule every system with density at most 7/10,

* ``B >= ceil(10/7 * sum m_i / T_i)``  (Equation 1) is *sufficient*, and
* ``B >= sum m_i / T_i`` is trivially *necessary*,

so Equation 1 overshoots the optimum by at most 10/7 - 1 ~ 43%.  With
fault tolerance (``r_i`` extra block slots per window), Equation 2 reads
``B = ceil(10/7 * sum (m_i + r_i) / T_i)``.

All bounds are computed in exact rational arithmetic.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import SpecificationError
from repro.core.conditions import BroadcastCondition

#: Chan & Chin [12]: any pinwheel system with density <= 7/10 is schedulable.
CHAN_CHIN_DENSITY = Fraction(7, 10)

#: Holte et al. [19]: single-number reduction handles density <= 1/2.
SINGLE_REDUCTION_DENSITY = Fraction(1, 2)

#: Lin & Lin [27]: three-task systems with density <= 5/6 are schedulable.
THREE_TASK_DENSITY = Fraction(5, 6)

#: Holte et al. [20]: two-task systems with density <= 1 are schedulable.
TWO_TASK_DENSITY = Fraction(1, 1)


def density_lower_bound(condition: BroadcastCondition) -> Fraction:
    """``max_j (m + j) / d(j)``: no nice conjunct implying ``bc`` can be
    lighter (Section 4.2).  Function form of
    :attr:`repro.core.conditions.BroadcastCondition.density_lower_bound`.
    """
    return condition.density_lower_bound


def _validate_files(
    files: Sequence[tuple[int, int]],
) -> None:
    if not files:
        raise SpecificationError("at least one file is required")
    for index, (m, latency) in enumerate(files):
        if m < 1:
            raise SpecificationError(
                f"file #{index}: size {m} must be >= 1 block"
            )
        if latency < 1:
            raise SpecificationError(
                f"file #{index}: latency {latency} must be >= 1"
            )


def necessary_bandwidth(files: Iterable[tuple[int, int]]) -> Fraction:
    """The trivial lower bound ``sum m_i / T_i`` (blocks per second).

    ``files`` is an iterable of ``(m_i, T_i)`` pairs: size in blocks and
    latency in seconds.  Any feasible bandwidth is at least this (each file
    alone consumes ``m_i / T_i`` of the channel).
    """
    file_list = list(files)
    _validate_files(file_list)
    return sum(
        (Fraction(m, latency) for m, latency in file_list), Fraction(0)
    )


def sufficient_bandwidth_eq1(files: Iterable[tuple[int, int]]) -> int:
    """Equation 1: ``B = ceil(10/7 * sum m_i / T_i)`` is sufficient.

    At this bandwidth the induced pinwheel system has density at most 7/10,
    so the Chan & Chin scheduler (and this library's portfolio) lays the
    blocks out successfully.
    """
    file_list = list(files)
    bound = necessary_bandwidth(file_list) * Fraction(10, 7)
    return math.ceil(bound)


def sufficient_bandwidth_eq2(
    files: Iterable[tuple[int, int, int]],
) -> int:
    """Equation 2: fault-tolerant bandwidth with per-file fault budgets.

    ``files`` is an iterable of ``(m_i, r_i, T_i)`` triples; each file must
    deliver ``m_i + r_i`` block slots per window so that any ``r_i`` losses
    still leave ``m_i`` blocks - the AIDA property.  Returns
    ``ceil(10/7 * sum (m_i + r_i) / T_i)``.
    """
    file_list = list(files)
    if not file_list:
        raise SpecificationError("at least one file is required")
    total = Fraction(0)
    for index, (m, r, latency) in enumerate(file_list):
        if m < 1 or r < 0 or latency < 1:
            raise SpecificationError(
                f"file #{index}: need m >= 1, r >= 0, T >= 1; "
                f"got ({m}, {r}, {latency})"
            )
        total += Fraction(m + r, latency)
    return math.ceil(total * Fraction(10, 7))


def bandwidth_overhead(files: Iterable[tuple[int, int]]) -> Fraction:
    """Relative overhead of Equation 1 over the necessary bound.

    ``(B_eq1 - B_necessary) / B_necessary``; the paper's "at most 43%
    extra bandwidth" claim is ``<= 3/7`` plus the effect of the final
    ceiling.  Benches sweep this across random file sets.
    """
    file_list = list(files)
    necessary = necessary_bandwidth(file_list)
    sufficient = sufficient_bandwidth_eq1(file_list)
    return (Fraction(sufficient) - necessary) / necessary


def induced_pinwheel_density(
    files: Iterable[tuple[int, int]], bandwidth: int
) -> Fraction:
    """Density of the pinwheel system induced at a given bandwidth.

    File ``(m_i, T_i)`` becomes task ``(m_i, B * T_i)``; the density is
    ``sum m_i / (B * T_i)``.  Scheduling is guaranteed once this is at most
    :data:`CHAN_CHIN_DENSITY`.
    """
    if bandwidth < 1:
        raise SpecificationError(f"bandwidth must be >= 1, got {bandwidth}")
    return necessary_bandwidth(files) / bandwidth
