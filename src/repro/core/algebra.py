"""The pinwheel algebra: rules R0-R5 of Figure 8.

Each rule has the shape ``LHS <= RHS``: any broadcast program satisfying
the right-hand side also satisfies the left-hand side.  In this module the
rules are *derivation* functions: given the stronger condition(s) you hold
(the RHS), they derive weaker conditions you may claim (the LHS).  Read
``rule_r1(p, n)`` as "from ``pc(a, b)`` derive ``pc(na, nb)``".

The rules (``a, b, x, y, n`` non-negative integers):

* **R0** ``pc(i, a - x, b + y) <= pc(i, a, b)`` - fewer slots in a larger
  window.
* **R1** ``pc(i, na, nb) <= pc(i, a, b)`` - a window of ``nb`` splits into
  ``n`` disjoint windows of ``b``.
* **R2** ``pc(i, a - x, b - x) <= pc(i, a, b)`` - dropping ``x`` slots from
  a window loses at most ``x`` services.
* **R3** ``pc(i, a, b) <= pc(i, 1, floor(b / a))`` - the unit-demand
  strengthening (R1 + R0); exposed as :func:`strengthen_r3`.
* **R4** ``pc(i, a, b) ^ pc(i, a + x, b + y) <=
  pc(i, a, b) ^ pc(i', x, b + y) ^ map(i', i)`` - offload the surplus onto
  a *virtual* task ``i'`` broadcasting the same file.
* **R5** ``pc(i, a, b) ^ pc(i, na, nb - x) <=
  pc(i, a, b) ^ pc(i', x, nb) ^ map(i', i)`` - the sharper split used by
  Example 4.

:func:`pc_implies` decides rule-derivable implication between two single
pinwheel conditions (compositions of R0, R1, R2), which is what the
transformation strategy uses to discard dominated conjuncts and to find
single-condition merges (Examples 5 and 6).
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.core.conditions import (
    ConditionKey,
    PinwheelCondition,
    virtual_key,
)


def rule_r0(cond: PinwheelCondition, x: int = 0, y: int = 0) -> PinwheelCondition:
    """R0: from ``pc(a, b)`` derive ``pc(a - x, b + y)``."""
    if x < 0 or y < 0:
        raise SpecificationError(f"R0 needs x, y >= 0 (got x={x}, y={y})")
    return PinwheelCondition(cond.task, cond.a - x, cond.b + y)


def rule_r1(cond: PinwheelCondition, n: int) -> PinwheelCondition:
    """R1: from ``pc(a, b)`` derive ``pc(na, nb)``."""
    if n < 1:
        raise SpecificationError(f"R1 needs n >= 1 (got {n})")
    return PinwheelCondition(cond.task, n * cond.a, n * cond.b)


def rule_r2(cond: PinwheelCondition, x: int) -> PinwheelCondition:
    """R2: from ``pc(a, b)`` derive ``pc(a - x, b - x)``."""
    if x < 0:
        raise SpecificationError(f"R2 needs x >= 0 (got {x})")
    return PinwheelCondition(cond.task, cond.a - x, cond.b - x)


def rule_r3(cond: PinwheelCondition) -> PinwheelCondition:
    """R3 read left-to-right: the weakest unit-demand condition implying
    nothing new - included for completeness; use :func:`strengthen_r3`
    for the useful direction."""
    return PinwheelCondition(cond.task, 1, cond.b // cond.a)


def strengthen_r3(cond: PinwheelCondition) -> PinwheelCondition:
    """R3 read right-to-left: ``pc(1, floor(b / a))`` implies ``pc(a, b)``.

    This is the strengthening schedulers use to reach unit demands.  Note
    it is the same arithmetic as :func:`rule_r3`; the two names document
    the direction of use.
    """
    return PinwheelCondition(cond.task, 1, cond.b // cond.a)


def rule_r4(
    base: PinwheelCondition, target: PinwheelCondition, helper_index: int = 0
) -> tuple[PinwheelCondition, dict[ConditionKey, ConditionKey]]:
    """R4: split ``target = pc(i, a + x, b + y)`` given ``base = pc(i, a, b)``.

    Returns the helper condition ``pc(i', x, b + y)`` on a fresh virtual
    task plus the ``map(i', i)`` entry.  Holding ``base`` and the helper
    implies ``target``.
    """
    if base.task != target.task:
        raise SpecificationError(
            f"R4 needs both conditions on one task "
            f"({base.task!r} != {target.task!r})"
        )
    x = target.a - base.a
    y = target.b - base.b
    if x < 1 or y < 0:
        raise SpecificationError(
            f"R4 needs target.a > base.a and target.b >= base.b "
            f"(got {base} vs {target})"
        )
    helper_task = virtual_key(base.task, helper_index)
    helper = PinwheelCondition(helper_task, x, target.b)
    return helper, {helper_task: base.task}


def rule_r5(
    base: PinwheelCondition, target: PinwheelCondition, helper_index: int = 0
) -> tuple[PinwheelCondition | None, dict[ConditionKey, ConditionKey]]:
    """R5: split ``target = pc(i, na, nb - x)`` given ``base = pc(i, a, b)``.

    Chooses the smallest ``n`` with ``n * base.a >= target.a``; the
    combination of ``base`` and the returned helper ``pc(i', x, n * b)``
    implies ``pc(n*a, n*b - x)`` which implies ``target`` by R0.  When
    ``x <= 0`` the target is already implied by ``base`` alone (R1 + R0)
    and the helper is ``None``.
    """
    if base.task != target.task:
        raise SpecificationError(
            f"R5 needs both conditions on one task "
            f"({base.task!r} != {target.task!r})"
        )
    n = -(-target.a // base.a)  # ceil
    x = n * base.b - target.b
    if x <= 0:
        return None, {}
    helper_task = virtual_key(base.task, helper_index)
    helper = PinwheelCondition(helper_task, x, n * base.b)
    return helper, {helper_task: base.task}


def pc_implies(strong: PinwheelCondition, weak: PinwheelCondition) -> bool:
    """Whether ``strong`` implies ``weak`` via compositions of R0/R1/R2.

    Both conditions must constrain the same task.  The derivable
    implications from ``pc(a, b)`` are exactly the conditions reachable as
    ``pc(na - x, nb - x + y)`` for ``n >= 1`` and ``x, y >= 0``; hence
    ``strong -> weak`` iff there exists ``n >= 1`` with::

        n * strong.a - max(0, n * strong.b - weak.b) >= weak.a

    Only finitely many ``n`` can help: once ``n * strong.a >= weak.a`` and
    growth in the ``max`` term outpaces ``strong.a`` per step the test is
    monotone, so we scan a small safe range.

    Note this is *rule-derivable* implication, the notion the paper
    manipulates - semantic implication between pinwheel conditions is a
    strictly larger (and much harder) relation.
    """
    if strong.task != weak.task:
        return False
    # Beyond this n the left side can only lose ground when b-shrinking
    # dominates, and below it na may still be too small - scan all.
    limit = max(1, -(-(weak.a + weak.b) // strong.a)) + 2
    for n in range(1, limit + 1):
        slack = n * strong.a - max(0, n * strong.b - weak.b)
        if slack >= weak.a:
            return True
    return False


def remove_dominated(
    conditions: list[PinwheelCondition],
) -> list[PinwheelCondition]:
    """Drop conditions implied (via R0/R1/R2) by another in the list.

    This implements the Example 5 simplification (``d(j) = d(j+1)`` makes
    one conjunct redundant) in its general form.  Order is preserved.
    """
    kept: list[PinwheelCondition] = []
    for index, cond in enumerate(conditions):
        dominated = False
        for other_index, other in enumerate(conditions):
            if other_index == index or other == cond:
                # Equal conditions: keep the first occurrence only.
                if other == cond and other_index < index:
                    dominated = True
                    break
                continue
            if pc_implies(other, cond):
                dominated = True
                break
        if not dominated:
            kept.append(cond)
    return kept
