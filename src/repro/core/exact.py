"""Exact pinwheel feasibility and schedule construction (small instances).

Pinwheel schedulability is decidable: a feasible instance always admits a
*cyclic* schedule, because the scheduler's relevant memory is finite.  We
search that memory graph directly:

* **Unit demands** (every ``a_i = 1``): the state is the vector of "slots
  since last service", each bounded by ``b_i``, so the state space has size
  ``prod b_i``.
* **General demands**: the state keeps, per task, a bitmask of its services
  in the last ``b_i - 1`` slots, so window counts can be checked exactly.
  The space is ``prod 2**(b_i - 1)`` - workable only for small windows.

Both searches start from the *dominating* state (everything just served /
full history), which is safe: if any infinite schedule exists from any
state, one exists from the dominating state, and in a finite graph an
infinite path must traverse a cycle.  The DFS therefore looks for a lasso;
the cycle part, read off as slot owners, *is* a valid periodic schedule.

This module is the ground truth the rest of the test suite leans on: it is
exponential, guarded by an explicit state budget, and never wrong.  Example
1's infeasible family ``{(1,2), (1,3), (1,n)}`` is rejected by exhausting
the (tiny) state graph without finding a cycle.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchedulingError
from repro.core.schedule import IDLE, Schedule
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.core.conditions import PinwheelCondition

#: Default cap on distinct states explored before giving up.
DEFAULT_STATE_BUDGET = 500_000


class _BudgetExceeded(Exception):
    """Internal signal: the search was inconclusive within the budget."""


def _search_unit(
    windows: Sequence[int], budget: int
) -> list[int] | None:
    """Lasso search for unit-demand systems.

    Returns the cycle as a list of task indices (-1 = idle), or ``None``
    when the reachable graph provably contains no cycle.  Raises
    :class:`_BudgetExceeded` when the budget runs out first.

    State: tuple of "slots since last service" (0 = just served).  A task
    whose counter would reach ``b_i`` is overdue; states with two or more
    overdue tasks are dead.  Serving is always at least as good as idling,
    so idle transitions are only taken when no task is urgent and add
    nothing; we omit them (any schedule with idle slots remains valid when
    idle slots are given to an arbitrary task, since extra service never
    violates a pinwheel condition).
    """
    n = len(windows)
    start = tuple([0] * n)
    # DFS colors: missing = white, False = on stack (gray), True = done.
    color: dict[tuple[int, ...], bool] = {}
    # Path of (state, chosen_task) pairs currently on the DFS stack.
    path: list[tuple[tuple[int, ...], int]] = []
    path_index: dict[tuple[int, ...], int] = {}

    def choices(state: tuple[int, ...]) -> list[int]:
        urgent = [i for i in range(n) if state[i] == windows[i] - 1]
        if len(urgent) > 1:
            return []
        if len(urgent) == 1:
            return urgent
        # Explore most-constrained-first: smallest remaining slack.
        order = sorted(range(n), key=lambda i: windows[i] - state[i])
        return order

    # Iterative DFS with explicit frames: (state, iterator over choices).
    stack: list[tuple[tuple[int, ...], list[int], int]] = []
    stack.append((start, choices(start), 0))
    color[start] = False
    path.append((start, -1))
    path_index[start] = 0

    while stack:
        state, options, cursor = stack.pop()
        if cursor >= len(options):
            color[state] = True
            path.pop()
            del path_index[state]
            continue
        stack.append((state, options, cursor + 1))
        served = options[cursor]
        nxt = tuple(
            0 if i == served else state[i] + 1 for i in range(n)
        )
        if any(nxt[i] >= windows[i] for i in range(n)):
            continue
        if nxt in path_index:
            # Lasso found: the cycle runs from nxt's position to the end.
            cycle_states = path[path_index[nxt] :] + [(nxt, served)]
            return [chosen for _, chosen in cycle_states[1:]]
        if nxt in color:
            continue  # black: explored, leads to no cycle
        if len(color) >= budget:
            raise _BudgetExceeded
        color[nxt] = False
        path.append((nxt, served))
        path_index[nxt] = len(path) - 1
        stack.append((nxt, choices(nxt), 0))
    return None


def _search_masked(
    requirements: Sequence[int], windows: Sequence[int], budget: int
) -> list[int] | None:
    """Lasso search for general demands via service-history bitmasks.

    State: per task, the services in its last ``b_i - 1`` slots (bit 0 =
    most recent).  Serving task ``k`` at the current slot completes a
    window of ``b_i`` slots for every task; each must contain at least
    ``a_i`` services.
    """
    n = len(windows)
    masks_full = [(1 << (w - 1)) - 1 for w in windows]
    start = tuple(masks_full)

    def step(state: tuple[int, ...], served: int) -> tuple[int, ...] | None:
        new = []
        for i in range(n):
            bit = 1 if i == served else 0
            window_count = bin(state[i]).count("1") + bit
            if window_count < requirements[i]:
                return None
            if windows[i] == 1:
                new.append(0)
            else:
                new.append(((state[i] << 1) | bit) & masks_full[i])
        return tuple(new)

    color: dict[tuple[int, ...], bool] = {start: False}
    path: list[tuple[tuple[int, ...], int]] = [(start, -1)]
    path_index: dict[tuple[int, ...], int] = {start: 0}
    order = sorted(range(n), key=lambda i: windows[i])
    stack: list[tuple[tuple[int, ...], int]] = [(start, 0)]

    while stack:
        state, cursor = stack.pop()
        if cursor >= n:
            color[state] = True
            path.pop()
            del path_index[state]
            continue
        stack.append((state, cursor + 1))
        served = order[cursor]
        nxt = step(state, served)
        if nxt is None:
            continue
        if nxt in path_index:
            cycle_states = path[path_index[nxt] :] + [(nxt, served)]
            return [chosen for _, chosen in cycle_states[1:]]
        if nxt in color:
            continue
        if len(color) >= budget:
            raise _BudgetExceeded
        color[nxt] = False
        path.append((nxt, served))
        path_index[nxt] = len(path) - 1
        stack.append((nxt, 0))
    return None


def _run_search(
    system: PinwheelSystem, budget: int
) -> list[int] | None:
    tasks = system.tasks
    if all(t.a == 1 for t in tasks):
        return _search_unit([t.b for t in tasks], budget)
    return _search_masked(
        [t.a for t in tasks], [t.b for t in tasks], budget
    )


def is_feasible_exact(
    system: PinwheelSystem, *, state_budget: int = DEFAULT_STATE_BUDGET
) -> bool:
    """Decide feasibility exactly (small instances).

    Returns ``True``/``False`` with certainty; raises
    :class:`SchedulingError` if the state budget is exhausted first (the
    answer is then unknown - *not* infeasible).
    """
    if system.density > 1:
        return False
    try:
        return _run_search(system, state_budget) is not None
    except _BudgetExceeded:
        raise SchedulingError(
            f"exact search inconclusive: state budget {state_budget} "
            f"exhausted"
        ) from None


def schedule_exact(
    system: PinwheelSystem,
    *,
    state_budget: int = DEFAULT_STATE_BUDGET,
    verify: bool = True,
) -> Schedule:
    """Construct a cyclic schedule by exhaustive lasso search.

    Raises :class:`SchedulingError` when the instance is infeasible (with a
    definitive message) or when the budget runs out (inconclusive).
    """
    try:
        cycle = _run_search(system, state_budget)
    except _BudgetExceeded:
        raise SchedulingError(
            f"exact search inconclusive: state budget {state_budget} "
            f"exhausted"
        ) from None
    if cycle is None:
        raise SchedulingError(
            f"exact search: {system!r} is infeasible (no cycle in the "
            f"reachable state graph)"
        )
    idents = [t.ident for t in system.tasks]
    schedule = Schedule(
        IDLE if index < 0 else idents[index] for index in cycle
    )
    if verify:
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )
    return schedule


from repro.core.registry import register_scheduler

#: Unit-demand instances whose window product (the state-space bound) is
#: at or below this are small enough for the portfolio to try ``exact``.
EXACT_PRODUCT_LIMIT = 2_000_000


def _portfolio_applicable(system: PinwheelSystem) -> bool:
    if len(system) == 0 or any(t.a != 1 for t in system.tasks):
        return False
    product = 1
    for task in system.tasks:
        product *= task.normalized().b
        if product > EXACT_PRODUCT_LIMIT:
            return False
    return True


# Not registered complete: the applicability bound admits state spaces
# (up to EXACT_PRODUCT_LIMIT) larger than DEFAULT_STATE_BUDGET, so the
# search can end inconclusively - a later entry (harmonic on chains)
# must still get its turn.
register_scheduler(
    "exact",
    applicable=_portfolio_applicable,
    cost=40,
    description=(
        "exhaustive lasso search over the unit-demand state space "
        f"(window product <= {EXACT_PRODUCT_LIMIT:_})"
    ),
)(schedule_exact)
