"""Pinwheel task model.

A *pinwheel task* (Holte et al. [19]) is a pair of positive integers
``(a, b)`` attached to an identity ``ident``: the task must be allocated the
shared resource (here: the broadcast channel) for at least ``a`` out of
every ``b`` consecutive time slots.  ``a`` is the *computation requirement*
(for broadcast disks: the number of blocks a client must see) and ``b`` the
*window* (the latency budget measured in slots).

The *density* of a task is ``a / b``; the density of a system is the sum of
its tasks' densities.  Density at most one is necessary for schedulability
but - famously - not sufficient (Example 1 of the paper exhibits the
three-task family ``{(1,2), (1,3), (1,n)}`` that is infeasible for every
finite ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Iterator

from repro.errors import SpecificationError

#: Type alias for task identities.  Anything hashable works; broadcast-disk
#: code uses file names (strings) and the algebra uses virtual-task tuples.
TaskKey = Hashable


@dataclass(frozen=True, slots=True)
class PinwheelTask:
    """A single pinwheel task ``(ident, a, b)``.

    Parameters
    ----------
    ident:
        Task identity.  Must be hashable and unique within a system.
    a:
        Computation requirement - slots needed per window.  ``a >= 1``.
    b:
        Window size in slots.  ``b >= a`` (a task demanding more slots than
        its window can hold is unsatisfiable and rejected eagerly).
    """

    ident: TaskKey
    a: int
    b: int

    def __post_init__(self) -> None:
        if not isinstance(self.a, int) or not isinstance(self.b, int):
            raise SpecificationError(
                f"pinwheel task parameters must be integers, "
                f"got a={self.a!r}, b={self.b!r}"
            )
        if self.a < 1:
            raise SpecificationError(
                f"task {self.ident!r}: requirement a={self.a} must be >= 1"
            )
        if self.b < self.a:
            raise SpecificationError(
                f"task {self.ident!r}: window b={self.b} smaller than "
                f"requirement a={self.a} is unsatisfiable"
            )

    @property
    def density(self) -> Fraction:
        """Exact density ``a / b`` as a :class:`fractions.Fraction`."""
        return Fraction(self.a, self.b)

    def normalized(self) -> "PinwheelTask":
        """Reduce via rule R3 to an equivalent-or-stronger unit-demand task.

        ``pc(a, b)`` is implied by ``pc(1, floor(b / a))`` (paper rule R3),
        so scheduling the returned task suffices to satisfy this one.  The
        reduction may increase density (by strictly less than a factor of
        ``1 + a / b``); schedulers that only handle unit demands use it.
        """
        return PinwheelTask(self.ident, 1, self.b // self.a)

    def with_window(self, new_b: int) -> "PinwheelTask":
        """Return a copy whose window is *specialized* down to ``new_b``.

        Specializing (shrinking) the window only strengthens the constraint
        (rule R0 with ``x = 0`` read right-to-left), so a schedule for the
        specialized task satisfies the original.  Growing the window is
        rejected because it would weaken the constraint.
        """
        if new_b > self.b:
            raise SpecificationError(
                f"task {self.ident!r}: cannot specialize window {self.b} "
                f"up to {new_b}; specialization must shrink windows"
            )
        return PinwheelTask(self.ident, self.a, new_b)

    def __str__(self) -> str:
        return f"({self.ident}; {self.a}, {self.b})"


class PinwheelSystem:
    """An immutable collection of pinwheel tasks sharing one resource.

    Iteration order is the construction order.  Identities must be unique;
    the system computes exact densities with :class:`fractions.Fraction` so
    threshold comparisons (e.g. against 7/10) are never subject to float
    rounding.
    """

    __slots__ = ("_tasks", "_by_ident")

    def __init__(self, tasks: Iterable[PinwheelTask]) -> None:
        task_list = list(tasks)
        by_ident: dict[TaskKey, PinwheelTask] = {}
        for task in task_list:
            if not isinstance(task, PinwheelTask):
                raise SpecificationError(
                    f"PinwheelSystem takes PinwheelTask items, got {task!r}"
                )
            if task.ident in by_ident:
                raise SpecificationError(
                    f"duplicate task identity {task.ident!r}"
                )
            by_ident[task.ident] = task
        self._tasks: tuple[PinwheelTask, ...] = tuple(task_list)
        self._by_ident = by_ident

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], *, start_ident: int = 1
    ) -> "PinwheelSystem":
        """Build a system from ``(a, b)`` pairs with identities 1, 2, ...

        Mirrors the paper's notation where tasks are numbered from 1 (slot
        owner 0 denotes an idle slot).
        """
        tasks = [
            PinwheelTask(ident, a, b)
            for ident, (a, b) in enumerate(pairs, start=start_ident)
        ]
        return cls(tasks)

    @property
    def tasks(self) -> tuple[PinwheelTask, ...]:
        """The tasks, in construction order."""
        return self._tasks

    @property
    def density(self) -> Fraction:
        """Exact system density: the sum of task densities."""
        return sum((t.density for t in self._tasks), Fraction(0))

    def task(self, ident: TaskKey) -> PinwheelTask:
        """Look a task up by identity (raises ``KeyError`` if absent)."""
        return self._by_ident[ident]

    def idents(self) -> tuple[TaskKey, ...]:
        """All task identities, in construction order."""
        return tuple(t.ident for t in self._tasks)

    def normalized(self) -> "PinwheelSystem":
        """Apply rule R3 to every task (see :meth:`PinwheelTask.normalized`)."""
        return PinwheelSystem(t.normalized() for t in self._tasks)

    def is_density_feasible(self) -> bool:
        """Whether density <= 1 (necessary, not sufficient, for feasibility)."""
        return self.density <= 1

    def __iter__(self) -> Iterator[PinwheelTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, ident: TaskKey) -> bool:
        return ident in self._by_ident

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PinwheelSystem):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in self._tasks)
        return f"PinwheelSystem({{{inner}}}, density={float(self.density):.4f})"
