"""Exact scheduling of *harmonic* (divisibility-chain) pinwheel systems.

A window multiset ``{b_1 <= b_2 <= ... <= b_n}`` is a *divisibility chain*
when every window divides the next (equivalently: any two windows divide
one another in some order).  Such systems admit an elegant exact schedule
by **residue-class allocation**: giving task ``i`` exactly ``a_i`` residue
classes modulo ``b_i`` yields exactly ``a_i`` service slots in *every*
window of ``b_i`` consecutive slots - not just aligned windows - because
every residue class modulo ``b_i`` appears exactly once in any ``b_i``
consecutive integers.

Classes are allocated hierarchically: the free classes at modulus ``M`` are
split into ``M' / M`` classes each when moving to the next modulus ``M'``.
A counting argument shows the allocation succeeds whenever the system
density is at most 1, which is why the single-number and double-integer
reduction schedulers (Holte et al.; Chan & Chin) funnel arbitrary systems
into (trees of) chains.

This module is the workhorse behind ``Sa`` and ``Sx``; it is also useful
directly when broadcast-file latencies are naturally harmonic (e.g. all
powers-of-two multiples of a base period).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SchedulingError, SpecificationError
from repro.core.schedule import Schedule
from repro.core.task import PinwheelSystem, PinwheelTask
from repro.core.verify import verify_schedule
from repro.core.conditions import PinwheelCondition


def is_divisibility_chain(windows: Iterable[int]) -> bool:
    """Whether the window multiset forms a divisibility chain."""
    ordered = sorted(set(windows))
    return all(
        ordered[i + 1] % ordered[i] == 0 for i in range(len(ordered) - 1)
    )


def allocate_residue_classes(
    system: PinwheelSystem,
) -> dict[object, list[tuple[int, int]]]:
    """Allocate ``(offset, modulus)`` residue classes to each task.

    Requires the windows of ``system`` to form a divisibility chain.  Tasks
    with window ``b`` receive ``a`` classes modulo ``b``.  Raises
    :class:`SchedulingError` if the classes run out, which - by the counting
    argument - can only happen when density exceeds 1.

    Returns a mapping from task identity to its list of classes, suitable
    for :meth:`repro.core.schedule.Schedule.from_residue_classes`.
    """
    tasks = sorted(system.tasks, key=lambda t: t.b)
    if not tasks:
        raise SpecificationError("cannot allocate classes for empty system")
    windows = [t.b for t in tasks]
    if not is_divisibility_chain(windows):
        raise SpecificationError(
            f"windows {sorted(set(windows))} do not form a divisibility chain"
        )

    # Free residue classes at the current modulus, as offsets.
    modulus = windows[0]
    free: list[int] = list(range(modulus))
    assignments: dict[object, list[tuple[int, int]]] = {}

    for task in tasks:
        if task.b != modulus:
            # Refine every free class to the new (larger) modulus.
            factor = task.b // modulus
            free = [
                offset + k * modulus for offset in free for k in range(factor)
            ]
            modulus = task.b
        if len(free) < task.a:
            raise SchedulingError(
                f"residue classes exhausted at modulus {modulus}: task "
                f"{task.ident!r} needs {task.a}, only {len(free)} free "
                f"(system density {float(system.density):.4f})"
            )
        taken, free = free[: task.a], free[task.a :]
        assignments[task.ident] = [(offset, modulus) for offset in taken]
    return assignments


def schedule_harmonic(
    system: PinwheelSystem, *, verify: bool = True
) -> Schedule:
    """Schedule a divisibility-chain system exactly.

    The cycle length is the largest window.  Succeeds whenever density is
    at most 1 (and the chain property holds); the output is verified against
    every task's pinwheel condition before being returned.

    Examples
    --------
    >>> from repro.core.task import PinwheelSystem
    >>> system = PinwheelSystem.from_pairs([(1, 2), (1, 4), (1, 4)])
    >>> schedule = schedule_harmonic(system)
    >>> schedule.cycle_length
    4
    """
    if system.density > 1:
        raise SchedulingError(
            f"density {float(system.density):.4f} > 1 is infeasible"
        )
    assignments = allocate_residue_classes(system)
    cycle_length = max(t.b for t in system.tasks)
    schedule = Schedule.from_residue_classes(cycle_length, assignments)
    if verify:
        verify_schedule(
            schedule,
            [PinwheelCondition(t.ident, t.a, t.b) for t in system.tasks],
        )
    return schedule


def chain_specializations(windows: Sequence[int], base: int) -> list[int]:
    """Specialize each window down to the chain ``{base * 2**j}``.

    Returns the specialized windows (same order as input).  Every window
    must be at least ``base``.
    """
    specialized = []
    for window in windows:
        if window < base:
            raise SpecificationError(
                f"window {window} smaller than chain base {base}"
            )
        value = base
        while value * 2 <= window:
            value *= 2
        specialized.append(value)
    return specialized


def specialize_to_chain(
    system: PinwheelSystem, base: int
) -> PinwheelSystem:
    """Return the system with windows specialized to ``{base * 2**j}``.

    Specialization shrinks windows, so scheduling the returned system
    satisfies the original (rule R0).
    """
    new_windows = chain_specializations([t.b for t in system.tasks], base)
    return PinwheelSystem(
        PinwheelTask(t.ident, t.a, w)
        for t, w in zip(system.tasks, new_windows)
    )


from repro.core.registry import register_scheduler

register_scheduler(
    "harmonic",
    applicable=lambda system: len(system) >= 1
    and is_divisibility_chain(t.b for t in system.tasks),
    cost=50,
    complete=True,
    description=(
        "exact residue-class allocation for divisibility-chain windows"
    ),
)(schedule_harmonic)
