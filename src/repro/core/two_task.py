"""Two-task pinwheel scheduling: density <= 1 is sufficient (Holte et al.).

The paper cites Holte et al. [20] for the fact that *any* two-task pinwheel
system with density at most one is schedulable.  We give a constructive
proof via **balanced (mechanical/Sturmian) words**:

Let the tasks be ``(a1, b1)`` and ``(a2, b2)`` with
``a1/b1 + a2/b2 <= 1``, and let ``L = lcm(b1, b2)``.  Place task 1 on the
slots where the mechanical word of slope ``rho = k1 / L`` ticks, with
``k1 = a1 * L / b1`` (an integer since ``b1 | L``)::

    task 1 owns slot t  iff  floor((t + 1) * k1 / L) > floor(t * k1 / L)

and give task 2 every remaining slot.  Mechanical words are *balanced*:
every window of ``w`` slots contains ``floor(w * rho)`` or
``ceil(w * rho)`` ticks.  Hence:

* windows of ``b1`` contain at least ``floor(b1 * k1 / L) = a1`` task-1
  slots (exact because ``b1 * k1 / L = a1``), and
* windows of ``b2`` contain at least ``b2 - ceil(b2 * k1 / L)`` task-2
  slots, and ``ceil(b2 * a1 / b1) <= b2 - a2`` follows from density <= 1
  because ``b2 - a2`` is an integer.

Density greater than one is infeasible for any system, so this scheduler
is *complete* for two tasks - the only task count for which a density
threshold of exactly 1 is achievable (three tasks already drop to 5/6).
"""

from __future__ import annotations

import math

from repro.errors import InfeasibleError, SpecificationError
from repro.core.schedule import Schedule
from repro.core.task import PinwheelSystem
from repro.core.verify import verify_schedule
from repro.core.conditions import PinwheelCondition


def mechanical_word(ticks: int, length: int) -> list[bool]:
    """One period of the mechanical word with ``ticks`` ones in ``length``.

    Slot ``t`` is a tick iff ``floor((t+1) * ticks / length)`` exceeds
    ``floor(t * ticks / length)``.  The result is balanced: every window of
    ``w`` consecutive slots (cyclically) contains ``floor(w * ticks /
    length)`` or ``ceil(w * ticks / length)`` ticks.
    """
    if not 0 <= ticks <= length:
        raise SpecificationError(
            f"ticks={ticks} must lie in [0, length={length}]"
        )
    return [
        (t + 1) * ticks // length > t * ticks // length
        for t in range(length)
    ]


def schedule_two_tasks(
    system: PinwheelSystem, *, verify: bool = True
) -> Schedule:
    """Schedule a two-task system; complete for density <= 1.

    Raises
    ------
    InfeasibleError
        If density exceeds 1 (provably infeasible).
    SpecificationError
        If the system does not have exactly two tasks.
    """
    if len(system) != 2:
        raise SpecificationError(
            f"schedule_two_tasks needs exactly 2 tasks, got {len(system)}"
        )
    if system.density > 1:
        raise InfeasibleError(
            f"two-task system with density {float(system.density):.4f} > 1 "
            f"is infeasible",
            density=float(system.density),
        )
    first, second = system.tasks
    cycle_length = math.lcm(first.b, second.b)
    ticks = first.a * cycle_length // first.b
    word = mechanical_word(ticks, cycle_length)
    schedule = Schedule(
        first.ident if tick else second.ident for tick in word
    )
    if verify:
        verify_schedule(
            schedule,
            [
                PinwheelCondition(first.ident, first.a, first.b),
                PinwheelCondition(second.ident, second.a, second.b),
            ],
        )
    return schedule


from repro.core.registry import register_scheduler

register_scheduler(
    "two-task",
    applicable=lambda system: len(system) == 2,
    cost=0,
    complete=True,
    description="complete balanced-word scheduler for two-task systems",
)(schedule_two_tasks)
