"""Client-side retrieval from a broadcast program.

A client tunes in at slot ``start`` (its *phase*), watches the program go
by, and collects blocks of its target file until it can reconstruct:

* **with IDA** (``need_distinct``): any ``m`` *distinct* dispersed blocks
  suffice (Section 2.1) - the client caches block indices and finishes at
  the ``m``-th distinct one;
* **without IDA** (``need_specific``): the file is not dispersed, so the
  client must catch *every one* of blocks ``0 .. m-1``; a lost block can
  only be replaced by the same index coming round again - the regime of
  Lemma 1.

``retrieve`` is the single engine for both, parameterized by the
requirement; the fault model decides which slots are lost.

The client is an *occurrence walker*: instead of scanning the program
slot by slot, it jumps service-to-service along the program's
precomputed occurrence index (:attr:`BroadcastProgram.index`), asking
the fault model about whole batches of candidate slots at once.  The
retrieval outcome is bit-identical to the seed slot-walking loop (kept
in :mod:`repro.sim.reference` as the executable spec) because fault
decisions are deterministic per ``(seed, slot)`` and slots carrying
other files never affected the outcome.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence, TYPE_CHECKING

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.faults import FaultModel, NoFaults, lost_in

if TYPE_CHECKING:  # pragma: no cover
    from repro.bdisk.multichannel import ChannelSet

#: Occurrences per batched fault query; large enough to amortize the
#: batch call, small enough that an early finish wastes little work.
_FAULT_BATCH = 128


def default_horizon(program: BroadcastProgram, m_needed: int) -> int:
    """The default listening horizon: ``(m_needed + 2)`` data cycles.

    The single source of the convention shared by :func:`retrieve`,
    :func:`repro.sim.channel.broadcast_retrieve`, the caching client,
    and the traffic retriever - a client that has heard that many cycles
    without reconstructing gives up (the channel is effectively dark).
    """
    return (m_needed + 2) * program.data_cycle_length


@dataclass(frozen=True)
class RetrievalResult:
    """Outcome of one retrieval attempt.

    Attributes
    ----------
    file:
        The target file.
    start:
        The phase (slot at which the client began listening).
    completed:
        Whether the requirement was met within the horizon.
    finish_slot:
        Slot at which the final needed block arrived (None if incomplete).
    latency:
        ``finish_slot - start + 1`` in slots (None if incomplete).
    received:
        Distinct block indices received, in arrival order.
    lost_slots:
        Slots of the target file that the fault model clobbered.
    """

    file: str
    start: int
    completed: bool
    finish_slot: int | None
    latency: int | None
    received: tuple[int, ...]
    lost_slots: tuple[int, ...]

    def met_deadline(self, deadline_slots: int) -> bool:
        """Whether retrieval finished within ``deadline_slots`` slots."""
        return self.completed and self.latency is not None and (
            self.latency <= deadline_slots
        )


def retrieve(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    need_distinct: bool = True,
    max_slots: int | None = None,
) -> RetrievalResult:
    """Simulate one retrieval.

    Parameters
    ----------
    program:
        The broadcast program the server runs.
    file:
        Target file name.
    m_needed:
        Blocks required: with ``need_distinct``, any ``m`` distinct
        indices; otherwise every index in ``0 .. m_needed - 1``.
    start:
        The client's phase.
    faults:
        Channel fault model (default :class:`NoFaults`).
    need_distinct:
        IDA mode (True) vs specific-blocks mode (False).
    max_slots:
        Listening horizon: the client hears slots ``[start, start +
        horizon)``.  Defaults to ``(m_needed + 2)`` data cycles, after
        which the retrieval reports failure.  (The same convention as
        :func:`repro.sim.channel.broadcast_retrieve`.)

    Raises
    ------
    SimulationError
        If ``file`` is not in the program (the retrieval could never
        finish, which is a configuration error rather than a timeout).
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    horizon = (
        max_slots
        if max_slots is not None
        else default_horizon(program, m_needed)
    )
    end = start + horizon

    seen: set[int] = set()
    arrival_order: list[int] = []
    lost: list[int] = []
    wanted = set(range(m_needed)) if not need_distinct else None

    index = program.index
    occ_slots = index.occurrence_slots(file)
    occ_blocks = index.occurrence_blocks(file)
    count = len(occ_slots)
    cycle = index.data_cycle_length
    # Pointer (base, i): the next candidate occurrence is occurrence i of
    # the cycle copy starting at absolute slot `base`.
    quotient, within = divmod(start, cycle)
    base = quotient * cycle
    i = bisect_left(occ_slots, within)

    if isinstance(fault_model, NoFaults):
        # Fault-free fast path: no decisions to make, walk the arrays.
        seen_add = seen.add
        append = arrival_order.append
        while base < end:
            while i < count:
                slot = base + occ_slots[i]
                if slot >= end:
                    base = end  # horizon exhausted
                    break
                block = occ_blocks[i]
                i += 1
                if block not in seen:
                    seen_add(block)
                    append(block)
                done = (
                    len(seen) >= m_needed
                    if need_distinct
                    else wanted is not None and wanted <= seen
                )
                if done:
                    return RetrievalResult(
                        file=file,
                        start=start,
                        completed=True,
                        finish_slot=slot,
                        latency=slot - start + 1,
                        received=tuple(arrival_order),
                        lost_slots=(),
                    )
            else:
                base += cycle
                i = 0
    else:
        while base < end:
            # Gather the next batch of service slots inside the horizon
            # and decide their fates in one fault-model call.
            batch_slots: list[int] = []
            batch_blocks: list[int] = []
            while len(batch_slots) < _FAULT_BATCH:
                if i >= count:
                    base += cycle
                    i = 0
                    if base >= end:
                        break
                    continue
                slot = base + occ_slots[i]
                if slot >= end:
                    base = end
                    break
                batch_slots.append(slot)
                batch_blocks.append(occ_blocks[i])
                i += 1
            if not batch_slots:
                break
            decisions = lost_in(fault_model, batch_slots)
            for slot, block, is_lost in zip(
                batch_slots, batch_blocks, decisions
            ):
                if is_lost:
                    lost.append(slot)
                    continue
                if block not in seen:
                    seen.add(block)
                    arrival_order.append(block)
                done = (
                    len(seen) >= m_needed
                    if need_distinct
                    else wanted is not None and wanted <= seen
                )
                if done:
                    return RetrievalResult(
                        file=file,
                        start=start,
                        completed=True,
                        finish_slot=slot,
                        latency=slot - start + 1,
                        received=tuple(arrival_order),
                        lost_slots=tuple(lost),
                    )
    return RetrievalResult(
        file=file,
        start=start,
        completed=False,
        finish_slot=None,
        latency=None,
        received=tuple(arrival_order),
        lost_slots=tuple(lost),
    )


@dataclass(frozen=True)
class MultiChannelRetrieval:
    """Outcome of one retrieval over a :class:`ChannelSet`.

    Attributes
    ----------
    file:
        The target file.
    start:
        The slot at which the client decided to retrieve (*before* any
        re-tuning).
    completed:
        Whether the requirement was met within the horizon.
    channel:
        The channel the client chose to listen on.
    switched:
        Whether choosing it required a re-tune (and paid the cost).
    finish_slot:
        Slot of the final needed block - or, when incomplete, the last
        slot of the exhausted listening horizon (the client is busy
        until then either way, which is what multi-channel callers need
        to advance their clocks; single-channel
        :class:`RetrievalResult` reports ``None`` instead).
    latency:
        ``finish_slot - start + 1``, tuning cost included (None if
        incomplete).
    received / lost_slots:
        As in :class:`RetrievalResult`, on the chosen channel.
    """

    file: str
    start: int
    completed: bool
    channel: int
    switched: bool
    finish_slot: int
    latency: int | None
    received: tuple[int, ...]
    lost_slots: tuple[int, ...]

    def met_deadline(self, deadline_slots: int) -> bool:
        """Whether retrieval finished within ``deadline_slots`` slots."""
        return self.completed and self.latency is not None and (
            self.latency <= deadline_slots
        )


def choose_channel(
    channels: "ChannelSet",
    file: str,
    m_needed: int,
    *,
    start: int,
    tuned: int,
    need_distinct: bool = True,
    max_slots: int | None = None,
    among: Sequence[int] | None = None,
) -> tuple[int, int, int, RetrievalResult]:
    """The channel a rational client listens on, and its probe.

    Deterministic choice rule shared by every walker (fast, reference,
    object engine, SoA engine) - they must agree bit-for-bit: score each
    candidate channel by its **fault-free** finish slot from the slot the
    client could start listening (``start``, plus the tuning cost when
    the candidate is not the currently tuned channel); completed probes
    beat exhausted ones, earlier finishes beat later ones, and ties go
    to the lowest channel index.  Faults are *not* consulted - the
    client cannot predict them, so it commits to the channel that is
    best on the advertised program.

    Returns ``(channel, listen_start, horizon, probe)`` where ``probe``
    is the fault-free retrieval on the chosen channel.  ``among``
    restricts the candidates to a subset of the file's channels (quorum
    assembly crosses channels off as it reads them).
    """
    candidates = (
        channels.channels_for(file) if among is None else tuple(among)
    )
    if not candidates:
        raise SimulationError(
            f"no candidate channels to choose from for {file!r}"
        )
    best: tuple[int, int, int] | None = None
    chosen: tuple[int, int, int, RetrievalResult] | None = None
    for candidate in candidates:
        listen = channels.listen_start(start, tuned, candidate)
        program = channels.programs[candidate]
        horizon = (
            max_slots
            if max_slots is not None
            else default_horizon(program, m_needed)
        )
        probe = retrieve(
            program,
            file,
            m_needed,
            start=listen,
            faults=None,
            need_distinct=need_distinct,
            max_slots=horizon,
        )
        busy_until = (
            probe.finish_slot
            if probe.completed and probe.finish_slot is not None
            else listen + horizon - 1
        )
        key = (0 if probe.completed else 1, busy_until, candidate)
        if best is None or key < best:
            best = key
            chosen = (candidate, listen, horizon, probe)
    assert chosen is not None  # channels_for never returns empty
    return chosen


def retrieve_multichannel(
    channels: "ChannelSet",
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    tuned: int = 0,
    faults: Sequence[FaultModel | None] | None = None,
    need_distinct: bool = True,
    max_slots: int | None = None,
) -> MultiChannelRetrieval:
    """Simulate one retrieval over ``k`` parallel channels.

    The client picks the channel with the earliest feasible (fault-free)
    occurrence run via :func:`choose_channel`, pays ``tuning_cost``
    slots when that channel differs from ``tuned``, then performs the
    ordinary single-channel retrieval there under that channel's fault
    model (``faults[channel]``; ``None`` entries mean a clean channel).

    With one channel and ``tuned=0`` this is exactly
    :func:`retrieve` - same slots heard, same blocks, same latency -
    which is what keeps ``k=1`` scenarios bit-identical to the
    single-channel stack.
    """
    if faults is not None and len(faults) != channels.count:
        raise SimulationError(
            f"faults must have one entry per channel: got {len(faults)} "
            f"for {channels.count} channel(s)"
        )
    channel, listen, horizon, probe = choose_channel(
        channels,
        file,
        m_needed,
        start=start,
        tuned=tuned,
        need_distinct=need_distinct,
        max_slots=max_slots,
    )
    fault_model = faults[channel] if faults is not None else None
    if fault_model is None or isinstance(fault_model, NoFaults):
        result = probe
    else:
        result = retrieve(
            channels.programs[channel],
            file,
            m_needed,
            start=listen,
            faults=fault_model,
            need_distinct=need_distinct,
            max_slots=horizon,
        )
    finish = (
        result.finish_slot
        if result.completed and result.finish_slot is not None
        else listen + horizon - 1
    )
    return MultiChannelRetrieval(
        file=file,
        start=start,
        completed=result.completed,
        channel=channel,
        switched=channel != tuned,
        finish_slot=finish,
        latency=finish - start + 1 if result.completed else None,
        received=result.received,
        lost_slots=result.lost_slots,
    )
