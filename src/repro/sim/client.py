"""Client-side retrieval from a broadcast program.

A client tunes in at slot ``start`` (its *phase*), watches the program go
by, and collects blocks of its target file until it can reconstruct:

* **with IDA** (``need_distinct``): any ``m`` *distinct* dispersed blocks
  suffice (Section 2.1) - the client caches block indices and finishes at
  the ``m``-th distinct one;
* **without IDA** (``need_specific``): the file is not dispersed, so the
  client must catch *every one* of blocks ``0 .. m-1``; a lost block can
  only be replaced by the same index coming round again - the regime of
  Lemma 1.

``retrieve`` is the single engine for both, parameterized by the
requirement; the fault model decides which slots are lost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram
from repro.sim.faults import FaultModel, NoFaults


@dataclass(frozen=True)
class RetrievalResult:
    """Outcome of one retrieval attempt.

    Attributes
    ----------
    file:
        The target file.
    start:
        The phase (slot at which the client began listening).
    completed:
        Whether the requirement was met within the horizon.
    finish_slot:
        Slot at which the final needed block arrived (None if incomplete).
    latency:
        ``finish_slot - start + 1`` in slots (None if incomplete).
    received:
        Distinct block indices received, in arrival order.
    lost_slots:
        Slots of the target file that the fault model clobbered.
    """

    file: str
    start: int
    completed: bool
    finish_slot: int | None
    latency: int | None
    received: tuple[int, ...]
    lost_slots: tuple[int, ...]

    def met_deadline(self, deadline_slots: int) -> bool:
        """Whether retrieval finished within ``deadline_slots`` slots."""
        return self.completed and self.latency is not None and (
            self.latency <= deadline_slots
        )


def retrieve(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    need_distinct: bool = True,
    max_slots: int | None = None,
) -> RetrievalResult:
    """Simulate one retrieval.

    Parameters
    ----------
    program:
        The broadcast program the server runs.
    file:
        Target file name.
    m_needed:
        Blocks required: with ``need_distinct``, any ``m`` distinct
        indices; otherwise every index in ``0 .. m_needed - 1``.
    start:
        The client's phase.
    faults:
        Channel fault model (default :class:`NoFaults`).
    need_distinct:
        IDA mode (True) vs specific-blocks mode (False).
    max_slots:
        Listening horizon; defaults to a generous multiple of the data
        cycle, after which the retrieval reports failure.

    Raises
    ------
    SimulationError
        If ``file`` is not in the program (the retrieval could never
        finish, which is a configuration error rather than a timeout).
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    horizon = (
        max_slots
        if max_slots is not None
        else (m_needed + 2) * program.data_cycle_length + start
    )

    seen: set[int] = set()
    arrival_order: list[int] = []
    lost: list[int] = []
    wanted = set(range(m_needed)) if not need_distinct else None

    t = start
    while t < start + horizon:
        content = program.slot_content(t)
        if content is not None and content.file == file:
            if fault_model.is_lost(t):
                lost.append(t)
            else:
                index = content.block_index
                if index not in seen:
                    seen.add(index)
                    arrival_order.append(index)
                done = (
                    len(seen) >= m_needed
                    if need_distinct
                    else wanted is not None and wanted <= seen
                )
                if done:
                    return RetrievalResult(
                        file=file,
                        start=start,
                        completed=True,
                        finish_slot=t,
                        latency=t - start + 1,
                        received=tuple(arrival_order),
                        lost_slots=tuple(lost),
                    )
        t += 1
    return RetrievalResult(
        file=file,
        start=start,
        completed=False,
        finish_slot=None,
        latency=None,
        received=tuple(arrival_order),
        lost_slots=tuple(lost),
    )
