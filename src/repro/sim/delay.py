"""Worst-case delay analysis: Lemmas 1-2 and the Figure 7 table.

The paper's central quantitative claim is adversarial: if retrieving a
file costs ``L`` slots fault-free, how much longer can ``r`` block errors
make it?

* **Lemma 1** (no IDA, flat program of period ``Pi``): at most ``r * Pi``
  extra - each lost block must be awaited for a full period.
* **Lemma 2** (AIDA, max inter-block gap ``Delta``): at most
  ``r * Delta`` extra - any next block of the file substitutes.

:func:`worst_case_delay` computes the *exact* worst case by exhaustive
adversary: a memoized game search over (position in data cycle, blocks
collected, kills remaining), maximized over every client phase.  The
search is exponential in the file's dispersal width, which is fine for
the paper's toy programs (Figure 7) and the property tests; searches
whose partial-retrieval state count exceeds the :data:`MAX_EXACT_WIDTH`
budget are rejected eagerly with a clear
:class:`~repro.errors.SimulationError` rather than letting the memo blow
up the machine.  For large sweeps, :func:`greedy_adversary_delay` gives
a fast lower bound on the worst case (kill the next useful block while
budget lasts) at any width.

Delay is defined per phase as ``completion(phase, adversary) -
completion(phase, no faults)`` and then maximized over phases; the
without-IDA client needs every specific block index, the AIDA client any
``m`` distinct ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import SimulationError
from repro.bdisk.program import BroadcastProgram

#: Width budget for the exact adversary game when it has kills to
#: spend.  The memo is keyed on frozensets of collected block indices,
#: so its state count grows with the number of sub-``m`` subsets of the
#: file's dispersal width.  Files up to this wide are always accepted;
#: wider files are accepted only while their collected-subset count
#: (``sum of C(width, k) for k < m_needed``) stays below
#: ``2**MAX_EXACT_WIDTH`` - a wide file needing few blocks is cheap,
#: a wide file needing most of them is not.  Beyond that the search is
#: rejected eagerly with a :class:`SimulationError` instead of
#: consuming the machine; use :func:`greedy_adversary_delay` (linear)
#: there.
MAX_EXACT_WIDTH = 20


def lemma1_bound(period: int, errors: int) -> int:
    """Lemma 1 upper bound: ``r * Pi`` extra slots without IDA."""
    return errors * period


def lemma2_bound(delta: int, errors: int) -> int:
    """Lemma 2 upper bound: ``r * Delta`` extra slots with AIDA."""
    return errors * delta


def _file_slots(
    program: BroadcastProgram, file: str
) -> list[tuple[int, int]]:
    """``(slot, block_index)`` for every service of ``file`` in one data
    cycle, straight from the program's occurrence index."""
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    index = program.index
    return list(
        zip(index.occurrence_slots(file), index.occurrence_blocks(file))
    )


def _content_by_slot(
    program: BroadcastProgram, file: str
) -> list[int | None]:
    """Per-slot block index of ``file`` over one data cycle (None when
    the slot is idle or carries another file)."""
    content_by_slot: list[int | None] = [None] * program.data_cycle_length
    for t, index in _file_slots(program, file):
        content_by_slot[t] = index
    return content_by_slot


def _check_exact_width(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    *,
    need_distinct: bool,
) -> None:
    """Reject adversary searches too wide for the exact game.

    The bound tracks the actual state count, not the width alone: a
    file dispersed over 40 blocks of which any 2 reconstruct it is
    trivial to search, while 22 blocks needing 21 distinct is not.
    Without-IDA clients (``need_distinct=False``) only ever collect
    block indices below ``m_needed``, so their collectible width is
    capped there regardless of how many blocks rotate.
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    width = program.block_count(file)
    if not need_distinct:
        width = min(width, m_needed)
    if width <= MAX_EXACT_WIDTH:
        return
    from math import comb

    subsets = sum(comb(width, k) for k in range(min(m_needed, width)))
    if subsets > 1 << MAX_EXACT_WIDTH:
        raise SimulationError(
            f"exact adversary search for file {file!r} is exponential "
            f"in dispersal width: collecting {m_needed} of {width} "
            f"rotated blocks spans {subsets} partial-retrieval states "
            f"(cap: width {MAX_EXACT_WIDTH}, or 2^{MAX_EXACT_WIDTH} "
            f"states beyond it); either shrink the search - a smaller "
            f"m (fewer blocks to reconstruct, e.g. a larger block "
            f"size) or a shorter horizon (fewer rotated blocks per "
            f"cycle) - or use greedy_adversary_delay for a fast "
            f"linear lower bound at any width"
        )


def _completion_game(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    *,
    need_distinct: bool,
) -> "callable":
    """Build the memoized adversary game for one (program, file) pair.

    Returns ``worst(phase, kills)``: the worst-case completion latency in
    slots (inclusive) when the client starts at ``phase`` and the
    adversary may clobber up to ``kills`` of the file's blocks.  The
    adversary is clairvoyant and optimal: at every useful block it
    branches between letting it through and killing it.
    """
    cycle = program.data_cycle_length
    content_by_slot = _content_by_slot(program, file)

    @lru_cache(maxsize=None)
    def worst(pos: int, collected: frozenset, kills: int) -> int:
        """Worst remaining slots (counting the current one) until done."""
        # Scan to the next useful slot; periodicity bounds the scan.
        offset = 0
        while offset <= cycle:
            index = content_by_slot[(pos + offset) % cycle]
            useful = index is not None and (
                index not in collected
                if need_distinct
                else index < m_needed and index not in collected
            )
            if useful:
                break
            offset += 1
        else:
            raise SimulationError(
                f"retrieval of {file!r} cannot progress: no useful block "
                f"in a full data cycle (m_needed={m_needed} too large?)"
            )
        here = (pos + offset) % cycle
        took = collected | {index}
        done = len(took) >= m_needed
        receive = offset + 1 if done else offset + 1 + worst(
            (here + 1) % cycle, took, kills
        )
        if kills == 0:
            return receive
        killed = offset + 1 + worst((here + 1) % cycle, collected, kills - 1)
        return max(receive, killed)

    def completion(phase: int, kills: int) -> int:
        return worst(phase % cycle, frozenset(), kills)

    return completion


def fault_free_latency(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    *,
    phase: int = 0,
    need_distinct: bool = True,
) -> int:
    """Retrieval latency in slots with no faults, from a given phase."""
    game = _completion_game(
        program, file, m_needed, need_distinct=need_distinct
    )
    return game(phase, 0)


def worst_case_delay(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    errors: int,
    *,
    need_distinct: bool = True,
) -> int:
    """Exact worst-case added delay under ``errors`` adversarial losses.

    ``max over phases of (completion with optimal adversary -
    fault-free completion)``.  Phases range over one data cycle, which
    covers all distinct client experiences of the periodic program.

    With ``errors > 0`` the game branches at every useful block, so
    searches past the :data:`MAX_EXACT_WIDTH` state budget are rejected
    with a :class:`SimulationError` up front (the ``errors == 0`` case
    stays linear and uncapped).
    """
    if errors < 0:
        raise SimulationError(f"errors must be >= 0: {errors}")
    if errors > 0:
        _check_exact_width(
            program, file, m_needed, need_distinct=need_distinct
        )
    game = _completion_game(
        program, file, m_needed, need_distinct=need_distinct
    )
    worst = 0
    for phase in range(program.data_cycle_length):
        delay = game(phase, errors) - game(phase, 0)
        worst = max(worst, delay)
    return worst


def worst_case_latency(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    errors: int,
    *,
    need_distinct: bool = True,
) -> int:
    """Exact worst-case *total* latency (slots) under ``errors`` losses.

    Subject to the same :data:`MAX_EXACT_WIDTH` state budget as
    :func:`worst_case_delay` when ``errors > 0``.
    """
    if errors < 0:
        raise SimulationError(f"errors must be >= 0: {errors}")
    if errors > 0:
        _check_exact_width(
            program, file, m_needed, need_distinct=need_distinct
        )
    game = _completion_game(
        program, file, m_needed, need_distinct=need_distinct
    )
    return max(
        game(phase, errors) for phase in range(program.data_cycle_length)
    )


def greedy_adversary_delay(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    errors: int,
    *,
    phase: int = 0,
    need_distinct: bool = True,
) -> int:
    """Fast lower bound: the adversary kills the next useful block while
    its budget lasts.  Linear in the horizon; used by the large Lemma
    sweeps where the exact game is too wide."""
    cycle = program.data_cycle_length
    content_by_slot = _content_by_slot(program, file)

    def run(kills: int) -> int:
        collected: set[int] = set()
        budget = kills
        t = phase
        guard = phase + (m_needed + kills + 2) * cycle + cycle
        while t <= guard:
            index = content_by_slot[t % cycle]
            useful = index is not None and (
                index not in collected
                if need_distinct
                else index < m_needed and index not in collected
            )
            if useful:
                if budget > 0:
                    budget -= 1
                else:
                    collected.add(index)
                    if len(collected) >= m_needed:
                        return t - phase + 1
            t += 1
        raise SimulationError(
            f"greedy adversary run for {file!r} did not complete"
        )

    return run(errors) - run(0)


@dataclass(frozen=True, slots=True)
class DelayTableRow:
    """One row of the Figure 7 table, plus the lemma bounds."""

    errors: int
    with_ida: int
    without_ida: int
    lemma2_bound: int
    lemma1_bound: int

    def __str__(self) -> str:
        return (
            f"{self.errors:>6} | {self.with_ida:>8} | "
            f"{self.without_ida:>11} | {self.lemma2_bound:>8} | "
            f"{self.lemma1_bound:>8}"
        )


def worst_case_delay_table(
    aida_program: BroadcastProgram,
    flat_program: BroadcastProgram,
    file_sizes: dict[str, int],
    max_errors: int,
) -> list[DelayTableRow]:
    """Regenerate the Figure 7 comparison for arbitrary programs.

    For each error count ``r`` the with-IDA column is the worst exact
    delay over all files on the AIDA program (any-``m``-distinct mode) and
    the without-IDA column the worst over files on the flat program
    (specific-blocks mode).  Bounds use each program's worst ``Delta``
    and the flat program's period.
    """
    delta = max(aida_program.max_gap(f) for f in file_sizes)
    period = flat_program.broadcast_period
    rows = []
    for errors in range(max_errors + 1):
        with_ida = max(
            worst_case_delay(
                aida_program, f, m, errors, need_distinct=True
            )
            for f, m in file_sizes.items()
        )
        without_ida = max(
            worst_case_delay(
                flat_program, f, m, errors, need_distinct=False
            )
            for f, m in file_sizes.items()
        )
        rows.append(
            DelayTableRow(
                errors=errors,
                with_ida=with_ida,
                without_ida=without_ida,
                lemma2_bound=lemma2_bound(delta, errors),
                lemma1_bound=lemma1_bound(period, errors),
            )
        )
    return rows
