"""Block-error models for the broadcast channel.

The paper's channel model: "individual transmission errors occur
independently of each other, and the occurrence of an error during the
transmission of a block renders the entire block unreadable."  A fault
model decides, per slot, whether the client fails to receive that slot's
block.  All stochastic models are seeded and deterministic per
``(seed, slot)``, so simulations are reproducible and two clients with
the same seed observe the same channel.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol

from repro.errors import SpecificationError


class FaultModel(Protocol):
    """Decides whether the block in slot ``t`` is lost."""

    def is_lost(self, t: int) -> bool:
        """True when the slot-``t`` block is unreadable."""
        ...


class NoFaults:
    """The failure-free channel."""

    def is_lost(self, t: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoFaults()"


class BernoulliFaults:
    """Independent per-slot losses with probability ``p``.

    Deterministic per slot: the decision for slot ``t`` hashes ``(seed,
    t)``, so queries need not arrive in slot order and repeated queries
    agree.
    """

    def __init__(self, probability: float, *, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SpecificationError(
                f"loss probability must be in [0, 1]: {probability}"
            )
        self.probability = probability
        self.seed = seed

    def is_lost(self, t: int) -> bool:
        if self.probability == 0.0:
            return False
        if self.probability == 1.0:
            return True
        # String seeds hash through SHA-512 in CPython, so the decision is
        # stable across processes and interpreter runs.
        return (
            random.Random(f"{self.seed}:{t}").random() < self.probability
        )

    def __repr__(self) -> str:
        return f"BernoulliFaults(p={self.probability}, seed={self.seed})"


class BurstFaults:
    """Gilbert-style bursty losses.

    The channel alternates between a GOOD state (loss-free) and a BAD
    state (every slot lost).  Transitions happen per slot: GOOD -> BAD
    with probability ``p_enter``, BAD -> GOOD with probability
    ``p_exit``; expected burst length is ``1 / p_exit``.  The state
    sequence is precomputed lazily and cached so queries are O(1) and
    order-independent.
    """

    def __init__(
        self, p_enter: float, p_exit: float, *, seed: int = 0
    ) -> None:
        for name, value in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0.0 <= value <= 1.0:
                raise SpecificationError(
                    f"{name} must be in [0, 1]: {value}"
                )
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.seed = seed
        self._states: list[bool] = []  # True = BAD
        self._rng = random.Random(seed)
        self._current_bad = False

    def _extend_to(self, t: int) -> None:
        while len(self._states) <= t:
            if self._current_bad:
                if self._rng.random() < self.p_exit:
                    self._current_bad = False
            else:
                if self._rng.random() < self.p_enter:
                    self._current_bad = True
            self._states.append(self._current_bad)

    def is_lost(self, t: int) -> bool:
        self._extend_to(t)
        return self._states[t]

    def __repr__(self) -> str:
        return (
            f"BurstFaults(p_enter={self.p_enter}, "
            f"p_exit={self.p_exit}, seed={self.seed})"
        )


class AdversarialFaults:
    """An explicit set of lost slots - the adversary of Lemmas 1-2.

    The exhaustive worst-case analysis in :mod:`repro.sim.delay`
    enumerates instances of this model.
    """

    def __init__(self, lost_slots: Iterable[int]) -> None:
        self.lost_slots = frozenset(lost_slots)
        if any(t < 0 for t in self.lost_slots):
            raise SpecificationError("lost slots must be >= 0")

    def is_lost(self, t: int) -> bool:
        return t in self.lost_slots

    @property
    def budget(self) -> int:
        """Number of losses this adversary spends."""
        return len(self.lost_slots)

    def __repr__(self) -> str:
        return f"AdversarialFaults({sorted(self.lost_slots)})"
