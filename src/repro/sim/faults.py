"""Block-error models for the broadcast channel.

The paper's channel model: "individual transmission errors occur
independently of each other, and the occurrence of an error during the
transmission of a block renders the entire block unreadable."  A fault
model decides, per slot, whether the client fails to receive that slot's
block.  All stochastic models are seeded and deterministic per
``(seed, slot)``, so simulations are reproducible and two clients with
the same seed observe the same channel.

Occurrence-walking clients query faults only at their file's service
slots and do so in batches: every model implements ``lost_in(slots)``
(and :func:`lost_in` adapts third-party models that only provide
``is_lost``).  Batch answers are defined to agree exactly, slot by slot,
with ``is_lost`` - batching amortizes the per-decision overhead without
changing a single decision.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol, Sequence

from repro.errors import SimulationError, SpecificationError
from repro.obs import telemetry as obs

#: Per-model memo bound: decisions are cached per slot up to this many
#: entries, after which further queries are computed without caching (the
#: cache covers every realistic simulation; the bound keeps adversarially
#: long runs from exhausting memory).
DECISION_MEMO_LIMIT = 1 << 20


class FaultModel(Protocol):
    """Decides whether the block in slot ``t`` is lost."""

    def is_lost(self, t: int) -> bool:
        """True when the slot-``t`` block is unreadable."""
        ...


def lost_in(model: FaultModel, slots: Sequence[int]) -> list[bool]:
    """Batch fault decisions for ``slots``, one bool per slot.

    Uses the model's own ``lost_in`` when it has one (all built-in models
    do) and falls back to per-slot ``is_lost`` calls otherwise, so any
    :class:`FaultModel` works with the batched simulators.
    """
    tel = obs.current()
    if tel is not None and not isinstance(model, NoFaults):
        # Batch sizes depend on how callers group queries (per wave for
        # the SoA engine, per occurrence walk for the object engine), so
        # these are "shape" instruments; the *decisions* are per-slot
        # deterministic regardless.
        tel.inc("faults.draw_batches", stability="shape")
        tel.inc("faults.slots_drawn", len(slots), stability="shape")
    batch = getattr(model, "lost_in", None)
    if batch is not None:
        return batch(slots)
    return [model.is_lost(t) for t in slots]


class NoFaults:
    """The failure-free channel."""

    def is_lost(self, t: int) -> bool:
        return False

    def lost_in(self, slots: Sequence[int]) -> list[bool]:
        return [False] * len(slots)

    def __repr__(self) -> str:
        return "NoFaults()"


class BernoulliFaults:
    """Independent per-slot losses with probability ``p``.

    Deterministic per slot: the decision for slot ``t`` hashes ``(seed,
    t)``, so queries need not arrive in slot order and repeated queries
    agree.  Decisions are memoized per slot, so the common simulation
    pattern - many clients querying overlapping slot sets - pays the
    SHA-seeded RNG construction at most once per distinct slot instead
    of once per query; a memoized answer is by construction bit-identical
    to seeding a fresh ``random.Random(f"{seed}:{t}")``.
    """

    def __init__(self, probability: float, *, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SpecificationError(
                f"loss probability must be in [0, 1]: {probability}"
            )
        self.probability = probability
        self.seed = seed
        self._decisions: dict[int, bool] = {}

    def _decide(self, t: int) -> bool:
        decisions = self._decisions
        cached = decisions.get(t)
        if cached is None:
            # String seeds hash through SHA-512 in CPython, so the
            # decision is stable across processes and interpreter runs.
            # A fresh instance per memo miss keeps the model safe to
            # share (no RNG state to tear); the dict makes misses rare.
            cached = (
                random.Random(f"{self.seed}:{t}").random()
                < self.probability
            )
            if len(decisions) < DECISION_MEMO_LIMIT:
                decisions[t] = cached
        return cached

    def is_lost(self, t: int) -> bool:
        if self.probability == 0.0:
            return False
        if self.probability == 1.0:
            return True
        return self._decide(t)

    def lost_in(self, slots: Sequence[int]) -> list[bool]:
        if self.probability == 0.0:
            return [False] * len(slots)
        if self.probability == 1.0:
            return [True] * len(slots)
        decide = self._decide
        return [decide(t) for t in slots]

    def __repr__(self) -> str:
        return f"BernoulliFaults(p={self.probability}, seed={self.seed})"


class BurstFaults:
    """Gilbert-style bursty losses.

    The channel alternates between a GOOD state (loss-free) and a BAD
    state (every slot lost).  Transitions happen per slot: GOOD -> BAD
    with probability ``p_enter``, BAD -> GOOD with probability
    ``p_exit``; expected burst length is ``1 / p_exit``.

    The state sequence is inherently sequential (a Markov chain driven by
    one RNG draw per slot), so it is materialized on demand in fixed-size
    chunks of a compact byte table: queries are O(1), order-independent,
    and bit-identical regardless of query pattern.  Growth is bounded by
    ``max_horizon``; a query beyond it raises :class:`SimulationError`
    instead of silently consuming unbounded memory.
    """

    #: Slots materialized per extension step.
    CHUNK = 4096
    #: Default query bound (slots); ~4M slots is one byte each.
    DEFAULT_MAX_HORIZON = 1 << 22

    def __init__(
        self,
        p_enter: float,
        p_exit: float,
        *,
        seed: int = 0,
        max_horizon: int = DEFAULT_MAX_HORIZON,
    ) -> None:
        for name, value in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0.0 <= value <= 1.0:
                raise SpecificationError(
                    f"{name} must be in [0, 1]: {value}"
                )
        if max_horizon < 1:
            raise SpecificationError(
                f"max_horizon must be >= 1: {max_horizon}"
            )
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.seed = seed
        self.max_horizon = max_horizon
        self._states = bytearray()  # 1 = BAD, one byte per slot
        self._rng = random.Random(seed)
        self._current_bad = False

    def _extend_to(self, t: int) -> None:
        if t >= self.max_horizon:
            raise SimulationError(
                f"BurstFaults query at slot {t} exceeds max_horizon="
                f"{self.max_horizon}; construct the model with a larger "
                f"max_horizon for longer simulations"
            )
        states = self._states
        if t < len(states):
            return
        # Materialize whole chunks so repeated nearby queries extend the
        # table once; the RNG is consumed exactly one draw per slot, in
        # slot order, matching the seed implementation bit for bit.
        target = min(
            self.max_horizon, (t // self.CHUNK + 1) * self.CHUNK
        )
        bad = self._current_bad
        rng_random = self._rng.random
        p_enter, p_exit = self.p_enter, self.p_exit
        chunk = bytearray()
        for _ in range(target - len(states)):
            if bad:
                if rng_random() < p_exit:
                    bad = False
            else:
                if rng_random() < p_enter:
                    bad = True
            chunk.append(bad)
        self._current_bad = bad
        states.extend(chunk)

    def is_lost(self, t: int) -> bool:
        self._extend_to(t)
        return bool(self._states[t])

    def lost_in(self, slots: Sequence[int]) -> list[bool]:
        if slots:
            self._extend_to(max(slots))
        states = self._states
        return [bool(states[t]) for t in slots]

    def __repr__(self) -> str:
        return (
            f"BurstFaults(p_enter={self.p_enter}, "
            f"p_exit={self.p_exit}, seed={self.seed})"
        )


class AdversarialFaults:
    """An explicit set of lost slots - the adversary of Lemmas 1-2.

    The exhaustive worst-case analysis in :mod:`repro.sim.delay`
    enumerates instances of this model.
    """

    def __init__(self, lost_slots: Iterable[int]) -> None:
        self.lost_slots = frozenset(lost_slots)
        if any(t < 0 for t in self.lost_slots):
            raise SpecificationError("lost slots must be >= 0")

    def is_lost(self, t: int) -> bool:
        return t in self.lost_slots

    def lost_in(self, slots: Sequence[int]) -> list[bool]:
        lost = self.lost_slots
        return [t in lost for t in slots]

    @property
    def budget(self) -> int:
        """Number of losses this adversary spends."""
        return len(self.lost_slots)

    def __repr__(self) -> str:
        return f"AdversarialFaults({sorted(self.lost_slots)})"
