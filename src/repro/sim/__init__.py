"""Slotted broadcast-channel simulation.

The paper's claims are adversarial worst-case statements (Lemmas 1-2,
Figure 7) plus a qualitative story about real-time retrieval under an
unreliable broadcast medium.  This subpackage provides both sides:

* :mod:`repro.sim.faults` - block-error models: none, seeded Bernoulli,
  bursty (Gilbert-style), and explicit adversarial slot sets;
* :mod:`repro.sim.client` - a client that tunes in at a phase, collects
  blocks of a target file (any-``m``-distinct with IDA, every specific
  block without), and reconstructs;
* :mod:`repro.sim.delay` - exact worst-case delay analysis by exhaustive
  adversary (Figure 7) and the Lemma 1/2 upper bounds;
* :mod:`repro.sim.workload` - seeded random file sets, pinwheel
  instances with target density, and request streams;
* :mod:`repro.sim.metrics` - latency summaries and deadline-miss rates;
* :mod:`repro.sim.runner` - end-to-end simulation loops;
* :mod:`repro.sim.reference` - the seed slot-walking implementations,
  kept as the executable spec the occurrence-indexed fast paths are
  property-tested against.
"""

from repro.sim.faults import (
    AdversarialFaults,
    BernoulliFaults,
    BurstFaults,
    FaultModel,
    NoFaults,
    lost_in,
)
from repro.sim.client import RetrievalResult, retrieve
from repro.sim.delay import (
    DelayTableRow,
    fault_free_latency,
    lemma1_bound,
    lemma2_bound,
    worst_case_delay,
    worst_case_delay_table,
)
from repro.sim.metrics import LatencySummary, summarize_latencies
from repro.sim.workload import (
    random_file_set,
    random_pinwheel_system,
    request_stream,
)
from repro.sim.runner import SimulationResult, simulate_requests
from repro.sim.cache import CachingClient, LruCache, PixCache
from repro.sim.channel import ByteChannel, broadcast_retrieve

__all__ = [
    "AdversarialFaults",
    "BernoulliFaults",
    "BurstFaults",
    "FaultModel",
    "NoFaults",
    "lost_in",
    "RetrievalResult",
    "retrieve",
    "DelayTableRow",
    "fault_free_latency",
    "lemma1_bound",
    "lemma2_bound",
    "worst_case_delay",
    "worst_case_delay_table",
    "LatencySummary",
    "summarize_latencies",
    "random_file_set",
    "random_pinwheel_system",
    "request_stream",
    "SimulationResult",
    "simulate_requests",
    "CachingClient",
    "LruCache",
    "PixCache",
    "ByteChannel",
    "broadcast_retrieve",
]
