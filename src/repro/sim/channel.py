"""Byte-level broadcast channel: frames, corruption, and detection.

The slot-level fault models in :mod:`repro.sim.faults` abstract a lost
block as a boolean.  This module closes the loop with the actual wire
format of :mod:`repro.ida.blocks`: the server *encodes* each slot's block
into a frame, the channel flips bits, and the client *decodes* - a frame
whose CRC fails is precisely the paper's "error during the transmission
of a block renders the entire block unreadable".

This gives the simulators an end-to-end path where loss is *derived*
from byte corruption rather than injected at the block level, and lets
tests exercise the detection machinery (bad magic, truncation, CRC)
under realistic conditions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import BlockCodecError, SimulationError, SpecificationError
from repro.bdisk.program import BroadcastProgram
from repro.ida.blocks import Block, decode_block, encode_block


@dataclass(frozen=True)
class FrameResult:
    """Outcome of transmitting one frame."""

    slot: int
    delivered: Block | None
    corrupted_bytes: int

    @property
    def lost(self) -> bool:
        return self.delivered is None


class ByteChannel:
    """A broadcast channel that corrupts individual bytes.

    Each byte of a frame is independently flipped with probability
    ``byte_error_rate`` (deterministic per ``(seed, slot, offset)``,
    so replays agree).  The receiver decodes; any codec failure counts
    as a lost block.

    This is the paper's independent-error model at byte granularity:
    the probability a ``k``-byte frame survives is
    ``(1 - byte_error_rate) ** k``, so bigger blocks really are more
    fragile - one quantitative input to the Section 5 block-size
    discussion.
    """

    def __init__(self, byte_error_rate: float, *, seed: int = 0) -> None:
        if not 0.0 <= byte_error_rate <= 1.0:
            raise SpecificationError(
                f"byte error rate must be in [0, 1]: {byte_error_rate}"
            )
        self.byte_error_rate = byte_error_rate
        self.seed = seed

    def _corrupt(self, frame: bytes, slot: int) -> tuple[bytes, int]:
        if self.byte_error_rate == 0.0:
            return frame, 0
        rng = random.Random(f"{self.seed}:{slot}")
        data = bytearray(frame)
        corrupted = 0
        for offset in range(len(data)):
            if rng.random() < self.byte_error_rate:
                data[offset] ^= 1 + rng.randrange(255)
                corrupted += 1
        return bytes(data), corrupted

    def transmit(self, block: Block, slot: int) -> FrameResult:
        """Send one block through the channel; decode on the far side."""
        frame, corrupted = self._corrupt(encode_block(block), slot)
        try:
            delivered = decode_block(frame)
        except BlockCodecError:
            return FrameResult(slot=slot, delivered=None,
                               corrupted_bytes=corrupted)
        return FrameResult(
            slot=slot, delivered=delivered, corrupted_bytes=corrupted
        )

    def survival_probability(self, frame_bytes: int) -> float:
        """Probability an entire frame of that size arrives clean."""
        if frame_bytes < 0:
            raise SpecificationError("frame size must be >= 0")
        return (1.0 - self.byte_error_rate) ** frame_bytes


def broadcast_retrieve(
    program: BroadcastProgram,
    blocks_on_air: dict[str, list[Block]],
    file: str,
    m_needed: int,
    channel: ByteChannel,
    *,
    start: int = 0,
    max_slots: int | None = None,
) -> tuple[bytes | None, list[FrameResult]]:
    """End-to-end retrieval over the byte channel.

    Jumps occurrence-to-occurrence along the program's index from
    ``start`` (slots carrying other files never reach the channel);
    every service of ``file`` within ``[start, start + horizon)`` is
    transmitted as a real frame through ``channel``; decoded blocks
    accumulate until ``m_needed`` distinct indices are held, at which
    point IDA reconstruction runs.  Returns ``(payload, frame_log)``;
    payload is ``None`` when the horizon expires first.  Corruption is
    deterministic per ``(seed, slot)``, so the walk is bit-identical to
    the seed slot-scanning loop.

    ``blocks_on_air`` maps each file to its full dispersal (index order),
    i.e. what the server would actually rotate through.
    """
    from repro.ida.dispersal import reconstruct

    if file not in blocks_on_air:
        raise SimulationError(f"no dispersal supplied for {file!r}")
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    supply = blocks_on_air[file]
    horizon = (
        max_slots
        if max_slots is not None
        else (m_needed + 2) * program.data_cycle_length
    )
    end = start + horizon
    held: dict[int, Block] = {}
    log: list[FrameResult] = []
    for t, block_index in program.index.occurrences_from(file, start):
        if t >= end:
            break
        if block_index >= len(supply):
            raise SimulationError(
                f"program rotates through block {block_index} of "
                f"{file!r} but only {len(supply)} were dispersed"
            )
        result = channel.transmit(supply[block_index], t)
        log.append(result)
        if result.delivered is not None:
            held.setdefault(result.delivered.index, result.delivered)
            if len(held) >= m_needed:
                return reconstruct(list(held.values())), log
    return None, log
