"""Latency metrics for simulation runs.

Real-time database evaluation cares about the tail, not the mean: a
temporal-consistency constraint is met or missed.  :class:`LatencySummary`
therefore reports percentiles and the deadline-miss rate next to the
demand-driven literature's favourite (the mean), so benches can show both
philosophies' preferred numbers side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SimulationError


def _percentile_from_counts(
    counts: Sequence[tuple[float, int]], total: int, fraction: float
) -> float:
    """Nearest-rank percentile from sorted ``(value, count)`` pairs."""
    rank = max(1, math.ceil(fraction * total))
    seen = 0
    for value, count in counts:
        seen += count
        if seen >= rank:
            return value
    return counts[-1][0]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over retrieval latencies (slots).

    ``misses`` counts retrievals that failed outright (never completed)
    plus - when a deadline was supplied - completions past the deadline.

    ``counts`` is the exact latency histogram as sorted ``(value, count)``
    pairs (latencies are slot counts, so the histogram is small even for
    huge samples).  It is what makes :meth:`merge` exact: percentiles of
    a merged batch are recomputed from the merged counts, not
    approximated from per-part percentiles.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    worst: float
    misses: int
    deadline: int | None = None
    counts: tuple[tuple[float, int], ...] = field(default=())

    @property
    def miss_rate(self) -> float:
        """Fraction of retrievals that missed (failed or late)."""
        return self.misses / self.count if self.count else 0.0

    @classmethod
    def merge(cls, summaries: Sequence["LatencySummary"]) -> "LatencySummary":
        """Aggregate per-shard summaries exactly.

        Every part must carry its latency histogram (``counts``) - the
        merged percentiles are recomputed from the merged histogram, so
        a sharded run summarizes bit-identically to the single-shard run
        over the same latencies.  Parts must agree on ``deadline``.
        """
        if not summaries:
            raise SimulationError("cannot merge zero summaries")
        deadlines = {s.deadline for s in summaries}
        if len(deadlines) > 1:
            raise SimulationError(
                f"cannot merge summaries with different deadlines: "
                f"{sorted(deadlines, key=str)}"
            )
        merged: dict[float, int] = {}
        total = 0
        misses = 0
        for summary in summaries:
            total += summary.count
            misses += summary.misses
            completed = sum(count for _, count in summary.counts)
            if completed == 0 and summary.count > summary.misses:
                raise SimulationError(
                    "cannot merge a summary without its latency counts "
                    "(summarize_latencies populates them)"
                )
            for value, count in summary.counts:
                merged[value] = merged.get(value, 0) + count
        return _summary_from_counts(
            sorted(merged.items()), total, misses, deadlines.pop()
        )

    def __str__(self) -> str:
        deadline = (
            f", deadline={self.deadline}, miss_rate={self.miss_rate:.3f}"
            if self.deadline is not None
            else f", failures={self.misses}"
        )
        return (
            f"LatencySummary(n={self.count}, mean={self.mean:.2f}, "
            f"p50={self.p50:.0f}, p95={self.p95:.0f}, p99={self.p99:.0f}, "
            f"worst={self.worst:.0f}{deadline})"
        )


def _summary_from_counts(
    counts: Sequence[tuple[float, int]],
    total: int,
    misses: int,
    deadline: int | None,
) -> LatencySummary:
    """Build a summary from a sorted latency histogram."""
    if total == 0:
        raise SimulationError("no latencies supplied")
    completed = sum(count for _, count in counts)
    if completed == 0:
        return LatencySummary(
            count=total,
            mean=float("inf"),
            p50=float("inf"),
            p95=float("inf"),
            p99=float("inf"),
            worst=float("inf"),
            misses=misses,
            deadline=deadline,
        )
    return LatencySummary(
        count=total,
        mean=sum(value * count for value, count in counts) / completed,
        p50=_percentile_from_counts(counts, completed, 0.50),
        p95=_percentile_from_counts(counts, completed, 0.95),
        p99=_percentile_from_counts(counts, completed, 0.99),
        worst=counts[-1][0],
        misses=misses,
        deadline=deadline,
        counts=tuple(counts),
    )


def summarize_latencies(
    latencies: Iterable[int | None],
    *,
    deadline: int | None = None,
) -> LatencySummary:
    """Summarize a latency sample.

    ``None`` entries mean "never completed" and count as misses; they are
    excluded from the distribution statistics (there is no finite latency
    to average).
    """
    counts: dict[float, int] = {}
    misses = 0
    total = 0
    for latency in latencies:
        total += 1
        if latency is None:
            misses += 1
            continue
        if deadline is not None and latency > deadline:
            misses += 1
        value = float(latency)
        counts[value] = counts.get(value, 0) + 1
    return _summary_from_counts(sorted(counts.items()), total, misses, deadline)
