"""Latency metrics for simulation runs.

Real-time database evaluation cares about the tail, not the mean: a
temporal-consistency constraint is met or missed.  :class:`LatencySummary`
therefore reports percentiles and the deadline-miss rate next to the
demand-driven literature's favourite (the mean), so benches can show both
philosophies' preferred numbers side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SimulationError


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile on a pre-sorted sample."""
    if not ordered:
        raise SimulationError("cannot take percentile of empty sample")
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over retrieval latencies (slots).

    ``misses`` counts retrievals that failed outright (never completed)
    plus - when a deadline was supplied - completions past the deadline.
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    worst: float
    misses: int
    deadline: int | None = None

    @property
    def miss_rate(self) -> float:
        """Fraction of retrievals that missed (failed or late)."""
        return self.misses / self.count if self.count else 0.0

    def __str__(self) -> str:
        deadline = (
            f", deadline={self.deadline}, miss_rate={self.miss_rate:.3f}"
            if self.deadline is not None
            else f", failures={self.misses}"
        )
        return (
            f"LatencySummary(n={self.count}, mean={self.mean:.2f}, "
            f"p50={self.p50:.0f}, p95={self.p95:.0f}, p99={self.p99:.0f}, "
            f"worst={self.worst:.0f}{deadline})"
        )


def summarize_latencies(
    latencies: Iterable[int | None],
    *,
    deadline: int | None = None,
) -> LatencySummary:
    """Summarize a latency sample.

    ``None`` entries mean "never completed" and count as misses; they are
    excluded from the distribution statistics (there is no finite latency
    to average).
    """
    completed: list[float] = []
    misses = 0
    total = 0
    for latency in latencies:
        total += 1
        if latency is None:
            misses += 1
            continue
        if deadline is not None and latency > deadline:
            misses += 1
        completed.append(float(latency))
    if total == 0:
        raise SimulationError("no latencies supplied")
    if not completed:
        return LatencySummary(
            count=total,
            mean=float("inf"),
            p50=float("inf"),
            p95=float("inf"),
            p99=float("inf"),
            worst=float("inf"),
            misses=misses,
            deadline=deadline,
        )
    completed.sort()
    return LatencySummary(
        count=total,
        mean=sum(completed) / len(completed),
        p50=_percentile(completed, 0.50),
        p95=_percentile(completed, 0.95),
        p99=_percentile(completed, 0.99),
        worst=completed[-1],
        misses=misses,
        deadline=deadline,
    )
