"""Seed slot-walking implementations, kept as an executable spec.

The production simulators walk precomputed occurrence tables
(:class:`repro.bdisk.ProgramIndex`) and batch their fault queries.  This
module preserves the original slot-by-slot implementations - recompute
every slot's content from the schedule, visit every slot of the horizon,
ask the fault model one slot at a time - so that:

* property tests can assert the fast paths are *bit-identical* to the
  seed semantics on randomized programs
  (``tests/sim/test_index_equivalence.py``);
* ``benchmarks/bench_sim_throughput.py`` can measure the speedup of the
  occurrence-indexed core against the behaviour it replaced.

Nothing here is used by the production pipeline; these functions are
deliberately naive and O(horizon x period).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.core.schedule import IDLE
from repro.bdisk.program import BroadcastProgram, SlotContent
from repro.sim.client import RetrievalResult
from repro.sim.faults import FaultModel, NoFaults


def slot_content(program: BroadcastProgram, t: int) -> SlotContent | None:
    """The seed ``slot_content``: recompute the block index from the
    schedule's prefix counts instead of reading the occurrence table."""
    schedule = program.schedule
    file = schedule.owner_at(t)
    if file is IDLE:
        return None
    within = t % program.data_cycle_length
    cycles, offset = divmod(within, schedule.cycle_length)
    occurrences_before = cycles * schedule.total(file)
    occurrences_before += schedule.count_in_window(file, 0, offset)
    return SlotContent(
        file, occurrences_before % program.block_count(file)
    )


def retrieve(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    faults: FaultModel | None = None,
    need_distinct: bool = True,
    max_slots: int | None = None,
) -> RetrievalResult:
    """The seed ``retrieve``: walk every slot of the horizon.

    Semantics match :func:`repro.sim.client.retrieve` exactly (including
    the unified horizon convention: the client listens to slots
    ``[start, start + horizon)``); only the algorithm differs.
    """
    if file not in program.files:
        raise SimulationError(f"file {file!r} is not broadcast")
    fault_model = faults if faults is not None else NoFaults()
    horizon = (
        max_slots
        if max_slots is not None
        else (m_needed + 2) * program.data_cycle_length
    )

    seen: set[int] = set()
    arrival_order: list[int] = []
    lost: list[int] = []
    wanted = set(range(m_needed)) if not need_distinct else None

    for t in range(start, start + horizon):
        content = slot_content(program, t)
        if content is not None and content.file == file:
            if fault_model.is_lost(t):
                lost.append(t)
            else:
                index = content.block_index
                if index not in seen:
                    seen.add(index)
                    arrival_order.append(index)
                done = (
                    len(seen) >= m_needed
                    if need_distinct
                    else wanted is not None and wanted <= seen
                )
                if done:
                    return RetrievalResult(
                        file=file,
                        start=start,
                        completed=True,
                        finish_slot=t,
                        latency=t - start + 1,
                        received=tuple(arrival_order),
                        lost_slots=tuple(lost),
                    )
    return RetrievalResult(
        file=file,
        start=start,
        completed=False,
        finish_slot=None,
        latency=None,
        received=tuple(arrival_order),
        lost_slots=tuple(lost),
    )


def min_distinct_in_window(
    program: BroadcastProgram, file: str, window: int
) -> int:
    """The seed ``min_distinct_in_window``: slide a window slot by slot
    across one data cycle."""
    length = program.data_cycle_length
    contents = [slot_content(program, t) for t in range(length)]
    in_window: dict[int, int] = {}

    def slot_block(t: int) -> int | None:
        content = contents[t % length]
        if content is None or content.file != file:
            return None
        return content.block_index

    for t in range(window):
        block = slot_block(t)
        if block is not None:
            in_window[block] = in_window.get(block, 0) + 1
    best = len(in_window)
    for start in range(1, length):
        removed = slot_block(start - 1)
        if removed is not None:
            in_window[removed] -= 1
            if in_window[removed] == 0:
                del in_window[removed]
        added = slot_block(start + window - 1)
        if added is not None:
            in_window[added] = in_window.get(added, 0) + 1
        best = min(best, len(in_window))
    return best


def worst_case_delay(
    program: BroadcastProgram,
    file: str,
    m_needed: int,
    errors: int,
    *,
    need_distinct: bool = True,
) -> int:
    """The seed exhaustive-adversary worst case, built on the naive
    content map instead of the occurrence index."""
    from functools import lru_cache

    if errors < 0:
        raise SimulationError(f"errors must be >= 0: {errors}")
    cycle = program.data_cycle_length
    content_by_slot: list[int | None] = [None] * cycle
    found = False
    for t in range(cycle):
        content = slot_content(program, t)
        if content is not None and content.file == file:
            content_by_slot[t] = content.block_index
            found = True
    if not found:
        raise SimulationError(f"file {file!r} is not broadcast")

    @lru_cache(maxsize=None)
    def worst(pos: int, collected: frozenset, kills: int) -> int:
        offset = 0
        while offset <= cycle:
            index = content_by_slot[(pos + offset) % cycle]
            useful = index is not None and (
                index not in collected
                if need_distinct
                else index < m_needed and index not in collected
            )
            if useful:
                break
            offset += 1
        else:
            raise SimulationError(
                f"retrieval of {file!r} cannot progress: no useful block "
                f"in a full data cycle (m_needed={m_needed} too large?)"
            )
        here = (pos + offset) % cycle
        took = collected | {index}
        done = len(took) >= m_needed
        receive = offset + 1 if done else offset + 1 + worst(
            (here + 1) % cycle, took, kills
        )
        if kills == 0:
            return receive
        killed = offset + 1 + worst((here + 1) % cycle, collected, kills - 1)
        return max(receive, killed)

    result = 0
    for phase in range(cycle):
        delay = worst(phase, frozenset(), errors) - worst(
            phase, frozenset(), 0
        )
        result = max(result, delay)
    return result


def retrieve_multichannel(
    channels,
    file: str,
    m_needed: int,
    *,
    start: int = 0,
    tuned: int = 0,
    faults=None,
    need_distinct: bool = True,
    max_slots: int | None = None,
):
    """The seed multi-channel retrieval: slot-walking end to end.

    Semantics match :func:`repro.sim.client.retrieve_multichannel`
    exactly - the same deterministic channel-choice rule (fault-free
    finish, completed-beats-exhausted, lowest channel on ties), the same
    tuning-cost and horizon conventions - but every probe and the final
    retrieval use the naive slot walker above, one slot and one fault
    query at a time.
    """
    from repro.sim.client import MultiChannelRetrieval
    from repro.sim.faults import NoFaults as _NoFaults

    best_key = None
    chosen = None
    for candidate in channels.channels_for(file):
        listen = start
        if candidate != tuned:
            listen += channels.tuning_cost
        program = channels.programs[candidate]
        horizon = (
            max_slots
            if max_slots is not None
            else (m_needed + 2) * program.data_cycle_length
        )
        probe = retrieve(
            program,
            file,
            m_needed,
            start=listen,
            faults=None,
            need_distinct=need_distinct,
            max_slots=horizon,
        )
        busy_until = (
            probe.finish_slot
            if probe.completed and probe.finish_slot is not None
            else listen + horizon - 1
        )
        key = (0 if probe.completed else 1, busy_until, candidate)
        if best_key is None or key < best_key:
            best_key = key
            chosen = (candidate, listen, horizon, probe)

    channel, listen, horizon, probe = chosen
    fault_model = faults[channel] if faults is not None else None
    if fault_model is None or isinstance(fault_model, _NoFaults):
        result = probe
    else:
        result = retrieve(
            channels.programs[channel],
            file,
            m_needed,
            start=listen,
            faults=fault_model,
            need_distinct=need_distinct,
            max_slots=horizon,
        )
    finish = (
        result.finish_slot
        if result.completed and result.finish_slot is not None
        else listen + horizon - 1
    )
    return MultiChannelRetrieval(
        file=file,
        start=start,
        completed=result.completed,
        channel=channel,
        switched=channel != tuned,
        finish_slot=finish,
        latency=finish - start + 1 if result.completed else None,
        received=result.received,
        lost_slots=result.lost_slots,
    )
