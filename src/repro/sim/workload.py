"""Seeded workload generators for tests and benchmarks.

Everything takes an explicit :class:`random.Random` so every experiment is
reproducible from its seed; nothing touches the global RNG state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.errors import SpecificationError
from repro.core.task import PinwheelSystem, PinwheelTask
from repro.bdisk.file import FileSpec


def random_file_set(
    rng: random.Random,
    count: int,
    *,
    max_blocks: int = 8,
    max_latency: int = 30,
    max_fault_budget: int = 0,
) -> list[FileSpec]:
    """Random :class:`FileSpec` sets for bandwidth/scheduling sweeps.

    Sizes are uniform in ``[1, max_blocks]``, latencies in
    ``[blocks, max_latency]`` (so each file is individually satisfiable at
    bandwidth 1), and fault budgets in ``[0, max_fault_budget]``.
    """
    if count < 1:
        raise SpecificationError(f"count must be >= 1: {count}")
    specs = []
    for index in range(count):
        blocks = rng.randint(1, max_blocks)
        latency = rng.randint(max(1, blocks), max_latency)
        budget = rng.randint(0, max_fault_budget)
        specs.append(
            FileSpec(f"file-{index}", blocks, latency, fault_budget=budget)
        )
    return specs


def random_pinwheel_system(
    rng: random.Random,
    count: int,
    target_density: float,
    *,
    min_window: int = 4,
    max_window: int = 120,
    tolerance: float = 0.02,
    max_attempts: int = 500,
) -> PinwheelSystem:
    """A random unit-demand pinwheel system with density near a target.

    Windows are drawn log-uniformly, then rescaled toward the target
    density and adjusted window-by-window until the density lands within
    ``tolerance`` of ``target_density`` (always from below, so threshold
    experiments like "density <= 7/10" are honest).

    Raises
    ------
    SpecificationError
        If the target cannot be hit with the given parameters (e.g. a
        target above ``count / min_window``).
    """
    if not 0 < target_density <= 1:
        raise SpecificationError(
            f"target density must be in (0, 1]: {target_density}"
        )
    upper = count / min_window
    if target_density > upper:
        raise SpecificationError(
            f"{count} tasks with windows >= {min_window} cannot reach "
            f"density {target_density} (max {upper:.3f})"
        )

    for _ in range(max_attempts):
        windows = [
            round(
                min_window
                * (max_window / min_window) ** rng.random()
            )
            for _ in range(count)
        ]
        density = sum(Fraction(1, w) for w in windows)
        scale = float(density) / target_density
        windows = [
            max(min_window, min(max_window * 4, round(w * scale)))
            for w in windows
        ]
        # Nudge individual windows down until we are just under target.
        density = sum(Fraction(1, w) for w in windows)
        guard = 10_000
        while density > target_density and guard:
            index = rng.randrange(count)
            windows[index] += 1
            density = sum(Fraction(1, w) for w in windows)
            guard -= 1
        while guard:
            # Try to tighten one window without overshooting.
            order = sorted(range(count), key=lambda i: -windows[i])
            improved = False
            for index in order:
                if windows[index] <= min_window:
                    continue
                candidate = density - Fraction(1, windows[index]) + Fraction(
                    1, windows[index] - 1
                )
                if candidate <= target_density:
                    windows[index] -= 1
                    density = candidate
                    improved = True
                    break
            if not improved:
                break
            guard -= 1
        if target_density - float(density) <= tolerance:
            return PinwheelSystem(
                PinwheelTask(i + 1, 1, w) for i, w in enumerate(windows)
            )
    raise SpecificationError(
        f"could not hit target density {target_density} within "
        f"{max_attempts} attempts"
    )


def zipf_weights(count: int, skew: float) -> list[float]:
    """Zipf popularity weights over ``count`` files, hottest first.

    Position ``r`` (0-based) gets weight ``1 / (r + 1) ** skew``; a skew
    of 0 is the uniform distribution.  Weights are unnormalized (every
    consumer - ``random.Random.choices``, PIX probabilities - accepts
    relative weights).
    """
    if count < 1:
        raise SpecificationError(f"count must be >= 1: {count}")
    if skew < 0:
        raise SpecificationError(f"zipf skew must be >= 0: {skew}")
    return [1.0 / ((rank + 1) ** skew) for rank in range(count)]


def hot_cold_weights(
    count: int, *, hot_fraction: float = 0.1, hot_weight: float = 0.9
) -> list[float]:
    """Hot/cold popularity weights over ``count`` files, hottest first.

    The first ``max(1, round(hot_fraction * count))`` files (the *hot
    set*) share ``hot_weight`` of the total probability mass equally; the
    remaining cold files share the rest equally.  The classic skewed
    broadcast-disk workload: e.g. 10% of the files drawing 90% of the
    accesses.  When every file is hot the distribution is uniform.
    """
    if count < 1:
        raise SpecificationError(f"count must be >= 1: {count}")
    if not 0.0 < hot_fraction <= 1.0:
        raise SpecificationError(
            f"hot_fraction must be in (0, 1]: {hot_fraction}"
        )
    if not 0.0 <= hot_weight <= 1.0:
        raise SpecificationError(
            f"hot_weight must be in [0, 1]: {hot_weight}"
        )
    hot_count = min(count, max(1, round(hot_fraction * count)))
    if hot_count == count:
        return [1.0 / count] * count
    cold_count = count - hot_count
    hot_share = hot_weight / hot_count
    cold_share = (1.0 - hot_weight) / cold_count
    return [hot_share] * hot_count + [cold_share] * cold_count


def sample_accesses(
    rng: random.Random,
    weights: Sequence[float] | None,
    count: int,
    *,
    cum_weights: Sequence[float] | None = None,
) -> list[int]:
    """``count`` seeded draws of file positions under a popularity law.

    The generator behind access-pattern sweeps and the traffic layer's
    per-request file choice: pair it with :func:`zipf_weights` or
    :func:`hot_cold_weights` and a catalogue ordered hottest-first.
    Hot loops drawing one position at a time should precompute the
    running totals once (``itertools.accumulate``) and pass
    ``cum_weights`` - the draws are bit-identical, without re-summing
    the whole catalogue per call.
    """
    if count < 1:
        raise SpecificationError(f"count must be >= 1: {count}")
    if (weights is None) == (cum_weights is None):
        raise SpecificationError(
            "exactly one of weights and cum_weights is required"
        )
    table = weights if weights is not None else cum_weights
    if not table:
        raise SpecificationError("at least one weight is required")
    return rng.choices(
        range(len(table)), weights=weights, cum_weights=cum_weights,
        k=count,
    )


@dataclass(frozen=True, slots=True)
class Request:
    """One client request: arrive at ``time``, want ``file`` by
    ``deadline`` slots later."""

    time: int
    file: str
    deadline: int


def request_stream(
    rng: random.Random,
    files: Sequence,
    *,
    count: int,
    horizon: int,
    bandwidth: int = 1,
    zipf_skew: float = 0.0,
    deadline: Callable[[object], int] | None = None,
) -> list[Request]:
    """A stream of deadline-tagged requests over a horizon of slots.

    Arrival times are uniform; file choice is Zipf-weighted by position
    when ``zipf_skew > 0`` (hot-first, matching the multidisk baseline's
    assumptions) and uniform otherwise.  Each request's deadline is the
    file's latency budget in slots at the given bandwidth, or - for
    catalogues that are not :class:`FileSpec` sequences, e.g. generalized
    files - whatever the ``deadline`` callable returns for the chosen
    spec.
    """
    if count < 1 or horizon < 1:
        raise SpecificationError("count and horizon must be >= 1")
    if not files:
        raise SpecificationError("at least one file is required")
    if deadline is None:
        deadline = lambda spec: spec.latency * bandwidth  # noqa: E731
    weights = zipf_weights(len(files), zipf_skew)
    requests = [
        Request(
            time=rng.randrange(horizon),
            file=(choice := rng.choices(files, weights=weights, k=1)[0]).name,
            deadline=deadline(choice),
        )
        for _ in range(count)
    ]
    requests.sort(key=lambda r: r.time)
    return requests
